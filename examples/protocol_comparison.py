#!/usr/bin/env python
"""Protocol comparison: how much broadcast speed do energy savings cost?

Flooding transmits everywhere, always — maximal speed, maximal energy.
Its standard relaxations (bounded fanout, bounded active window, duty
cycling, permanent recovery) save transmissions; this example measures the
price in completion time and coverage over the same Manhattan MANET, and
shows *where* the cheap protocols lose: the Suburb.

Every variant runs through the **batch engine** (``engine="batch"``): all
trials of a protocol advance in lock-step, with per-replica RNG streams
replaying the scalar engine draw-for-draw — so swapping ``engine="scalar"``
below reproduces identical numbers, just slower.

Run:  python examples/protocol_comparison.py
"""

import math

from repro.simulation import FloodingConfig, run_trials, summarize
from repro.viz.tables import format_table

VARIANTS = [
    ("flooding", "flooding", {}),
    ("gossip k=1", "gossip", {"fanout": 1}),
    ("gossip k=3", "gossip", {"fanout": 3}),
    ("push-pull", "push-pull", {}),
    ("parsimonious w=4", "parsimonious", {"active_window": 4}),
    ("probabilistic p=0.3", "probabilistic", {"p": 0.3}),
    ("SIR rho=0.05", "sir", {"recovery_prob": 0.05}),
    ("crash p=0.002", "crash-flooding", {"crash_prob": 0.002}),
]


def main() -> int:
    n = 2_000
    side = math.sqrt(n)
    radius = 1.4 * math.sqrt(math.log(n))
    speed = 0.25 * radius
    trials = 3

    rows = []
    for label, protocol, options in VARIANTS:
        config = FloodingConfig(
            n=n,
            side=side,
            radius=radius,
            speed=speed,
            max_steps=4_000,
            protocol=protocol,
            protocol_options=options,
            seed=3,  # same seed for every variant: identical mobility traces
            engine="batch",
        )
        results = run_trials(config, trials)
        summary = summarize(r.flooding_time for r in results)
        coverage = sum(r.final_coverage for r in results) / trials
        # Where did the protocol fail to reach?  The zone split of the
        # never-informed agents comes from the protocols' final metrics.
        missed_cz = sum(r.extras.get("uninformed_cz", 0) for r in results)
        missed_suburb = sum(r.extras.get("uninformed_suburb", 0) for r in results)
        rows.append(
            [
                label,
                round(summary.mean, 1) if summary.n_finite else "never",
                f"{summary.n_finite}/{trials}",
                sum(1 for r in results if r.stalled),
                round(coverage, 4),
                missed_cz,
                missed_suburb,
            ]
        )

    print(f"same mobility seeds for every protocol; n={n}, R={radius:.1f}, "
          f"{trials} trials each, batch engine\n")
    print(
        format_table(
            [
                "protocol",
                "mean completion",
                "completed",
                "stalled",
                "mean coverage",
                "missed in CZ",
                "missed in suburb",
            ],
            rows,
            title="broadcast protocols over a Manhattan MANET",
        )
    )
    print()
    print("The cheap protocols cover the Central Zone easily; what they miss (or")
    print("pay dearly for) is the Suburb — brief Lemma-16 meeting windows punish")
    print("protocols that are not always on.")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
