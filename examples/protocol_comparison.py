#!/usr/bin/env python
"""Protocol comparison: how much broadcast speed do energy savings cost?

Flooding transmits everywhere, always — maximal speed, maximal energy.
Its standard relaxations (bounded fanout, bounded active window, duty
cycling, permanent recovery) save transmissions; this example measures the
price in completion time and coverage over the same Manhattan MANET, and
shows *where* the cheap protocols lose: the Suburb.

Run:  python examples/protocol_comparison.py
"""

import math

import numpy as np

from repro.core.flooding import build_zone_partition, select_source
from repro.mobility import ManhattanRandomWaypoint
from repro.protocols import (
    FloodingProtocol,
    GossipProtocol,
    ParsimoniousFlooding,
    ProbabilisticFlooding,
    SIREpidemic,
)
from repro.viz.tables import format_table


def run_protocol(make_protocol, state, n, side, radius, speed, source, max_steps, seed):
    """Run one protocol over a fixed mobility realization; returns stats."""
    model = ManhattanRandomWaypoint(
        n, side, speed, rng=np.random.default_rng(seed), init=state
    )
    protocol = make_protocol(source)
    completion = math.inf
    for step in range(1, max_steps + 1):
        positions = model.step()
        protocol.step(positions)
        if protocol.is_complete():
            completion = step
            break
        if not protocol.can_progress():
            break
    coverage = protocol.informed_count / n
    return completion, coverage, protocol.informed.copy(), model.positions


def main() -> int:
    n = 2_000
    side = math.sqrt(n)
    radius = 1.4 * math.sqrt(math.log(n))
    speed = 0.25 * radius
    max_steps = 4_000
    zones = build_zone_partition(n, side, radius)

    base = ManhattanRandomWaypoint(n, side, speed, rng=np.random.default_rng(3))
    state = base.get_state()
    source = select_source(state.positions, side, "central", np.random.default_rng(4))

    variants = [
        ("flooding", lambda s: FloodingProtocol(n, side, radius, s)),
        ("gossip k=1", lambda s: GossipProtocol(n, side, radius, s, rng=np.random.default_rng(5), fanout=1)),
        ("gossip k=3", lambda s: GossipProtocol(n, side, radius, s, rng=np.random.default_rng(5), fanout=3)),
        ("parsimonious w=4", lambda s: ParsimoniousFlooding(n, side, radius, s, active_window=4)),
        ("probabilistic p=0.3", lambda s: ProbabilisticFlooding(n, side, radius, s, rng=np.random.default_rng(6), p=0.3)),
        ("SIR rho=0.05", lambda s: SIREpidemic(n, side, radius, s, rng=np.random.default_rng(7), recovery_prob=0.05)),
    ]

    rows = []
    for label, make in variants:
        completion, coverage, informed, final_positions = run_protocol(
            make, state, n, side, radius, speed, source, max_steps, seed=99
        )
        # Which zone did the protocol fail to reach?
        missing = ~informed
        in_suburb = zones.in_suburb(final_positions) if zones is not None else np.zeros(n, bool)
        missing_suburb = int(np.count_nonzero(missing & in_suburb))
        missing_cz = int(np.count_nonzero(missing & ~in_suburb))
        rows.append(
            [
                label,
                completion if math.isfinite(completion) else "never",
                round(coverage, 4),
                missing_cz,
                missing_suburb,
            ]
        )

    print(f"same mobility realization for every protocol; n={n}, R={radius:.1f}\n")
    print(
        format_table(
            ["protocol", "completion step", "final coverage", "missed in CZ", "missed in suburb"],
            rows,
            title="broadcast protocols over a Manhattan MANET",
        )
    )
    print()
    print("The cheap protocols cover the Central Zone easily; what they miss (or")
    print("pay dearly for) is the Suburb — brief Lemma-16 meeting windows punish")
    print("protocols that are not always on.")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
