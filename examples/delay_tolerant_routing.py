#!/usr/bin/env python
"""Delay-tolerant point-to-point delivery: opportunistic contacts vs ferries.

Opportunistic MANETs (paper refs [16, 26, 29, 30]) deliver unicast messages
across disconnected regions by letting mobility carry them.  This example
measures point-to-point delivery delay between suburban agents under three
strategies:

1. **epidemic relay** (flooding restricted to the paper's semantics) —
   the Lemma-16 mechanism does the work: agents commuting between the
   Central Zone and the corners ferry the message implicitly;
2. **direct contact only** — source waits to meet the destination itself
   (no relaying), the pessimistic baseline;
3. **message ferries** (ref [30]) — dedicated agents patrolling a loop
   near the suburbs relay the message.

Run:  python examples/delay_tolerant_routing.py
"""

import math

import numpy as np

from repro.core.flooding import build_zone_partition
from repro.mobility import CompositeMobility, FerryPatrol, ManhattanRandomWaypoint, rectangle_route
from repro.network.contacts import MEETING_RADIUS_FACTOR
from repro.protocols.flooding import FloodingProtocol
from repro.viz.tables import format_table


def delivery_delay_flooding(model, radius, source, destination, max_steps):
    """Steps until the destination is informed under flooding relay."""
    protocol = FloodingProtocol(model.n, model.side, radius, source)
    for step in range(1, max_steps + 1):
        positions = model.step()
        protocol.step(positions)
        if protocol.informed[destination]:
            return step
    return math.inf


def delivery_delay_direct(model, radius, source, destination, max_steps):
    """Steps until source and destination are within the meeting radius."""
    meet_r = MEETING_RADIUS_FACTOR * radius
    for step in range(1, max_steps + 1):
        positions = model.step()
        gap = np.linalg.norm(positions[source] - positions[destination])
        if gap <= meet_r:
            return step
    return math.inf


def main() -> int:
    n = 2_000
    side = math.sqrt(n)
    radius = 1.3 * math.sqrt(math.log(n))
    speed = 0.25 * radius
    max_steps = 6_000
    zones = build_zone_partition(n, side, radius)

    rows = []
    for trial in range(3):
        rng = np.random.default_rng(100 + trial)

        # Pick a suburban source and a suburban destination in opposite corners.
        base = ManhattanRandomWaypoint(n, side, speed, rng=rng)
        positions = base.positions
        corner_dist_sw = positions.sum(axis=1)
        corner_dist_ne = (side - positions).sum(axis=1)
        source = int(np.argmin(corner_dist_sw))
        destination = int(np.argmin(corner_dist_ne))
        state = base.get_state()

        # Strategy 1: epidemic relay over the plain MRWP population.
        model = ManhattanRandomWaypoint(n, side, speed, rng=np.random.default_rng(200 + trial), init=state)
        t_flood = delivery_delay_flooding(model, radius, source, destination, max_steps)

        # Strategy 2: direct contact only.
        model = ManhattanRandomWaypoint(n, side, speed, rng=np.random.default_rng(200 + trial), init=state)
        t_direct = delivery_delay_direct(model, radius, source, destination, max_steps)

        # Strategy 3: epidemic relay + 4 ferries patrolling near the walls.
        ferries = FerryPatrol(
            4, side, speed=2.0 * speed, route=rectangle_route(side, inset=0.08 * side)
        )
        model = CompositeMobility(
            [
                ManhattanRandomWaypoint(
                    n, side, speed, rng=np.random.default_rng(200 + trial), init=state
                ),
                ferries,
            ]
        )
        t_ferry = delivery_delay_flooding(model, radius, source, destination, max_steps)

        in_suburb = zones.in_suburb(positions[[source, destination]]) if zones else [False, False]
        rows.append(
            [
                trial,
                f"{'suburb' if in_suburb[0] else 'cz'}->{'suburb' if in_suburb[1] else 'cz'}",
                t_flood,
                t_ferry,
                t_direct,
            ]
        )

    print(f"corner-to-corner delivery over a {side:.0f}-block city, R={radius:.1f}\n")
    print(
        format_table(
            ["trial", "endpoints", "epidemic relay", "relay + 4 ferries", "direct contact"],
            rows,
            title="delivery delay (steps)",
        )
    )
    print()
    print("Epidemic relay crosses the disconnected corners via commuting agents")
    print("(Lemma 16's meetings); ferries shave the tail; direct contact can take")
    print("orders of magnitude longer — mobility, not connectivity, carries data.")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
