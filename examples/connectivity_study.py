#!/usr/bin/env python
"""Connectivity study: how disconnected is a Manhattan MANET, and where?

Reproduces the paper's Section-1 picture interactively: a stationary
snapshot's disk graph across radio ranges, with the Central Zone / Suburb
split of Definition 4, an ASCII map of where the isolated agents live, and
the empirical connectivity thresholds.

Run:  python examples/connectivity_study.py
"""

import math

import numpy as np

from repro.core.flooding import build_zone_partition
from repro.mobility.stationary import PalmStationarySampler
from repro.network.connectivity import estimate_connectivity_threshold, uniform_connectivity_threshold
from repro.network.disk_graph import DiskGraph
from repro.network.graph_stats import component_summary, degree_summary, zone_degree_split
from repro.viz.ascii import render_heatmap
from repro.viz.tables import format_table


def main() -> int:
    n = 4_000
    side = math.sqrt(n)
    rng = np.random.default_rng(7)
    positions = PalmStationarySampler(side).sample(n, rng).positions
    base = math.sqrt(math.log(n))
    zones = build_zone_partition(n, side, 1.3 * base)

    rows = []
    isolated_map = None
    for factor in (0.5, 0.8, 1.2, 2.0):
        radius = factor * base
        graph = DiskGraph(positions, radius, side=side)
        deg = degree_summary(graph)
        comp = component_summary(graph)
        split = zone_degree_split(graph, zones.in_central_zone(positions))
        rows.append(
            [
                round(radius, 2),
                round(deg["mean_degree"], 1),
                round(split["zone_mean_degree"], 1),
                round(split["outside_mean_degree"], 1),
                comp["n_components"],
                round(comp["giant_fraction"], 4),
                round(deg["isolated_fraction"], 4),
            ]
        )
        if factor == 0.8:
            # Where do the isolated agents live?  Bin them over the square.
            isolated = positions[graph.isolated_mask()]
            bins = 12
            hist, _, _ = np.histogram2d(
                isolated[:, 0], isolated[:, 1], bins=bins, range=[[0, side], [0, side]]
            )
            isolated_map = render_heatmap(hist)

    print(f"stationary snapshot, n={n}, L={side:.0f}\n")
    print(
        format_table(
            [
                "R",
                "mean degree",
                "CZ mean degree",
                "suburb mean degree",
                "components",
                "giant fraction",
                "isolated fraction",
            ],
            rows,
            title="disk-graph structure vs radio range",
        )
    )
    if isolated_map:
        print("\nwhere the isolated agents sit (R = 0.8 sqrt(log n)) — the corners:")
        print(isolated_map)

    full_thr = estimate_connectivity_threshold(positions, side)
    cz_thr = estimate_connectivity_threshold(
        positions, side, mask=zones.in_central_zone(positions)
    )
    print(f"\nconnectivity thresholds: full graph {full_thr:.2f}, "
          f"Central Zone only {cz_thr:.2f}, "
          f"uniform benchmark {uniform_connectivity_threshold(n, side):.2f}")
    print("The Central Zone connects near the uniform threshold; the corners push")
    print("the full graph's threshold far above it (ref [13]) — yet flooding stays")
    print("fast there (the paper's Theorem 3).")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
