#!/usr/bin/env python
"""Urban emergency broadcast: will downtown hear before the outskirts?

The scenario the paper's introduction motivates: vehicles/pedestrians
moving over a Manhattan-style street grid, one of them (e.g. an emergency
vehicle) originating an alert that spreads device-to-device.  City centers
are dense; corner neighborhoods are sparse and often *disconnected* from
the mesh.  The paper's result says the outskirts still hear the alert in
about the time the center does.

This example runs the scenario at several radio ranges and prints, per
range: time to 50% / 90% / 100% coverage, per-zone completion, and how the
most remote agents (deep corner) fare — plus the paper's bound for context.

Run:  python examples/urban_broadcast.py
"""

import math

import numpy as np

from repro import FloodingConfig, run_flooding, theory
from repro.core.flooding import build_zone_partition
from repro.viz.tables import format_table


def main() -> int:
    n = 3_000  # commuters
    side = math.sqrt(n)  # the canonical scaling; think "city blocks"
    print(f"city: {side:.0f} x {side:.0f} blocks, {n} commuters, Manhattan trips\n")

    rows = []
    for radio_blocks in (3.0, 4.5, 7.0):
        speed = 0.8  # blocks per tick, same for every commuter
        config = FloodingConfig(
            n=n,
            side=side,
            radius=radio_blocks,
            speed=speed,
            source="central",  # alert starts downtown
            max_steps=20_000,
            seed=2024,
        )
        result = run_flooding(config)
        zones = build_zone_partition(n, side, radio_blocks)
        suburb_cells = zones.n_suburb_cells if zones is not None else 0
        # Below the Central-Zone threshold every cell is "suburb" and the
        # per-zone split is vacuous — show a dash instead of 0.
        has_cz = zones is not None and zones.n_central_cells > 0
        rows.append(
            [
                radio_blocks,
                result.time_to_coverage(0.5),
                result.time_to_coverage(0.9),
                result.flooding_time,
                result.cz_completion_time if has_cz else "-",
                result.suburb_completion_time if has_cz else "-",
                suburb_cells,
                round(theory.cz_flooding_bound(side, radio_blocks), 0),
            ]
        )

    print(
        format_table(
            [
                "radio range",
                "t(50%)",
                "t(90%)",
                "t(100%)",
                "downtown done",
                "outskirts done",
                "suburb cells",
                "18 L/R",
            ],
            rows,
            title="alert propagation vs radio range",
        )
    )
    print()
    print("The outskirts finish within a small factor of downtown even where the")
    print("suburb cells are radio-disconnected — the paper's headline phenomenon.")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
