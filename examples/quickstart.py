#!/usr/bin/env python
"""Quickstart: one flooding run over a Manhattan MANET, start to finish.

Builds the paper's canonical network (``L = sqrt n`` square, radius a small
multiple of ``sqrt(log n)``, slow mobility), floods a message from a random
agent, and prints the coverage curve, the per-zone completion times, and
Theorem 3's bound next to the measurement.

Run:  python examples/quickstart.py [n]
"""

import sys

from repro import run_flooding, standard_config, theory
from repro.viz.ascii import render_sparkline


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    # speed_fraction 0.1 keeps the slow-mobility assumption (Ineq. 8:
    # v <= R / (3 (1 + sqrt5)) ~ 0.103 R) satisfied.
    config = standard_config(n, radius_factor=1.5, speed_fraction=0.1, seed=42)
    print("network:", config.describe())

    assumptions = config.assumptions(c1=1.5)  # calibrated constant, see DESIGN.md
    print(
        "assumptions (calibrated c1): radius_ok=%s speed_ok=%s suburb_nonempty=%s"
        % (assumptions.radius_ok, assumptions.speed_ok, assumptions.suburb_nonempty)
    )

    result = run_flooding(config)
    coverage = result.informed_history / n
    print()
    print(f"flooding time: {result.flooding_time:.0f} steps (completed: {result.completed})")
    print(f"coverage curve: {render_sparkline(coverage)}")
    if result.cz_completion_time is not None:
        print(f"Central Zone complete at step {result.cz_completion_time:.0f}")
        print(f"Suburb complete at step       {result.suburb_completion_time:.0f}")
    print()
    print(f"Theorem 3 upper bound (paper constants): {config.upper_bound():.0f}")
    print(f"18 L/R Central-Zone bound (Thm 10):      "
          f"{theory.cz_flooding_bound(config.side, config.radius):.0f}")
    print(f"trivial lower bound L/(R+2v):            "
          f"{theory.geometric_lower_bound(config.side, config.radius, config.speed):.0f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
