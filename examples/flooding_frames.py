#!/usr/bin/env python
"""Watch a flood: ASCII frames of the informed set crossing the city.

The moving-picture version of the paper's story — the message saturates the
dense Central Zone in a few steps (Theorem 10's cell-to-cell wave), then
commuting agents carry it into the sparse corners (Lemma 16's meetings).

Run:  python examples/flooding_frames.py
"""

import math

import numpy as np

from repro.core.flooding import select_source
from repro.mobility import ManhattanRandomWaypoint
from repro.protocols import FloodingProtocol
from repro.viz.animation import record_flooding_frames


def main() -> int:
    n = 3_000
    side = math.sqrt(n)
    radius = 1.3 * math.sqrt(math.log(n))
    speed = 0.25 * radius

    model = ManhattanRandomWaypoint(n, side, speed, rng=np.random.default_rng(17))
    source = select_source(model.positions, side, "central", np.random.default_rng(1))
    protocol = FloodingProtocol(n, side, radius, source)

    print(f"n={n}, L={side:.0f}, R={radius:.1f}, v={speed:.2f}; source downtown\n")
    frames = record_flooding_frames(model, protocol, at_steps=[0, 2, 4, 7, 11, 16], width=36)
    for step, frame in frames.items():
        print(f"--- step {step} ---")
        print(frame)
        print()
    done = protocol.is_complete()
    print(f"flooding {'complete' if done else 'still running'} "
          f"({protocol.informed_count}/{n} informed)")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
