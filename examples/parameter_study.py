#!/usr/bin/env python
"""Parameter study: sweep the radio range with parallel trials, export CSV.

The pattern for building your own studies on top of the library: define a
base configuration, fan trials out over processes with
``sweep_parallel`` (bit-identical to the serial runner), and export the
aggregated table for plotting.

Run:  python examples/parameter_study.py [output.csv]
"""

import math
import sys

from repro.core import theory
from repro.simulation.config import FloodingConfig
from repro.simulation.parallel import sweep_parallel
from repro.viz.csvout import write_csv
from repro.viz.tables import format_table


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "/tmp/radius_study.csv"
    n = 2_000
    side = math.sqrt(n)
    base = math.sqrt(math.log(n))
    config = FloodingConfig(
        n=n,
        side=side,
        radius=base,  # swept below
        speed=0.3,
        max_steps=20_000,
        seed=2_024,
        track_zones=False,
    )
    radii = [round(f * base, 3) for f in (1.0, 1.4, 2.0, 2.8, 4.0)]

    results = sweep_parallel(config, "radius", radii, n_trials=6, max_workers=6)

    headers = ["R", "mean T_flood", "ci_low", "ci_high", "min", "max",
               "18 L/R", "L/(R+2v)"]
    rows = []
    for radius, summary, _trials in results:
        rows.append(
            [
                radius,
                round(summary.mean, 1),
                round(summary.ci_low, 1),
                round(summary.ci_high, 1),
                summary.minimum,
                summary.maximum,
                round(theory.cz_flooding_bound(side, radius), 0),
                round(theory.geometric_lower_bound(side, radius, config.speed), 1),
            ]
        )
    print(format_table(headers, rows, title=f"flooding time vs radio range (n={n}, 6 trials each)"))
    write_csv(out_path, headers, rows)
    print(f"\n[table exported to {out_path}]")
    print("Measured times sit between the trivial lower bound and the 18 L/R")
    print("Central-Zone bound, falling as R grows — Theorem 3's radius knob.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
