"""Benchmark: regenerate Parameter-regime map of the bound.

Paper artifact: Section 1 discussion / Section 5 / Theorem 18
ASCII regime map of the (R, v) plane with simulation spot checks.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_regime_map(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("regime_map",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
