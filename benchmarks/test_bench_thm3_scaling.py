"""Benchmark: regenerate Flooding-time scaling in n (Theorem 3, L = sqrt n).

Paper artifact: Theorem 3
Power-law fit of flooding time vs n in the canonical scaling.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_thm3_scaling(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("thm3_scaling",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
