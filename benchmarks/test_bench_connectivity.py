"""Benchmark: regenerate Connectivity profile: Central Zone vs full square.

Paper artifact: Section 1 / ref [13] / refs [18, 27]
Connectivity transition profile and threshold scaling (full vs CZ vs uniform).

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_connectivity(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("connectivity",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
