"""Benchmark: regenerate Stationary spatial distribution vs Theorem 1.

Paper artifact: Theorem 1
TV distance of both perfect samplers and the stepped MRWP process to the closed form.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_thm1_spatial(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("thm1_spatial",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
