"""End-to-end flooding benchmarks and design-choice ablations.

Ablations benchmarked (the design decisions called out in DESIGN.md):

* neighbor-engine backend (grid vs kdtree) driving a full flooding run;
* single-hop (paper semantics) vs intra-snapshot multi-hop;
* stationary (perfect simulation) vs uniform cold-start initialization.
"""

import pytest

from repro.geometry.neighbors import available_backends
from repro.simulation.config import standard_config
from repro.simulation.runner import run_flooding

FAST_BACKENDS = [b for b in available_backends() if b != "brute"]


def _run(config):
    result = run_flooding(config)
    assert result.completed
    return result


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_bench_flooding_run_backend(benchmark, backend):
    """Full flooding run, n=2000, by neighbor backend."""
    config = standard_config(
        2_000, radius_factor=1.5, speed_fraction=0.25, seed=1, backend=backend,
        max_steps=5_000,
    )
    benchmark.pedantic(_run, args=(config,), rounds=3, iterations=1)


@pytest.mark.parametrize("multi_hop", [False, True], ids=["single-hop", "multi-hop"])
def test_bench_flooding_hop_semantics(benchmark, multi_hop):
    """Paper semantics vs infinite-bandwidth component flooding."""
    config = standard_config(
        2_000, radius_factor=1.5, speed_fraction=0.25, seed=1, multi_hop=multi_hop,
        max_steps=5_000,
    )
    benchmark.pedantic(_run, args=(config,), rounds=3, iterations=1)


@pytest.mark.parametrize("init", ["stationary", "uniform"], ids=["perfect-sim", "cold-start"])
def test_bench_flooding_initialization(benchmark, init):
    """Perfect simulation vs uniform cold start (includes setup cost)."""
    config = standard_config(
        2_000, radius_factor=1.5, speed_fraction=0.25, seed=1, init=init,
        max_steps=5_000,
    )
    benchmark.pedantic(_run, args=(config,), rounds=3, iterations=1)


def test_bench_flooding_large(benchmark):
    """One larger run (n=8000) — the scaling experiments' unit cost."""
    config = standard_config(
        8_000, radius_factor=1.5, speed_fraction=0.25, seed=1, max_steps=10_000,
    )
    benchmark.pedantic(_run, args=(config,), rounds=1, iterations=1)
