"""Benchmark: regenerate Density condition in CZ cores (Lemma 7).

Paper artifact: Lemma 7 / Definition 4
Minimum CZ-core occupancy vs the Definition-4 threshold factor.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_lemma7_density(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("lemma7_density",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
