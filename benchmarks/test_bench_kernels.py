"""Microbenchmarks of the incremental/frontier kernels (PR 2 tentpole).

Shares its workload builders with the ``repro bench`` CLI harness
(:mod:`repro.bench`), so the pytest-benchmark view and the JSON
perf-trajectory (``BENCH_PR2.json``) measure the same thing.  Compare the
groups: ``grid_index`` (counting-sort rebuild vs incremental splice),
``batch_any_within`` (PR 1 strategies vs incremental + frontier-pruned
defaults).
"""

import math

import numpy as np
import pytest

from repro.bench import batch_infection_workload, drifting_points
from repro.geometry.grid import GridIndex
from repro.geometry.incremental import IncrementalBatchOccupancy, IncrementalGridIndex
from repro.geometry.neighbors import BatchNeighborQuery

N = 5_000
SIDE = math.sqrt(N)
CELL = 2.0


@pytest.fixture(scope="module")
def snapshots():
    return drifting_points(N, SIDE, step=0.15, steps=8, seed=3)


@pytest.mark.parametrize("strategy", ["rebuild", "update"])
def test_bench_grid_index(benchmark, snapshots, strategy):
    """Re-indexing a drifting swarm: full build vs incremental splice."""

    def rebuild():
        index = GridIndex(SIDE, CELL)
        for snapshot in snapshots:
            index.build(snapshot)
        return index

    def update():
        index = IncrementalGridIndex(SIDE, CELL)
        for snapshot in snapshots:
            index.update(snapshot)
        return index

    index = benchmark(rebuild if strategy == "rebuild" else update)
    assert index.size == N


@pytest.mark.parametrize("strategy", ["rebuild", "update"])
def test_bench_batch_occupancy(benchmark, strategy):
    """Per-replica occupancy counts: full bincount vs +/-1 delta repair."""
    batch, n = 8, 1_000
    side = math.sqrt(n)
    base = drifting_points(n, side, step=0.1, steps=8, seed=5)
    snapshots = [np.broadcast_to(s, (batch, n, 2)).copy() for s in base]

    def rebuild():
        probe = IncrementalBatchOccupancy(side, batch, 0.9)
        mm = probe.m * probe.m
        offsets = np.arange(batch, dtype=np.int64)[:, None] * mm
        for snapshot in snapshots:
            gid = probe._cells_of(snapshot) + offsets
            counts = np.bincount(gid.reshape(-1), minlength=batch * mm)
        return counts

    def update():
        occupancy = IncrementalBatchOccupancy(side, batch, 0.9, track_counts=True)
        for snapshot in snapshots:
            occupancy.update(snapshot)
        return occupancy.counts

    benchmark(rebuild if strategy == "rebuild" else update)


@pytest.mark.parametrize("strategy", ["legacy", "new"])
def test_bench_batch_infection_kernel(benchmark, strategy):
    """The flooding infection test at a mid-flood state, PR 1 strategies
    (rebuild + unpruned) vs the incremental + frontier-pruned defaults."""
    batch, n = 8, 2_000
    side, radius = math.sqrt(n), 2.4
    positions, informed, uninformed = batch_infection_workload(batch, n, side)
    options = {} if strategy == "new" else {"incremental": False, "prune": False}
    query = BatchNeighborQuery(side, batch, **options)
    hits = benchmark(query.any_within, positions, informed, uninformed, radius)
    assert hits.shape == (batch, n)
