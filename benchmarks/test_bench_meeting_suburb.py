"""Benchmark: regenerate Suburb meeting times with CZ emissaries (Lemma 16).

Paper artifact: Lemma 16 / Claim 17
First-meeting times of suburban agents with Central-Zone agents.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_meeting_suburb(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("meeting_suburb",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
