"""Benchmark: regenerate Destination distribution at (L/3, L/4) (Fig. 1, blue cross).

Paper artifact: Fig. 1 / Theorem 2 / Eqs. 4-5
Quadrant and cross-segment destination masses at the paper's example position.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_fig1_destination(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("fig1_destination",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
