"""Benchmark: regenerate Flooding vs baseline broadcast protocols.

Paper artifact: Section 1 context / ref [3]
Completion time / coverage of gossip, parsimonious, probabilistic, SIR vs flooding.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_protocol_baselines(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("protocol_baselines",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
