"""Benchmark: regenerate Flooding vs baseline broadcast protocols.

Paper artifact: Section 1 context / ref [3]
Completion time / coverage of gossip, parsimonious, probabilistic, SIR vs flooding.

Since PR 3 the experiment runs every variant through the **batch engine**
(all trials in lock-step, cut-based neighbor sampling for gossip and
push-pull), which regenerates the quick-scale artifact roughly 7x faster
than the PR 2 scalar per-trial loop (~4.7 s -> well under a second on the
reference host; see BENCH_PR3.json).  The benchmark times one quick-scale
regeneration and asserts its shape check passed, so `pytest benchmarks/
--benchmark-only` doubles as a reproduction smoke suite.  The explicit
batch-vs-scalar speedup measurement lives in `repro bench --suite
protocols`.
"""

from repro.experiments.registry import run_experiment


def test_bench_protocol_baselines(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("protocol_baselines",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
