"""Benchmark: regenerate Flooding time vs transmission radius (Theorem 3).

Paper artifact: Theorem 3
Radius sweep at fixed speed: flooding time decreasing in R.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_thm3_radius(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("thm3_radius",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
