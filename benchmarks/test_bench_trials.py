"""Engine benchmark: scalar trial loop vs the batched lock-step engine.

The comparison behind the batch subsystem: ``run_trials`` with the seed's
scalar loop (one :class:`~repro.simulation.engine.Simulation` per trial)
against ``engine="batch"`` (one :class:`~repro.simulation.batch.BatchSimulation`
advancing every trial at once).  Both produce identical results, so the
benchmark measures pure execution-strategy overhead.

The default parameters keep the tier-1 run fast; set ``REPRO_FULL_BENCH=1``
for the full-scale comparison (n=2000, 32 trials — the acceptance workload;
measured ~1.7-1.8x on a single-core container, with the further
batch-per-worker process sharding of ``run_trials_parallel`` multiplying
the win on multi-core hosts).
"""

import os

import pytest

from repro.simulation import run_trials, standard_config

FULL = os.environ.get("REPRO_FULL_BENCH") == "1"
N = 2_000 if FULL else 600
TRIALS = 32 if FULL else 12


@pytest.fixture(scope="module")
def reference_times():
    """Flooding times of the scalar engine, for cross-engine validation."""
    config = standard_config(N, radius_factor=1.0, seed=42)
    return [r.flooding_time for r in run_trials(config, TRIALS)]


@pytest.mark.parametrize("engine", ["scalar", "batch"])
def test_bench_run_trials(benchmark, reference_times, engine):
    """Multi-trial flooding at the canonical scaling, per engine."""
    config = standard_config(N, radius_factor=1.0, seed=42, engine=engine)
    results = benchmark.pedantic(
        run_trials, args=(config, TRIALS), rounds=3 if FULL else 5, iterations=1
    )
    assert [r.flooding_time for r in results] == reference_times


@pytest.mark.parametrize("engine", ["scalar", "batch"])
def test_bench_run_trials_dense(benchmark, engine):
    """The paper's dense regime (radius_factor=2): short runs, init-bound."""
    config = standard_config(N, radius_factor=2.0, seed=7, engine=engine)
    results = benchmark.pedantic(
        run_trials, args=(config, TRIALS), rounds=3 if FULL else 5, iterations=1
    )
    assert all(r.completed for r in results)
