"""Benchmark: regenerate Central-Zone row/column coverage (Lemma 6).

Paper artifact: Lemma 6 / Definition 4 / Ineq. 7
Measured critical radius factor for the m/sqrt2 full-row bound vs the sqrt5 prediction.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_lemma6_rows(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("lemma6_rows",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
