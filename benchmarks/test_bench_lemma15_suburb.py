"""Benchmark: regenerate Suburb corner extent vs S (Lemma 15).

Paper artifact: Lemma 15
Measured Suburb reach against the closed-form diameter bound S.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_lemma15_suburb(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("lemma15_suburb",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
