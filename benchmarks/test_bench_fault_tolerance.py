"""Benchmark: regenerate Flooding under crash faults (robustness extension).

Paper artifact: extension of Theorem 3 (not in paper)
Completion over survivors and zone-wise damage across crash rates.

Since PR 3 the sweep runs through the **batch engine** (`crash-flooding`
protocol, all trials per crash rate in lock-step, per-replica crash draws)
instead of a hand-rolled scalar simulation loop — the quick-scale
regeneration dropped from seconds to well under a second on the reference
host.  The benchmark times one quick-scale regeneration and asserts its
shape check passed, so `pytest benchmarks/ --benchmark-only` doubles as a
reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_fault_tolerance(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("fault_tolerance",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
