"""Benchmark: regenerate Suburb flooding vs Central-Zone flooding.

Paper artifact: Section 1 (headline claim) / Theorem 3
Per-zone completion times and their ratio, for central and suburban sources.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_suburb_vs_cz(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("suburb_vs_cz",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
