"""Benchmark: regenerate Lower-bound construction (Theorem 18).

Paper artifact: Theorem 18
Event-B probability and conditioned trapped-agent informing times vs the bound.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_thm18_lower(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("thm18_lower",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
