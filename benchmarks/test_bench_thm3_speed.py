"""Benchmark: regenerate Flooding time vs agent speed (Theorem 3).

Paper artifact: Theorem 3 / Section 1 discussion
Speed sweeps in the optimal window (flat) and the sparse regime (a + b/v).

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_thm3_speed(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("thm3_speed",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
