"""Benchmark: regenerate Random trip speeds: decay transient vs perfect simulation.

Paper artifact: Section 3 direction / Random-Trip literature (refs [21-23])
Speed-decay transient of cold starts vs the exact stationary speed law.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_speed_decay(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("speed_decay",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
