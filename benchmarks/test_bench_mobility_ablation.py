"""Benchmark: regenerate Flooding time across mobility models.

Paper artifact: Section 1 / refs [10, 11]
Same flooding workload under MRWP, RWP, random-walk, random-direction.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_mobility_ablation(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("mobility_ablation",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
