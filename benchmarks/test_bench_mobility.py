"""Microbenchmarks of the mobility models and stationary samplers."""

import numpy as np
import pytest

from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.mobility.random_direction import RandomDirection
from repro.mobility.random_walk import RandomWalk
from repro.mobility.rwp import RandomWaypoint
from repro.mobility.stationary import ClosedFormStationarySampler, PalmStationarySampler

SIDE = 100.0
N = 20_000


def test_bench_mrwp_step(benchmark):
    """One synchronous MRWP step for 20k agents (the simulation inner loop)."""
    model = ManhattanRandomWaypoint(N, SIDE, speed=1.0, rng=np.random.default_rng(0))
    benchmark(model.step)


def test_bench_mrwp_step_fast_agents(benchmark):
    """High speed exercises the multi-leg carry-over path."""
    model = ManhattanRandomWaypoint(N, SIDE, speed=30.0, rng=np.random.default_rng(0))
    benchmark(model.step)


@pytest.mark.parametrize(
    "model_cls,kwargs",
    [
        (RandomWaypoint, {"speed": 1.0}),
        (RandomWalk, {"move_radius": 1.0}),
        (RandomDirection, {"speed": 1.0}),
    ],
    ids=["rwp", "random-walk", "random-direction"],
)
def test_bench_baseline_step(benchmark, model_cls, kwargs):
    model = model_cls(N, SIDE, rng=np.random.default_rng(0), **kwargs)
    benchmark(model.step)


def test_bench_palm_sampler(benchmark):
    """Perfect simulation via Palm calculus, 20k agents."""
    sampler = PalmStationarySampler(SIDE)
    rng = np.random.default_rng(0)
    state = benchmark(sampler.sample, N, rng)
    assert state.n == N


def test_bench_closed_form_sampler(benchmark):
    """Perfect simulation via the closed forms (ablation vs Palm)."""
    sampler = ClosedFormStationarySampler(SIDE)
    rng = np.random.default_rng(0)
    state = benchmark(sampler.sample, N, rng)
    assert state.n == N
