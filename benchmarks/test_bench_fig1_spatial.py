"""Benchmark: regenerate Stationary spatial density (Fig. 1, gray gradient).

Paper artifact: Fig. 1 / Theorem 1
ASCII regeneration of Fig. 1's spatial density, empirical vs closed form.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_fig1_spatial(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("fig1_spatial",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
