"""Microbenchmarks of the neighbor engines (the simulation's hot path).

Ablation: bucket grid (pure numpy) vs scipy cKDTree vs brute force on the
per-step flooding query (``any_within``) and the disk-graph edge query
(``pairs_within``).  Run with ``pytest benchmarks/ --benchmark-only`` and
compare the backend groups.
"""

import numpy as np
import pytest

from repro.geometry.neighbors import available_backends, make_engine

SIDE = 100.0
RADIUS = 3.0
N = 5_000


@pytest.fixture(scope="module")
def snapshot():
    rng = np.random.default_rng(0)
    positions = rng.uniform(0, SIDE, (N, 2))
    informed = np.zeros(N, dtype=bool)
    informed[rng.choice(N, size=N // 10, replace=False)] = True
    return positions, informed


@pytest.mark.parametrize("backend", available_backends())
def test_bench_any_within(benchmark, snapshot, backend):
    """The flooding infection test: informed sources vs uninformed queries."""
    if backend == "brute" and N > 3_000:
        pytest.skip("quadratic reference engine: too slow at this n")
    positions, informed = snapshot
    engine = make_engine(backend, SIDE)
    sources = positions[informed]
    queries = positions[~informed]
    result = benchmark(engine.any_within, sources, queries, RADIUS)
    assert result.shape == (queries.shape[0],)


@pytest.mark.parametrize("backend", available_backends())
def test_bench_pairs_within(benchmark, snapshot, backend):
    """Disk-graph edge enumeration for one snapshot."""
    if backend == "brute":
        pytest.skip("quadratic reference engine: too slow at this n")
    positions, _ = snapshot
    engine = make_engine(backend, SIDE)
    pairs = benchmark(engine.pairs_within, positions, RADIUS)
    assert pairs.shape[1] == 2


@pytest.mark.parametrize("backend", available_backends())
def test_bench_count_within(benchmark, snapshot, backend):
    """Occupancy counting (density-condition monitoring)."""
    if backend == "brute":
        pytest.skip("quadratic reference engine: too slow at this n")
    positions, informed = snapshot
    engine = make_engine(backend, SIDE)
    counts = benchmark(engine.count_within, positions[informed], positions[~informed], RADIUS)
    assert counts.shape == (int(np.count_nonzero(~informed)),)


@pytest.mark.parametrize("backend", ["cells", "kdtree", "grid"])
def test_bench_batch_any_within(benchmark, backend):
    """The batch engine's per-replica infection test, one call for B trials."""
    from repro.geometry.neighbors import BatchNeighborQuery

    if backend not in available_backends() + ["cells"]:
        pytest.skip(f"backend {backend} unavailable")
    rng = np.random.default_rng(1)
    batch, n, side, radius = 16, 2_000, 44.7, 2.8
    positions = rng.uniform(0, side, size=(batch, n, 2))
    informed = rng.uniform(size=(batch, n)) < 0.3
    query = BatchNeighborQuery(side, batch, backend=backend)
    hits = benchmark(query.any_within, positions, informed, ~informed, radius)
    assert hits.shape == (batch, n)
