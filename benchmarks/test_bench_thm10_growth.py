"""Benchmark: regenerate Informed-cell growth in the Central Zone (Theorem 10).

Paper artifact: Theorem 10 / Lemmas 8-9 / Claim 11
Step-by-step Lemma-9 growth recurrence and completion vs 18 L/R.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_thm10_growth(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("thm10_growth",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
