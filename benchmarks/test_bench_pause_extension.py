"""Benchmark: regenerate MRWP with pause times (Random-Trip extension).

Paper artifact: Section 3 closing remark / refs [21, 22, 23]
Closed-form mixture law of pause-MRWP and its flooding-time cost.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_pause_extension(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("pause_extension",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
