"""Benchmark: regenerate Turn counts per window (Lemma 13).

Paper artifact: Lemma 13
Max per-agent turn counts vs the 4 log n / log(L/(v tau)) bound.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_lemma13_turns(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("lemma13_turns",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
