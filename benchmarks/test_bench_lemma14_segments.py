"""Benchmark: regenerate Good inward segments of corner agents (Lemma 14).

Paper artifact: Lemma 14
Conditioned corner agents' longest inward runs vs the Lemma-14 bound.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_lemma14_segments(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("lemma14_segments",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
