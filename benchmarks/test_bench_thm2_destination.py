"""Benchmark: regenerate Process-level destination law vs Theorem 2.

Paper artifact: Theorem 2 / Section 2
Destination quadrant masses and second-leg fraction of MRWP agents near probes.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_thm2_destination(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("thm2_destination",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
