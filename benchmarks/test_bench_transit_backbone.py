"""Benchmark: regenerate Flooding time: transit backbone vs homogeneous mobility.

Paper artifact: Section 1 / ref [30]
Flooding over transit+pedestrian composites vs the paper's homogeneous regimes.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_transit_backbone(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("transit_backbone",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
