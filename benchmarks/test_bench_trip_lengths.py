"""Benchmark: regenerate Trip-length distribution of the MRWP process.

Paper artifact: Section 2 (trip mechanics)
KS test of observed trip lengths against the exact closed-form law.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_trip_lengths(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("trip_lengths",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
