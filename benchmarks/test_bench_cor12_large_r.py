"""Benchmark: regenerate Large-radius flooding within 18 L/R (Corollary 12).

Paper artifact: Corollary 12 / Theorem 10
Empty Suburb and measured flooding times under the 18 L/R bound.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_cor12_large_r(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("cor12_large_r",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
