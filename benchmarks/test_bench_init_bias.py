"""Benchmark: regenerate Stationary vs uniform initialization (perfect-simulation ablation).

Paper artifact: Section 2 / refs [6, 21, 22]
TV-to-stationary over time and flooding-time bias of cold starts.

The benchmark times one quick-scale regeneration of the artifact and
asserts its shape check passed, so `pytest benchmarks/ --benchmark-only`
doubles as a reproduction smoke suite.
"""

from repro.experiments.registry import run_experiment


def test_bench_init_bias(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("init_bias",),
        kwargs={"scale": "quick", "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert result.rows
    assert result.passed is not False
