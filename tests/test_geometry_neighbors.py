"""Cross-validation of the neighbor-engine backends."""

import numpy as np
import pytest

import repro.geometry.neighbors as neighbors_module
from repro.geometry.neighbors import (
    BruteForceNeighborEngine,
    GridNeighborEngine,
    available_backends,
    make_engine,
)

BACKENDS = available_backends()


class TestFactory:
    def test_known_backends(self):
        for name in BACKENDS:
            engine = make_engine(name, 10.0)
            assert engine.name == name

    def test_auto_resolves(self):
        engine = make_engine("auto", 10.0)
        assert engine.name in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_engine("quantum", 10.0)

    def test_bad_side_rejected(self):
        with pytest.raises(ValueError):
            GridNeighborEngine(-1.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendAgreement:
    def test_any_within_agrees_with_brute(self, backend, rng):
        sources = rng.uniform(0, 10, (70, 2))
        queries = rng.uniform(0, 10, (50, 2))
        engine = make_engine(backend, 10.0)
        brute = BruteForceNeighborEngine(10.0)
        for radius in (0.3, 1.0, 4.0):
            assert np.array_equal(
                engine.any_within(sources, queries, radius),
                brute.any_within(sources, queries, radius),
            )

    def test_count_within_agrees(self, backend, rng):
        sources = rng.uniform(0, 10, (70, 2))
        queries = rng.uniform(0, 10, (30, 2))
        engine = make_engine(backend, 10.0)
        brute = BruteForceNeighborEngine(10.0)
        assert np.array_equal(
            engine.count_within(sources, queries, 1.5),
            brute.count_within(sources, queries, 1.5),
        )

    def test_pairs_within_agrees(self, backend, rng):
        points = rng.uniform(0, 10, (80, 2))
        engine = make_engine(backend, 10.0)
        brute = BruteForceNeighborEngine(10.0)
        got = {tuple(sorted(p)) for p in engine.pairs_within(points, 1.1).tolist()}
        expected = {tuple(sorted(p)) for p in brute.pairs_within(points, 1.1).tolist()}
        assert got == expected

    def test_empty_sources(self, backend):
        engine = make_engine(backend, 10.0)
        queries = np.array([[5.0, 5.0]])
        assert not engine.any_within(np.empty((0, 2)), queries, 1.0)[0]
        assert engine.count_within(np.empty((0, 2)), queries, 1.0)[0] == 0

    def test_empty_points_pairs(self, backend):
        engine = make_engine(backend, 10.0)
        assert engine.pairs_within(np.empty((0, 2)), 1.0).shape == (0, 2)

    def test_coincident_points(self, backend):
        """Duplicate positions (possible under MRWP corners) are handled."""
        engine = make_engine(backend, 10.0)
        points = np.array([[5.0, 5.0], [5.0, 5.0], [9.0, 9.0]])
        pairs = engine.pairs_within(points, 0.5)
        assert {tuple(sorted(p)) for p in pairs.tolist()} == {(0, 1)}


@pytest.mark.parametrize("backend", BACKENDS)
class TestBoundSnapshot:
    """bind(): one index per snapshot, masked index-based queries."""

    def test_snapshot_matches_coordinate_api(self, backend, rng):
        points = rng.uniform(0, 10, (120, 2))
        engine = make_engine(backend, 10.0)
        brute = BruteForceNeighborEngine(10.0)
        snapshot = engine.bind(points, 1.2)
        for seed in range(3):
            sub = np.random.default_rng(seed)
            source_idx = np.nonzero(sub.uniform(size=120) < 0.3)[0]
            query_idx = np.nonzero(sub.uniform(size=120) < 0.5)[0]
            expected_any = brute.any_within(points[source_idx], points[query_idx], 1.2)
            expected_count = brute.count_within(points[source_idx], points[query_idx], 1.2)
            assert np.array_equal(snapshot.any_within(source_idx, query_idx), expected_any)
            assert np.array_equal(snapshot.count_within(source_idx, query_idx), expected_count)

    def test_snapshot_dense_sources_few_queries(self, backend, rng):
        """The grid snapshot's full-index path (dense sources, few queries)."""
        points = rng.uniform(0, 10, (200, 2))
        engine = make_engine(backend, 10.0)
        brute = BruteForceNeighborEngine(10.0)
        snapshot = engine.bind(points, 1.5)
        source_idx = np.arange(190)
        query_idx = np.arange(190, 200)
        expected = brute.any_within(points[source_idx], points[query_idx], 1.5)
        assert np.array_equal(snapshot.any_within(source_idx, query_idx), expected)

    def test_snapshot_empty_sides(self, backend, rng):
        points = rng.uniform(0, 10, (30, 2))
        snapshot = make_engine(backend, 10.0).bind(points, 1.0)
        empty = np.empty(0, dtype=np.intp)
        some = np.arange(5)
        assert snapshot.any_within(empty, some).tolist() == [False] * 5
        assert snapshot.count_within(empty, some).tolist() == [0] * 5
        assert snapshot.any_within(some, empty).size == 0

    def test_incremental_rounds_match_rebuild(self, backend, rng):
        """Successive binds with drifting points: persistent-index engines
        must agree with a fresh engine every round."""
        engine = make_engine(backend, 10.0)
        fresh = make_engine(backend, 10.0, incremental=False) if backend == "grid" else engine
        points = rng.uniform(0, 10, (150, 2))
        for _ in range(6):
            points = np.clip(points + rng.uniform(-0.3, 0.3, points.shape), 0, 10)
            source_idx = np.nonzero(rng.uniform(size=150) < 0.4)[0]
            query_idx = np.nonzero(rng.uniform(size=150) < 0.4)[0]
            got = engine.bind(points, 1.1).any_within(source_idx, query_idx)
            expected = fresh.bind(points, 1.1).any_within(source_idx, query_idx)
            assert np.array_equal(got, expected)


class TestCachesAndProbes:
    def test_available_backends_probe_is_cached(self, monkeypatch):
        """The scipy probe must not re-run the import machinery per call."""
        first = available_backends()
        calls = []
        real_import = __builtins__["__import__"] if isinstance(__builtins__, dict) else __builtins__.__import__

        def counting_import(name, *args, **kwargs):
            if name.startswith("scipy"):
                calls.append(name)
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr("builtins.__import__", counting_import)
        assert available_backends() == first
        assert available_backends() == first
        assert calls == []

    def test_available_backends_returns_fresh_list(self):
        """Callers may mutate the returned list without corrupting the cache."""
        first = available_backends()
        first.append("bogus")
        assert "bogus" not in available_backends()

    def test_grid_snapshot_shares_one_index_per_source_set(self, rng):
        """any_within + count_within on one bound snapshot build one index
        (array identity is stable inside a snapshot, unlike the
        coordinate API where every call gathers fresh arrays)."""
        engine = GridNeighborEngine(10.0)
        points = rng.uniform(0, 10, (60, 2))
        snapshot = engine.bind(points, 1.0)
        source_idx = np.arange(20)
        query_idx = np.arange(20, 60)
        snapshot.any_within(source_idx, query_idx)
        index_first = snapshot._memo[1]
        snapshot.count_within(source_idx, query_idx)
        assert snapshot._memo[1] is index_first
        # A different source set must index afresh.
        other_idx = np.arange(10)
        snapshot.any_within(other_idx, query_idx)
        assert snapshot._memo[1] is not index_first

    def test_make_engine_rejects_unknown_options(self):
        with pytest.raises(ValueError, match="unknown engine options"):
            make_engine("grid", 10.0, warp=True)

    def test_grid_memo_detects_in_place_mutation(self, rng):
        """Advancing a positions array *in place* between calls must not
        serve a stale index (regression guard for the memo)."""
        engine = GridNeighborEngine(10.0)
        brute = BruteForceNeighborEngine(10.0)
        sources = rng.uniform(0, 6, (50, 2))
        queries = rng.uniform(0, 10, (20, 2))
        engine.any_within(sources, queries, 1.0)
        sources += 3.0  # in-place advance, same object identity
        assert np.array_equal(
            engine.any_within(sources, queries, 1.0),
            brute.any_within(sources, queries, 1.0),
        )


class TestDilate:
    def naive(self, occ, reach):
        batch, m, _ = occ.shape
        out = np.zeros_like(occ)
        for b in range(batch):
            for i in range(m):
                for j in range(m):
                    lo_i, hi_i = max(0, i - reach), min(m, i + reach + 1)
                    lo_j, hi_j = max(0, j - reach), min(m, j + reach + 1)
                    out[b, i, j] = occ[b, lo_i:hi_i, lo_j:hi_j].any()
        return out

    @pytest.mark.parametrize("reach", [0, 1, 2, 3, 5])
    def test_matches_naive_box(self, reach, rng):
        occ = rng.uniform(size=(2, 9, 9)) < 0.15
        got = neighbors_module._dilate(occ, reach)
        assert np.array_equal(got, self.naive(occ, reach))

    def test_input_not_mutated(self, rng):
        occ = rng.uniform(size=(1, 6, 6)) < 0.3
        original = occ.copy()
        neighbors_module._dilate(occ, 3)
        assert np.array_equal(occ, original)


class TestCoarseCoverDivisor:
    def test_sqrt5_cross_branch_stays_exact(self, rng, monkeypatch):
        """The cross-neighborhood branch (reach_sure == 0) only triggers
        for divisors below 2*sqrt2; pin the seed's sqrt(5) cover to keep
        it covered and exact."""
        import math

        from repro.geometry.neighbors import BatchNeighborQuery

        monkeypatch.setattr(BatchNeighborQuery, "_COVER_DIVISOR", math.sqrt(5.0))
        side, radius = 12.0, 1.4
        positions = rng.uniform(0, side, size=(3, 100, 2))
        informed = rng.uniform(size=(3, 100)) < 0.35
        query = BatchNeighborQuery(side, 3)
        got = query.any_within(positions, informed, ~informed, radius)
        brute = BatchNeighborQuery(side, 3, backend="brute")
        expected = brute.any_within(positions, informed, ~informed, radius)
        assert np.array_equal(got, expected)


class TestContactsWithin:
    """Bipartite contact materialization (the neighbor-sampling primitive)."""

    def _reference(self, points, source_idx, query_idx, radius):
        diff = points[query_idx][:, None, :] - points[source_idx][None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        qpos, spos = np.nonzero(dist2 <= radius * radius)
        return set(zip(source_idx[spos].tolist(), query_idx[qpos].tolist()))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_brute_pairs(self, backend, rng):
        points = rng.uniform(0, 10, (150, 2))
        engine = make_engine(backend, 10.0)
        snapshot = engine.bind(points, 1.3)
        informed = rng.uniform(size=150) < 0.4
        source_idx = np.nonzero(informed)[0]
        query_idx = np.nonzero(~informed)[0]
        s, q = snapshot.contacts_within(source_idx, query_idx)
        assert set(zip(s.tolist(), q.tolist())) == self._reference(
            points, source_idx, query_idx, 1.3
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dense_sources_few_queries(self, backend, rng):
        """The late-round shape (sources ~ n, a handful of queries) — the
        grid backend's persistent full-index path."""
        points = rng.uniform(0, 12, (200, 2))
        engine = make_engine(backend, 12.0)
        snapshot = engine.bind(points, 1.5)
        source_idx = np.arange(197)
        query_idx = np.array([197, 198, 199])
        s, q = snapshot.contacts_within(source_idx, query_idx)
        assert set(zip(s.tolist(), q.tolist())) == self._reference(
            points, source_idx, query_idx, 1.5
        )

    def test_empty_sides(self, rng):
        points = rng.uniform(0, 10, (20, 2))
        snapshot = make_engine("grid", 10.0).bind(points, 1.0)
        empty = np.empty(0, dtype=np.intp)
        for source_idx, query_idx in ((empty, np.arange(20)), (np.arange(20), empty)):
            s, q = snapshot.contacts_within(source_idx, query_idx)
            assert s.size == 0 and q.size == 0


class TestBatchContactsAndPairs:
    """Batched bipartite contacts and per-replica edge lists."""

    def test_batch_contacts_match_scalar(self, rng):
        from repro.geometry.neighbors import BatchNeighborQuery

        batch, n, side, radius = 4, 90, 11.0, 1.4
        positions = rng.uniform(0, side, size=(batch, n, 2))
        informed = rng.uniform(size=(batch, n)) < 0.4
        query = BatchNeighborQuery(side, batch)
        snapshot = query.bind(positions)
        rep, s, t = snapshot.contacts_within(informed, ~informed, radius)
        brute = make_engine("brute", side)
        for b in range(batch):
            scalar = brute.bind(positions[b], radius).contacts_within(
                np.nonzero(informed[b])[0], np.nonzero(~informed[b])[0]
            )
            expected = set(zip(scalar[0].tolist(), scalar[1].tolist()))
            got = set(zip(s[rep == b].tolist(), t[rep == b].tolist()))
            assert got == expected, b

    def test_batch_pairs_match_scalar_engines(self, rng):
        from repro.geometry.neighbors import BatchNeighborQuery

        batch, n, side, radius = 3, 80, 10.0, 1.2
        positions = rng.uniform(0, side, size=(batch, n, 2))
        query = BatchNeighborQuery(side, batch)
        rep, i, j = query.bind(positions).pairs_within(radius)
        assert np.all(i < j)
        brute = make_engine("brute", side)
        for b in range(batch):
            expected = {tuple(p) for p in brute.pairs_within(positions[b], radius).tolist()}
            got = set(zip(i[rep == b].tolist(), j[rep == b].tolist()))
            assert got == expected, b

    def test_pairs_rows_restriction(self, rng):
        from repro.geometry.neighbors import BatchNeighborQuery

        batch, n, side, radius = 4, 60, 9.0, 1.5
        positions = rng.uniform(0, side, size=(batch, n, 2))
        query = BatchNeighborQuery(side, batch)
        rows = np.array([1, 3])
        rep, i, j = query.bind(positions).pairs_within(radius, rows=rows)
        assert set(np.unique(rep)) <= {1, 3}
        full_rep, full_i, full_j = query.bind(positions).pairs_within(radius)
        for b in rows:
            expected = set(zip(full_i[full_rep == b].tolist(), full_j[full_rep == b].tolist()))
            got = set(zip(i[rep == b].tolist(), j[rep == b].tolist()))
            assert got == expected
