"""Cross-validation of the neighbor-engine backends."""

import numpy as np
import pytest

from repro.geometry.neighbors import (
    BruteForceNeighborEngine,
    GridNeighborEngine,
    available_backends,
    make_engine,
)

BACKENDS = available_backends()


class TestFactory:
    def test_known_backends(self):
        for name in BACKENDS:
            engine = make_engine(name, 10.0)
            assert engine.name == name

    def test_auto_resolves(self):
        engine = make_engine("auto", 10.0)
        assert engine.name in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_engine("quantum", 10.0)

    def test_bad_side_rejected(self):
        with pytest.raises(ValueError):
            GridNeighborEngine(-1.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendAgreement:
    def test_any_within_agrees_with_brute(self, backend, rng):
        sources = rng.uniform(0, 10, (70, 2))
        queries = rng.uniform(0, 10, (50, 2))
        engine = make_engine(backend, 10.0)
        brute = BruteForceNeighborEngine(10.0)
        for radius in (0.3, 1.0, 4.0):
            assert np.array_equal(
                engine.any_within(sources, queries, radius),
                brute.any_within(sources, queries, radius),
            )

    def test_count_within_agrees(self, backend, rng):
        sources = rng.uniform(0, 10, (70, 2))
        queries = rng.uniform(0, 10, (30, 2))
        engine = make_engine(backend, 10.0)
        brute = BruteForceNeighborEngine(10.0)
        assert np.array_equal(
            engine.count_within(sources, queries, 1.5),
            brute.count_within(sources, queries, 1.5),
        )

    def test_pairs_within_agrees(self, backend, rng):
        points = rng.uniform(0, 10, (80, 2))
        engine = make_engine(backend, 10.0)
        brute = BruteForceNeighborEngine(10.0)
        got = {tuple(sorted(p)) for p in engine.pairs_within(points, 1.1).tolist()}
        expected = {tuple(sorted(p)) for p in brute.pairs_within(points, 1.1).tolist()}
        assert got == expected

    def test_empty_sources(self, backend):
        engine = make_engine(backend, 10.0)
        queries = np.array([[5.0, 5.0]])
        assert not engine.any_within(np.empty((0, 2)), queries, 1.0)[0]
        assert engine.count_within(np.empty((0, 2)), queries, 1.0)[0] == 0

    def test_empty_points_pairs(self, backend):
        engine = make_engine(backend, 10.0)
        assert engine.pairs_within(np.empty((0, 2)), 1.0).shape == (0, 2)

    def test_coincident_points(self, backend):
        """Duplicate positions (possible under MRWP corners) are handled."""
        engine = make_engine(backend, 10.0)
        points = np.array([[5.0, 5.0], [5.0, 5.0], [9.0, 9.0]])
        pairs = engine.pairs_within(points, 0.5)
        assert {tuple(sorted(p)) for p in pairs.tolist()} == {(0, 1)}
