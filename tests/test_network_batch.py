"""Parity suite for the batched temporal-graph analytics layer.

Every batched kernel must reproduce its scalar reference exactly:
canonical union-find labels (up to dense relabeling), byte-identical
incremental radius sweeps vs per-radius disk-graph rebuilds, exact MST
thresholds cross-validated against the retained bisection, per-source
temporal BFS / journey matrices, and contact-trace round-trips.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.network.batch_union_find as buf
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.network.batch_union_find import (
    BatchUnionFind,
    batch_components_from_edges,
    batch_mst_bottleneck,
    mst_bottleneck,
)
from repro.network.connectivity import (
    batch_connectivity_profile,
    batch_connectivity_threshold,
    connectivity_profile,
    estimate_connectivity_threshold,
)
from repro.network.contacts import batch_record_contacts, record_contacts
from repro.network.disk_graph import DiskGraph
from repro.network.evolving import batch_temporal_bfs, journey_times, temporal_bfs
from repro.network.snapshots import SnapshotSeries, take_snapshots
from repro.network.union_find import UnionFind, components_from_edges


def _random_replica_edges(rng, batch_size, n, m):
    """Random per-replica edge lists as (replica, u, v) arrays."""
    replica = rng.integers(0, batch_size, size=m)
    u = rng.integers(0, n, size=m)
    v = rng.integers(0, n, size=m)
    return replica.astype(np.intp), u.astype(np.intp), v.astype(np.intp)


class TestBatchUnionFind:
    @given(
        n=st.integers(min_value=1, max_value=25),
        batch_size=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_dense_labels_match_scalar(self, n, batch_size, seed):
        rng = np.random.default_rng(seed)
        replica, u, v = _random_replica_edges(rng, batch_size, n, rng.integers(0, 3 * n))
        dense = batch_components_from_edges(batch_size, n, replica, u, v)
        for b in range(batch_size):
            mask = replica == b
            edges = np.stack([u[mask], v[mask]], axis=1)
            assert np.array_equal(dense[b], components_from_edges(n, edges))

    def test_labels_are_min_vertex_canonical(self):
        uf = BatchUnionFind(2, 6)
        uf.add_edges([5, 2], [3, 1], replica=[0, 0])
        uf.add_edges([0], [5], replica=[1])
        labels = uf.labels()
        assert labels[0].tolist() == [0, 1, 1, 3, 4, 3]
        assert labels[1].tolist() == [0, 1, 2, 3, 4, 0]

    def test_incremental_ingestion_equals_one_shot(self):
        rng = np.random.default_rng(7)
        replica, u, v = _random_replica_edges(rng, 3, 20, 60)
        whole = BatchUnionFind(3, 20)
        whole.add_edges(u, v, replica=replica)
        halves = BatchUnionFind(3, 20)
        halves.add_edges(u[:30], v[:30], replica=replica[:30])
        halves.add_edges(u[30:], v[30:], replica=replica[30:])
        assert np.array_equal(whole.labels(), halves.labels())

    def test_shared_edges_tile_to_all_replicas(self):
        uf = BatchUnionFind(3, 4)
        uf.add_edges([0], [3])
        assert np.array_equal(uf.labels(), np.tile([0, 1, 2, 0], (3, 1)))

    def test_component_stats_match_scalar(self):
        rng = np.random.default_rng(11)
        replica, u, v = _random_replica_edges(rng, 4, 15, 25)
        uf = BatchUnionFind(4, 15)
        uf.add_edges(u, v, replica=replica)
        for b in range(4):
            mask = replica == b
            scalar = UnionFind(15)
            scalar.add_edges(np.stack([u[mask], v[mask]], axis=1))
            assert uf.n_components()[b] == scalar.n_components
            sizes = uf.component_sizes_at_root()[b]
            assert sizes.sum() == 15
            assert uf.giant_fraction()[b] == max(
                scalar.component_size(i) for i in range(15)
            ) / 15
            assert uf.connected_mask()[b] == (scalar.n_components == 1)

    def test_validation(self):
        uf = BatchUnionFind(2, 5)
        with pytest.raises(ValueError):
            uf.add_edges([0], [5])
        with pytest.raises(ValueError):
            uf.add_edges([0], [1], replica=[2])
        with pytest.raises(ValueError):
            uf.add_edges([0, 1], [1])
        with pytest.raises(ValueError):
            BatchUnionFind(0, 5)

    def test_scalar_labels_vectorized_path(self):
        uf = UnionFind(8)
        uf.add_edges(np.array([[0, 7], [7, 3], [2, 4]]))
        labels = uf.labels()
        assert labels[0] == labels[7] == labels[3]
        assert labels[2] == labels[4]
        assert len(set(labels.tolist())) == 8 - 3


class TestMSTBottleneck:
    def _geometric(self, rng, n, radius):
        positions = rng.uniform(0, 5.0, size=(n, 2))
        graph = DiskGraph(positions, radius, side=5.0)
        edges = graph.edges
        diff = positions[edges[:, 0]] - positions[edges[:, 1]]
        return graph, edges, np.sum(diff * diff, axis=1)

    @pytest.mark.parametrize("force_boruvka", [False, True])
    def test_scipy_and_boruvka_agree(self, force_boruvka, monkeypatch):
        if force_boruvka:
            monkeypatch.setattr(buf, "_HAVE_SCIPY_MST", False)
        rng = np.random.default_rng(5)
        for _ in range(10):
            graph, edges, d2 = self._geometric(rng, 40, 1.6)
            got = mst_bottleneck(40, edges[:, 0], edges[:, 1], d2)
            if graph.is_connected():
                # The bottleneck is the smallest radius^2 keeping the graph
                # connected: connected at sqrt(got), disconnected just below.
                assert DiskGraph(graph.positions, math.sqrt(got) + 1e-9, side=5.0).is_connected()
                below = math.nextafter(math.sqrt(got), 0.0) * (1 - 1e-12)
                assert not DiskGraph(graph.positions, below, side=5.0).is_connected()
            else:
                assert math.isinf(got)

    @pytest.mark.parametrize("force_boruvka", [False, True])
    def test_batch_matches_scalar(self, force_boruvka, monkeypatch):
        if force_boruvka:
            monkeypatch.setattr(buf, "_HAVE_SCIPY_MST", False)
        rng = np.random.default_rng(9)
        batch_size, n = 6, 30
        rep_parts, u_parts, v_parts, w_parts, expected = [], [], [], [], []
        for b in range(batch_size):
            _, edges, d2 = self._geometric(rng, n, 1.8)
            rep_parts.append(np.full(edges.shape[0], b, dtype=np.intp))
            u_parts.append(edges[:, 0])
            v_parts.append(edges[:, 1])
            w_parts.append(d2)
            expected.append(mst_bottleneck(n, edges[:, 0], edges[:, 1], d2))
        got = batch_mst_bottleneck(
            batch_size,
            n,
            np.concatenate(rep_parts),
            np.concatenate(u_parts),
            np.concatenate(v_parts),
            np.concatenate(w_parts),
        )
        assert np.allclose(got, expected, atol=1e-12, equal_nan=False)

    @pytest.mark.parametrize("force_boruvka", [False, True])
    def test_zero_weight_edges_survive(self, force_boruvka, monkeypatch):
        if force_boruvka:
            monkeypatch.setattr(buf, "_HAVE_SCIPY_MST", False)
        # Two coincident points: the zero-weight edge must not vanish.
        u = np.array([0, 1])
        v = np.array([1, 2])
        w = np.array([0.0, 4.0])
        assert mst_bottleneck(3, u, v, w) == 4.0
        assert batch_mst_bottleneck(1, 3, np.zeros(2, dtype=np.intp), u, v, w)[0] == 4.0

    def test_trivial_sizes(self):
        assert mst_bottleneck(0, [], [], []) == 0.0
        assert mst_bottleneck(1, [], [], []) == 0.0
        assert math.isinf(mst_bottleneck(2, [], [], []))
        assert np.array_equal(batch_mst_bottleneck(3, 1, [], [], [], []), np.zeros(3))


class TestIncrementalProfile:
    def _rebuild(self, positions, side, radii):
        """Per-radius disk-graph rebuilds — the pre-incremental reference."""
        n = positions.shape[0]
        out = {
            "giant_fraction": [], "n_components": [],
            "isolated_fraction": [], "connected": [],
        }
        for radius in radii:
            graph = DiskGraph(positions, max(float(radius), 0.0), side=side)
            out["giant_fraction"].append(graph.giant_component_fraction())
            out["n_components"].append(graph.n_components())
            out["isolated_fraction"].append(
                float(np.count_nonzero(graph.isolated_mask())) / max(1, n)
            )
            out["connected"].append(graph.is_connected())
        return {key: np.asarray(val) for key, val in out.items()}

    def test_byte_identical_to_rebuild(self):
        rng = np.random.default_rng(2)
        side = 12.0
        positions = rng.uniform(0, side, size=(150, 2))
        radii = [0.8, 2.5, 0.3, 1.4, 1.4, 6.0]
        profile = connectivity_profile(positions, side, radii)
        rebuilt = self._rebuild(positions, side, radii)
        for key, val in rebuilt.items():
            assert np.array_equal(profile[key], val), key

    def test_batch_rows_equal_scalar(self):
        rng = np.random.default_rng(4)
        side = 10.0
        stack = rng.uniform(0, side, size=(5, 80, 2))
        radii = [0.5, 1.5, 3.0]
        batched = batch_connectivity_profile(stack, side, radii)
        for b in range(5):
            scalar = connectivity_profile(stack[b], side, radii)
            for key in ("giant_fraction", "n_components", "isolated_fraction", "connected"):
                assert np.array_equal(batched[key][b], scalar[key]), (key, b)

    def test_degenerate_inputs(self):
        empty = connectivity_profile(np.empty((0, 2)), 5.0, [1.0, 2.0])
        assert empty["connected"].tolist() == [True, True]
        assert empty["giant_fraction"].tolist() == [0.0, 0.0]
        no_radii = connectivity_profile(np.zeros((3, 2)), 5.0, [])
        assert no_radii["radius"].size == 0
        # Negative radii admit no edges at all, while radius 0 is inclusive
        # (d2 <= r*r), so coincident points connect only at r >= 0.
        negative = connectivity_profile(np.zeros((2, 2)), 5.0, [-1.0, 0.0])
        assert negative["connected"].tolist() == [False, True]


class TestConnectivityThreshold:
    def _stationary_stack(self, batch_size, n, seed):
        from repro.mobility.stationary import PalmStationarySampler

        side = math.sqrt(n)
        sampler = PalmStationarySampler(side)
        rng = np.random.default_rng(seed)
        return np.stack(
            [sampler.sample(n, rng).positions for _ in range(batch_size)], axis=0
        ), side

    def test_mst_agrees_with_bisection(self):
        stack, side = self._stationary_stack(3, 200, 1)
        tol = side * 1e-3
        for positions in stack:
            exact = estimate_connectivity_threshold(positions, side)
            bisect = estimate_connectivity_threshold(positions, side, method="bisect")
            # Bisection returns its upper endpoint: >= exact, within tol.
            assert -1e-9 <= bisect - exact <= tol + 1e-9

    def test_threshold_is_exact_bottleneck(self):
        stack, side = self._stationary_stack(2, 150, 3)
        for positions in stack:
            threshold = estimate_connectivity_threshold(positions, side)
            assert DiskGraph(positions, threshold, side=side).is_connected()
            below = math.nextafter(threshold, 0.0) * (1 - 1e-12)
            assert not DiskGraph(positions, below, side=side).is_connected()

    def test_batch_matches_scalar(self):
        stack, side = self._stationary_stack(4, 120, 6)
        batched = batch_connectivity_threshold(stack, side)
        scalar = [estimate_connectivity_threshold(p, side) for p in stack]
        assert np.allclose(batched, scalar, atol=1e-12)

    def test_mask_and_trivial_cases(self):
        stack, side = self._stationary_stack(1, 100, 8)
        positions = stack[0]
        mask = positions[:, 0] < side / 2
        masked = estimate_connectivity_threshold(positions, side, mask=mask)
        direct = estimate_connectivity_threshold(positions[mask], side)
        assert masked == direct
        assert estimate_connectivity_threshold(positions[:1], side) == 0.0
        assert estimate_connectivity_threshold(positions[:0], side) == 0.0
        with pytest.raises(ValueError):
            estimate_connectivity_threshold(positions, side, method="newton")


def _series(n=60, steps=8, seed=12):
    side = math.sqrt(n)
    radius = 1.1 * math.sqrt(math.log(n))
    model = ManhattanRandomWaypoint(n, side, 0.3 * radius, rng=np.random.default_rng(seed))
    return SnapshotSeries(take_snapshots(model, steps), radius, side)


class TestBatchTemporalBFS:
    @pytest.mark.parametrize("multi_hop", [False, True])
    def test_rows_equal_scalar(self, multi_hop):
        series = _series()
        sources = [0, 7, 33, 59]
        batched = batch_temporal_bfs(series, sources, multi_hop=multi_hop)
        for row, source in zip(batched, sources):
            assert np.array_equal(row, temporal_bfs(series, source, multi_hop=multi_hop))

    def test_journey_times_engines_identical(self):
        series = _series(seed=13)
        sources = [3, 3, 20]
        batch = journey_times(series, sources, engine="batch")
        scalar = journey_times(series, sources, engine="scalar")
        auto = journey_times(series, sources)
        assert np.array_equal(batch, scalar)
        assert np.array_equal(batch, auto)

    def test_empty_and_invalid_sources(self):
        series = _series(n=20, steps=2)
        assert journey_times(series, [], engine="batch").shape == (0, 20)
        assert journey_times(series, [], engine="scalar").shape == (0, 20)
        with pytest.raises(ValueError):
            batch_temporal_bfs(series, [20])
        with pytest.raises(ValueError):
            journey_times(series, [0], engine="warp")


class TestBatchContacts:
    def _frames(self, replicas=3, n=50, steps=6, seed=21):
        side = math.sqrt(n)
        radius = 1.0 * math.sqrt(math.log(n))
        frames = np.stack(
            [
                take_snapshots(
                    ManhattanRandomWaypoint(
                        n, side, 0.4 * radius, rng=np.random.default_rng([seed, b])
                    ),
                    steps,
                )
                for b in range(replicas)
            ],
            axis=0,
        )
        return frames, radius, side

    def test_round_trip_byte_identical(self):
        frames, radius, side = self._frames()
        batched = batch_record_contacts(frames, radius, side)
        for b in range(frames.shape[0]):
            series = SnapshotSeries(frames[b], radius, side)
            scalar = record_contacts(series, radius=radius)
            assert batched[b].n == scalar.n
            assert batched[b].n_steps == scalar.n_steps
            for t in range(frames.shape[1]):
                assert np.array_equal(batched[b].contacts_at(t), scalar.contacts_at(t))

    def test_pairs_are_canonically_ordered(self):
        frames, radius, side = self._frames(replicas=2)
        for trace in batch_record_contacts(frames, radius, side):
            for pairs in trace.step_pairs:
                assert np.all(pairs[:, 0] < pairs[:, 1])
                if pairs.shape[0] > 1:
                    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
                    assert np.array_equal(order, np.arange(pairs.shape[0]))

    def test_derived_statistics_agree(self):
        frames, radius, side = self._frames(replicas=2, seed=22)
        batched = batch_record_contacts(frames, radius, side)
        for b in range(2):
            scalar = record_contacts(SnapshotSeries(frames[b], radius, side), radius=radius)
            assert np.array_equal(batched[b].contact_counts(), scalar.contact_counts())
            agents = list(range(10))
            assert batched[b].first_meeting_times(agents) == scalar.first_meeting_times(agents)
            assert np.array_equal(
                batched[b].inter_contact_times(), scalar.inter_contact_times()
            )

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            batch_record_contacts(np.zeros((2, 3, 4)), 1.0, 5.0)
