"""Tests of the step engine and metric observers."""

import math

import numpy as np
import pytest

from repro.core.flooding import build_zone_partition
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.epidemic import SIREpidemic
from repro.simulation.engine import Simulation
from repro.simulation.metrics import InformedRecorder, ZoneRecorder

SIDE = 15.0
N = 200


def make_parts(seed=0, radius=2.5):
    model = ManhattanRandomWaypoint(N, SIDE, 0.5, rng=np.random.default_rng(seed))
    protocol = FloodingProtocol(N, SIDE, radius, 0)
    return model, protocol


class TestSimulation:
    def test_size_mismatch_rejected(self):
        model, _ = make_parts()
        protocol = FloodingProtocol(N + 1, SIDE, 2.5, 0)
        with pytest.raises(ValueError):
            Simulation(model, protocol)

    def test_stops_when_complete(self):
        model, protocol = make_parts()
        simulation = Simulation(model, protocol)
        steps = simulation.run(1000)
        assert protocol.is_complete()
        assert steps < 1000

    def test_respects_max_steps(self):
        model, protocol = make_parts(radius=0.1)
        simulation = Simulation(model, protocol)
        steps = simulation.run(5)
        assert steps == 5

    def test_stops_when_stalled(self):
        model = ManhattanRandomWaypoint(N, SIDE, 0.5, rng=np.random.default_rng(1))
        protocol = SIREpidemic(N, SIDE, 0.05, 0, rng=np.random.default_rng(2), recovery_prob=1.0)
        simulation = Simulation(model, protocol)
        steps = simulation.run(100)
        # Source recovers after its first transmission with an empty radius:
        # the run ends long before the horizon.
        assert steps <= 3

    def test_stop_when_complete_false_runs_full(self):
        model, protocol = make_parts()
        simulation = Simulation(model, protocol)
        steps = simulation.run(30, stop_when_complete=False)
        assert steps == 30

    def test_negative_max_steps(self):
        model, protocol = make_parts()
        with pytest.raises(ValueError):
            Simulation(model, protocol).run(-1)

    def test_informed_property_is_copy(self):
        model, protocol = make_parts()
        simulation = Simulation(model, protocol)
        informed = simulation.informed
        informed[:] = True
        assert protocol.informed_count == 1


class TestInformedRecorder:
    def test_history_tracks_counts(self):
        model, protocol = make_parts()
        recorder = InformedRecorder()
        simulation = Simulation(model, protocol, observers=[recorder])
        steps = simulation.run(500)
        history = recorder.informed_history()
        assert history.shape == (steps + 1,)
        assert history[0] == 1
        assert history[-1] == protocol.informed_count
        assert np.all(np.diff(history) >= 0)
        assert sum(recorder.newly_per_step) == history[-1] - 1


class TestZoneRecorder:
    def test_completion_times_recorded(self):
        model, protocol = make_parts()
        zones = build_zone_partition(N, SIDE, 2.5)
        assert zones is not None
        recorder = ZoneRecorder(zones)
        simulation = Simulation(model, protocol, observers=[recorder])
        simulation.run(500)
        assert math.isfinite(recorder.cz_completion_time)
        assert math.isfinite(recorder.suburb_completion_time)
        assert recorder.cz_fraction_history[-1] == 1.0

    def test_fractions_bounded(self):
        model, protocol = make_parts()
        zones = build_zone_partition(N, SIDE, 2.5)
        recorder = ZoneRecorder(zones)
        Simulation(model, protocol, observers=[recorder]).run(50)
        assert all(0.0 <= f <= 1.0 for f in recorder.cz_fraction_history)
        assert all(0.0 <= f <= 1.0 for f in recorder.suburb_fraction_history)

    def test_completion_is_first_time(self):
        """Completion times never decrease once set."""
        model, protocol = make_parts()
        zones = build_zone_partition(N, SIDE, 2.5)
        recorder = ZoneRecorder(zones)
        simulation = Simulation(model, protocol, observers=[recorder])
        simulation.run(500)
        t = recorder.cz_completion_time
        # The fraction at the recorded step is 1.
        assert recorder.cz_fraction_history[int(t)] == 1.0
        assert all(f < 1.0 for f in recorder.cz_fraction_history[: int(t)])
