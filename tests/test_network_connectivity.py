"""Tests of connectivity analysis (thresholds, profiles, zone splits)."""

import math

import numpy as np
import pytest

from repro.network.connectivity import (
    connectivity_profile,
    estimate_connectivity_threshold,
    uniform_connectivity_threshold,
    zone_connectivity,
)
from repro.network.disk_graph import DiskGraph

SIDE = 10.0


class TestUniformThreshold:
    def test_formula(self):
        n = 1000
        expected = SIDE * math.sqrt(math.log(n) / (math.pi * n))
        assert uniform_connectivity_threshold(n, SIDE) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_connectivity_threshold(1, SIDE)
        with pytest.raises(ValueError):
            uniform_connectivity_threshold(100, -1.0)


class TestThresholdEstimation:
    def test_threshold_is_mst_bottleneck(self, rng):
        """The estimated threshold equals the largest MST edge (networkx)."""
        import networkx as nx

        positions = rng.uniform(0, SIDE, (40, 2))
        threshold = estimate_connectivity_threshold(positions, SIDE, tol=1e-6)
        complete = nx.Graph()
        for i in range(40):
            for j in range(i + 1, 40):
                complete.add_edge(i, j, weight=float(np.linalg.norm(positions[i] - positions[j])))
        mst = nx.minimum_spanning_tree(complete)
        bottleneck = max(d["weight"] for _, _, d in mst.edges(data=True))
        assert threshold == pytest.approx(bottleneck, abs=1e-4)

    def test_graph_connected_at_threshold(self, rng):
        positions = rng.uniform(0, SIDE, (60, 2))
        threshold = estimate_connectivity_threshold(positions, SIDE)
        assert DiskGraph(positions, threshold, side=SIDE).is_connected()

    def test_masked_threshold_smaller_for_cluster(self, rng):
        """Restricting to a dense cluster lowers the threshold."""
        cluster = rng.uniform(4, 6, (30, 2))
        outliers = np.array([[0.1, 0.1], [9.9, 9.9]])
        positions = np.vstack([cluster, outliers])
        mask = np.zeros(32, dtype=bool)
        mask[:30] = True
        full = estimate_connectivity_threshold(positions, SIDE)
        masked = estimate_connectivity_threshold(positions, SIDE, mask=mask)
        assert masked < full

    def test_trivial_cases(self):
        assert estimate_connectivity_threshold(np.empty((0, 2)), SIDE) == 0.0
        assert estimate_connectivity_threshold(np.array([[1.0, 1.0]]), SIDE) == 0.0


class TestProfile:
    def test_profile_monotonicity(self, rng):
        positions = rng.uniform(0, SIDE, (150, 2))
        profile = connectivity_profile(positions, SIDE, [0.3, 0.8, 1.5, 3.0])
        assert np.all(np.diff(profile["giant_fraction"]) >= -1e-12)
        assert np.all(np.diff(profile["n_components"]) <= 0)
        assert np.all(np.diff(profile["isolated_fraction"]) <= 1e-12)

    def test_profile_keys_and_shapes(self, rng):
        positions = rng.uniform(0, SIDE, (20, 2))
        profile = connectivity_profile(positions, SIDE, [1.0, 2.0])
        for key in ("radius", "giant_fraction", "n_components", "isolated_fraction", "connected"):
            assert len(profile[key]) == 2


class TestZoneConnectivity:
    def test_dense_zone_connected_sparse_outside(self):
        rng = np.random.default_rng(5)
        zone_points = rng.uniform(4, 6, (50, 2))
        corner_points = np.array([[0.2, 0.2], [9.8, 9.8], [0.3, 9.7]])
        positions = np.vstack([zone_points, corner_points])
        zone_mask = np.zeros(53, dtype=bool)
        zone_mask[:50] = True
        result = zone_connectivity(positions, SIDE, radius=0.9, zone_mask=zone_mask)
        assert result["zone_connected"]
        assert not result["full_connected"]
        assert result["outside_isolated_fraction"] == pytest.approx(1.0)

    def test_empty_zone_handled(self, rng):
        positions = rng.uniform(0, SIDE, (10, 2))
        result = zone_connectivity(
            positions, SIDE, radius=1.0, zone_mask=np.zeros(10, dtype=bool)
        )
        assert result["zone_connected"]
