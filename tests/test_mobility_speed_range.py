"""Tests of the random-speed MRWP variant and the speed-decay phenomenon."""

import numpy as np
import pytest

from repro.analysis.validation import spatial_distribution_tv
from repro.geometry.points import in_square
from repro.mobility.speed_range import (
    RandomSpeedManhattanWaypoint,
    cold_start_speed_decay,
    sample_stationary_speeds,
    stationary_mean_speed,
)

SIDE = 20.0


class TestStationarySpeedLaw:
    def test_mean_formula(self):
        v = stationary_mean_speed(1.0, np.e)  # ln(e) = 1
        assert v == pytest.approx(np.e - 1.0)

    def test_degenerate_range(self):
        assert stationary_mean_speed(2.0, 2.0) == 2.0

    def test_below_uniform_mean(self):
        assert stationary_mean_speed(0.5, 2.0) < (0.5 + 2.0) / 2

    def test_sampler_matches_one_over_v(self, rng):
        speeds = sample_stationary_speeds(200_000, 0.5, 2.0, rng)
        assert speeds.min() >= 0.5
        assert speeds.max() <= 2.0
        assert speeds.mean() == pytest.approx(stationary_mean_speed(0.5, 2.0), rel=0.01)
        # Median of the 1/v law: geometric mean of the endpoints.
        assert np.median(speeds) == pytest.approx(np.sqrt(0.5 * 2.0), rel=0.01)

    def test_vmin_zero_rejected(self, rng):
        with pytest.raises(ValueError):
            stationary_mean_speed(0.0, 1.0)
        with pytest.raises(ValueError):
            sample_stationary_speeds(10, 0.0, 1.0, rng)
        with pytest.raises(ValueError):
            RandomSpeedManhattanWaypoint(10, SIDE, 0.0, 1.0)


class TestModel:
    def test_stays_in_square(self):
        model = RandomSpeedManhattanWaypoint(
            200, SIDE, 0.2, 1.0, rng=np.random.default_rng(0)
        )
        for _ in range(30):
            assert in_square(model.step(), SIDE, tol=1e-9).all()

    def test_displacement_within_trip_speed(self):
        model = RandomSpeedManhattanWaypoint(
            300, SIDE, 0.2, 1.0, rng=np.random.default_rng(1)
        )
        before = model.positions
        speeds = model.trip_speeds
        after = model.step()
        manhattan = np.abs(after - before).sum(axis=1)
        # Each agent moves at most its own trip speed (new trips may draw a
        # different speed mid-step — bounded by v_max).
        assert np.all(manhattan <= np.maximum(speeds, 1.0) + 1e-9)

    def test_spatial_law_still_theorem1(self):
        """Speed randomization leaves the spatial stationary law unchanged."""
        model = RandomSpeedManhattanWaypoint(
            25_000, SIDE, 0.1, 1.0, rng=np.random.default_rng(2)
        )
        model.advance(20)
        assert spatial_distribution_tv(model.positions, SIDE, bins=8) < 0.04

    def test_stationary_mean_speed_preserved(self):
        """Perfect-simulation start: the time-average speed stays at the
        harmonic-style mean under stepping (no transient)."""
        model = RandomSpeedManhattanWaypoint(
            30_000, SIDE, 0.2, 2.0, rng=np.random.default_rng(3)
        )
        expected = stationary_mean_speed(0.2, 2.0)
        assert model.mean_current_speed == pytest.approx(expected, rel=0.02)
        model.advance(25)
        assert model.mean_current_speed == pytest.approx(expected, rel=0.02)

    def test_invalid_init(self):
        with pytest.raises(ValueError):
            RandomSpeedManhattanWaypoint(10, SIDE, 0.5, 1.0, init="hot")


class TestSpeedDecay:
    def test_cold_start_decays_toward_stationary(self):
        report = cold_start_speed_decay(
            20_000, SIDE, 0.05, 1.0, steps=250, rng=np.random.default_rng(4), every=50
        )
        series = report["mean_speed"]
        assert series[0] == pytest.approx(report["uniform_mean"], rel=0.02)
        # Decay is monotone-ish and clearly below the starting value.
        assert series[-1] < series[0]
        # Converging toward (not past) the stationary mean.
        assert series[-1] > report["stationary_mean"] * 0.9
        gap0 = series[0] - report["stationary_mean"]
        gap_end = series[-1] - report["stationary_mean"]
        assert gap_end < 0.5 * gap0

    def test_report_structure(self):
        report = cold_start_speed_decay(
            500, SIDE, 0.5, 1.0, steps=10, rng=np.random.default_rng(5), every=5
        )
        assert report["steps"][0] == 0
        assert report["steps"][-1] == 10
        assert report["mean_speed"].shape == report["steps"].shape
