"""Tests of the broadcast protocols."""

import numpy as np
import pytest

from repro.protocols import (
    PROTOCOL_REGISTRY,
    FloodingProtocol,
    GossipProtocol,
    ParsimoniousFlooding,
    ProbabilisticFlooding,
    SIREpidemic,
)

SIDE = 10.0
N = 50


def cluster_positions(rng=None, n=N):
    """Everyone within one hop of everyone (distance << R)."""
    rng = rng or np.random.default_rng(0)
    return 5.0 + rng.uniform(-0.1, 0.1, size=(n, 2))


def line_positions(n=N, spacing=1.0):
    """A line of agents spaced exactly `spacing` apart."""
    x = np.arange(n) * spacing
    return np.stack([x % SIDE + 0.0 * x, np.zeros(n)], axis=1)


class TestBaseValidation:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FloodingProtocol(0, SIDE, 1.0, 0)
        with pytest.raises(ValueError):
            FloodingProtocol(5, SIDE, 0.0, 0)
        with pytest.raises(ValueError):
            FloodingProtocol(5, SIDE, 1.0, 5)

    def test_initial_state(self):
        protocol = FloodingProtocol(N, SIDE, 1.0, 3)
        assert protocol.informed_count == 1
        assert protocol.informed[3]
        assert protocol.informed_at[3] == 0.0
        assert not protocol.is_complete()

    def test_registry_complete(self):
        assert set(PROTOCOL_REGISTRY) == {
            "flooding",
            "gossip",
            "push-pull",
            "parsimonious",
            "probabilistic",
            "sir",
            "crash-flooding",
        }


class TestFlooding:
    def test_one_hop_per_step(self):
        """On a static line with spacing == R, exactly one new agent per step."""
        n = 8
        positions = np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=1)
        protocol = FloodingProtocol(n, SIDE, 1.0, 0)
        for t in range(1, n):
            newly = protocol.step(positions)
            assert newly.tolist() == [t]
        assert protocol.is_complete()
        assert protocol.informed_at.tolist() == list(range(n))

    def test_multi_hop_floods_component_in_one_step(self):
        n = 8
        positions = np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=1)
        protocol = FloodingProtocol(n, SIDE, 1.0, 0, multi_hop=True)
        newly = protocol.step(positions)
        assert newly.size == n - 1
        assert protocol.is_complete()

    def test_cluster_informed_in_one_step(self):
        protocol = FloodingProtocol(N, SIDE, 1.0, 0)
        protocol.step(cluster_positions())
        assert protocol.is_complete()

    def test_no_spread_when_isolated(self):
        positions = np.array([[0.0, 0.0], [9.0, 9.0]])
        protocol = FloodingProtocol(2, SIDE, 1.0, 0)
        newly = protocol.step(positions)
        assert newly.size == 0
        assert protocol.can_progress()  # flooding never gives up

    def test_informed_set_monotone(self, rng):
        protocol = FloodingProtocol(N, SIDE, 1.5, 0)
        prev = protocol.informed.copy()
        for _ in range(10):
            positions = rng.uniform(0, SIDE, (N, 2))
            protocol.step(positions)
            assert np.all(protocol.informed[prev])  # once informed, always informed
            prev = protocol.informed.copy()


class TestGossip:
    def test_fanout_limits_spread(self):
        """k=1 gossip informs at most (informed count) new agents per step."""
        protocol = GossipProtocol(N, SIDE, 1.0, 0, rng=np.random.default_rng(0), fanout=1)
        positions = cluster_positions()
        informed_before = protocol.informed_count
        newly = protocol.step(positions)
        assert newly.size <= informed_before

    def test_gossip_eventually_completes_in_clique(self):
        protocol = GossipProtocol(N, SIDE, 1.0, 0, rng=np.random.default_rng(1), fanout=2)
        positions = cluster_positions()
        for _ in range(200):
            protocol.step(positions)
            if protocol.is_complete():
                break
        assert protocol.is_complete()

    def test_gossip_slower_than_flooding(self):
        positions = cluster_positions()
        flood = FloodingProtocol(N, SIDE, 1.0, 0)
        gossip = GossipProtocol(N, SIDE, 1.0, 0, rng=np.random.default_rng(2), fanout=1)
        flood_steps = 0
        while not flood.is_complete():
            flood.step(positions)
            flood_steps += 1
        gossip_steps = 0
        while not gossip.is_complete() and gossip_steps < 500:
            gossip.step(positions)
            gossip_steps += 1
        assert gossip_steps >= flood_steps

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            GossipProtocol(N, SIDE, 1.0, 0, fanout=0)


class TestParsimonious:
    def test_window_expires(self):
        """After the active window closes with no contact, spread stops."""
        positions_apart = np.array([[0.0, 0.0], [5.0, 0.0]])
        positions_close = np.array([[0.0, 0.0], [0.5, 0.0]])
        protocol = ParsimoniousFlooding(2, SIDE, 1.0, 0, active_window=2)
        protocol.step(positions_apart)  # window step 1: no contact
        protocol.step(positions_apart)  # window step 2: no contact
        assert not protocol.can_progress()
        newly = protocol.step(positions_close)  # too late
        assert newly.size == 0

    def test_within_window_informs(self):
        positions_close = np.array([[0.0, 0.0], [0.5, 0.0]])
        protocol = ParsimoniousFlooding(2, SIDE, 1.0, 0, active_window=2)
        newly = protocol.step(positions_close)
        assert newly.tolist() == [1]

    def test_relay_chain(self):
        """Newly informed agents get a fresh window — chains still work."""
        n = 5
        positions = np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=1)
        protocol = ParsimoniousFlooding(n, SIDE, 1.0, 0, active_window=1)
        for _ in range(n - 1):
            protocol.step(positions)
        assert protocol.is_complete()

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ParsimoniousFlooding(5, SIDE, 1.0, 0, active_window=0)


class TestProbabilistic:
    def test_p_one_equals_flooding(self, rng):
        positions = rng.uniform(0, SIDE, (N, 2))
        flood = FloodingProtocol(N, SIDE, 1.5, 0)
        prob = ProbabilisticFlooding(N, SIDE, 1.5, 0, rng=np.random.default_rng(3), p=1.0)
        for _ in range(5):
            flood.step(positions)
            prob.step(positions)
            assert np.array_equal(flood.informed, prob.informed)

    def test_small_p_slows(self):
        positions = cluster_positions()
        prob = ProbabilisticFlooding(N, SIDE, 1.0, 0, rng=np.random.default_rng(4), p=0.01)
        prob.step(positions)
        # With p=0.01 the lone source usually stays silent the first step.
        assert prob.informed_count in (1, N)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            ProbabilisticFlooding(5, SIDE, 1.0, 0, p=0.0)
        with pytest.raises(ValueError):
            ProbabilisticFlooding(5, SIDE, 1.0, 0, p=1.5)


class TestSIR:
    def test_recovery_stops_progress(self):
        protocol = SIREpidemic(2, SIDE, 1.0, 0, rng=np.random.default_rng(5), recovery_prob=1.0)
        positions_apart = np.array([[0.0, 0.0], [5.0, 0.0]])
        protocol.step(positions_apart)  # source transmits once, then recovers
        assert protocol.active_count == 0
        assert not protocol.can_progress()

    def test_zero_recovery_equals_flooding(self, rng):
        positions = rng.uniform(0, SIDE, (N, 2))
        flood = FloodingProtocol(N, SIDE, 1.5, 0)
        sir = SIREpidemic(N, SIDE, 1.5, 0, rng=np.random.default_rng(6), recovery_prob=0.0)
        for _ in range(5):
            flood.step(positions)
            sir.step(positions)
            assert np.array_equal(flood.informed, sir.informed)

    def test_informed_includes_recovered(self):
        protocol = SIREpidemic(2, SIDE, 1.0, 0, rng=np.random.default_rng(7), recovery_prob=1.0)
        positions_close = np.array([[0.0, 0.0], [0.5, 0.0]])
        protocol.step(positions_close)
        assert protocol.informed_count == 2  # agent 1 informed before recovery

    def test_invalid_recovery(self):
        with pytest.raises(ValueError):
            SIREpidemic(5, SIDE, 1.0, 0, recovery_prob=1.5)
