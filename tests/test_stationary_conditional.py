"""Tests of conditional perfect simulation (sample_at) and mixing profiles."""

import numpy as np
import pytest

from repro.analysis.convergence import estimate_mixing_time, noise_floor, tv_profile
from repro.analysis.validation import (
    destination_cross_errors,
    destination_quadrant_errors,
)
from repro.mobility.distributions import spatial_pdf
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.mobility.stationary import ClosedFormStationarySampler

SIDE = 10.0


class TestSampleAt:
    def test_positions_preserved(self, rng):
        sampler = ClosedFormStationarySampler(SIDE)
        positions = rng.uniform(0, SIDE, (100, 2))
        state = sampler.sample_at(positions, rng)
        assert np.allclose(state.positions, positions)

    def test_destination_law_at_fixed_point(self, rng):
        """Conditioned at one position, destinations follow Theorem 2."""
        sampler = ClosedFormStationarySampler(SIDE)
        point = np.array([SIDE / 3, SIDE / 4])
        positions = np.tile(point, (30_000, 1))
        state = sampler.sample_at(positions, rng)
        quad = destination_quadrant_errors(point, state.destinations, SIDE)
        cross = destination_cross_errors(point, state.destinations, SIDE)
        assert quad["max_error"] < 0.012
        assert cross["max_error"] < 0.012
        assert np.mean(state.on_second_leg) == pytest.approx(0.5, abs=0.015)

    def test_leg_state_consistent(self, rng):
        sampler = ClosedFormStationarySampler(SIDE)
        positions = rng.uniform(0, SIDE, (500, 2))
        state = sampler.sample_at(positions, rng)
        second = state.on_second_leg
        assert np.allclose(state.targets[second], state.destinations[second])
        delta = state.targets - state.positions
        aligned = np.isclose(delta[:, 0], 0, atol=1e-9) | np.isclose(delta[:, 1], 0, atol=1e-9)
        assert aligned.all()

    def test_feeds_model_initialization(self, rng):
        sampler = ClosedFormStationarySampler(SIDE)
        positions = rng.uniform(0, 1.0, (50, 2))  # corner-conditioned
        state = sampler.sample_at(positions, rng)
        model = ManhattanRandomWaypoint(50, SIDE, 0.2, rng=rng, init=state)
        model.step()
        assert model.positions.shape == (50, 2)

    def test_validation(self, rng):
        sampler = ClosedFormStationarySampler(SIDE)
        with pytest.raises(ValueError):
            sampler.sample_at(np.zeros((0, 2)), rng)
        with pytest.raises(ValueError):
            sampler.sample_at(np.zeros((5, 3)), rng)


class TestConvergenceProfile:
    def pdf(self, x, y):
        return spatial_pdf(x, y, SIDE)

    def test_stationary_start_at_floor(self):
        model = ManhattanRandomWaypoint(15_000, SIDE, 0.3, rng=np.random.default_rng(0))
        profile = tv_profile(model, self.pdf, steps=6, bins=8, every=2)
        assert profile["tv"].max() <= 2.5 * profile["floor"]
        assert estimate_mixing_time(profile, slack=2.5) == 0.0

    def test_uniform_start_decays(self):
        model = ManhattanRandomWaypoint(
            15_000, SIDE, 0.5, rng=np.random.default_rng(1), init="uniform"
        )
        profile = tv_profile(model, self.pdf, steps=60, bins=8, every=10)
        assert profile["tv"][0] > 2.0 * profile["floor"]
        assert profile["tv"][-1] < profile["tv"][0]

    def test_profile_shapes(self):
        model = ManhattanRandomWaypoint(1000, SIDE, 0.3, rng=np.random.default_rng(2))
        profile = tv_profile(model, self.pdf, steps=10, bins=6, every=3)
        assert profile["steps"][0] == 0
        assert profile["steps"][-1] == 10
        assert profile["tv"].shape == profile["steps"].shape

    def test_mixing_time_inf_when_never_settles(self):
        profile = {"steps": np.array([0, 1, 2]), "tv": np.array([0.5, 0.5, 0.5]), "floor": 0.01}
        assert estimate_mixing_time(profile) == float("inf")

    def test_validation(self):
        model = ManhattanRandomWaypoint(100, SIDE, 0.3, rng=np.random.default_rng(3))
        with pytest.raises(ValueError):
            tv_profile(model, self.pdf, steps=-1)
        with pytest.raises(ValueError):
            tv_profile(model, self.pdf, steps=1, every=0)
        with pytest.raises(ValueError):
            estimate_mixing_time({"steps": np.array([0]), "tv": np.array([0.0]), "floor": 0.1}, slack=1.0)

    def test_noise_floor_scales(self):
        floor_small = noise_floor(self.pdf, SIDE, 8, 1_000)
        floor_large = noise_floor(self.pdf, SIDE, 8, 100_000)
        assert floor_large == pytest.approx(floor_small / 10.0, rel=1e-6)
