"""System-level property tests (hypothesis over whole-stack invariants).

These generate random small networks and assert invariants that must hold
for *any* parameters — the structural facts the paper's analysis relies on,
checked end-to-end through the public API.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import theory
from repro.core.cells import CellGrid
from repro.core.zones import ZonePartition
from repro.geometry.points import in_square
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.simulation.config import FloodingConfig
from repro.simulation.runner import run_flooding

network = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=50, max_value=300),
        "radius": st.floats(min_value=1.5, max_value=6.0),
        "speed": st.floats(min_value=0.0, max_value=2.0),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)

SIDE = 18.0


class TestFloodingInvariants:
    @given(params=network)
    @settings(max_examples=15, deadline=None)
    def test_history_monotone_and_bounded(self, params):
        config = FloodingConfig(side=SIDE, max_steps=200, track_zones=False, **params)
        result = run_flooding(config)
        history = result.informed_history
        assert history[0] == 1
        assert np.all(np.diff(history) >= 0)
        assert history[-1] <= params["n"]
        assert result.final_coverage == history[-1] / params["n"]

    @given(params=network)
    @settings(max_examples=10, deadline=None)
    def test_flooding_time_consistent_with_history(self, params):
        config = FloodingConfig(side=SIDE, max_steps=200, track_zones=False, **params)
        result = run_flooding(config)
        if result.completed:
            t = int(result.flooding_time)
            assert result.informed_history[t] == params["n"]
            if t > 0:
                assert result.informed_history[t - 1] < params["n"]
        else:
            assert math.isinf(result.flooding_time)

    @given(params=network)
    @settings(max_examples=8, deadline=None)
    def test_multi_hop_dominates(self, params):
        base = FloodingConfig(side=SIDE, max_steps=200, track_zones=False, **params)
        single = run_flooding(base)
        multi = run_flooding(base.with_options(multi_hop=True))
        assert multi.flooding_time <= single.flooding_time

    @given(
        params=network,
        extra=st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=8, deadline=None)
    def test_radius_monotonicity(self, params, extra):
        """Same trajectories, larger radius: never slower."""
        base = FloodingConfig(side=SIDE, max_steps=200, track_zones=False, **params)
        bigger = base.with_options(radius=params["radius"] + extra)
        assert run_flooding(bigger).flooding_time <= run_flooding(base).flooding_time


class TestMobilityInvariants:
    @given(
        n=st.integers(min_value=10, max_value=200),
        speed=st.floats(min_value=0.0, max_value=40.0),
        seed=st.integers(min_value=0, max_value=1000),
        init=st.sampled_from(["stationary", "closed-form", "uniform"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_agents_never_escape(self, n, speed, seed, init):
        model = ManhattanRandomWaypoint(
            n, SIDE, speed, rng=np.random.default_rng(seed), init=init
        )
        for _ in range(5):
            assert in_square(model.step(), SIDE, tol=1e-9).all()

    @given(
        n=st.integers(min_value=10, max_value=100),
        speed=st.floats(min_value=0.01, max_value=5.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_step_displacement_bounded(self, n, speed, seed):
        model = ManhattanRandomWaypoint(n, SIDE, speed, rng=np.random.default_rng(seed))
        before = model.positions
        after = model.step()
        assert np.all(np.abs(after - before).sum(axis=1) <= speed + 1e-9)


class TestZoneInvariants:
    @given(
        n=st.integers(min_value=100, max_value=100_000),
        radius=st.floats(min_value=1.0, max_value=7.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_consistency(self, n, radius):
        try:
            grid = CellGrid.for_radius(SIDE, radius)
        except ValueError:
            return
        zones = ZonePartition(grid, n)
        assert zones.n_central_cells + zones.n_suburb_cells == grid.n_cells
        # Monotone in the threshold: a stricter factor shrinks the CZ.
        stricter = ZonePartition(grid, n, threshold_factor=2 * zones.threshold_factor)
        assert stricter.n_central_cells <= zones.n_central_cells
        # Suburb extent within the Lemma-15 bound, always.
        assert zones.suburb_corner_extent() <= zones.suburb_bound + 1e-9

    @given(
        n=st.integers(min_value=100, max_value=10_000),
        radius=st.floats(min_value=0.5, max_value=5.0),
        speed_frac=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=30)
    def test_bounds_are_ordered(self, n, radius, speed_frac):
        """Upper bounds exceed lower bounds wherever both apply."""
        side = math.sqrt(n)
        speed = speed_frac * radius
        upper = theory.flooding_upper_bound(n, side, radius, speed)
        lower = theory.flooding_lower_bound(n, side, radius, speed)
        trivial = theory.geometric_lower_bound(side, radius, speed)
        assert upper >= trivial * 0.999 or math.isinf(upper)
        if lower > 0:
            assert upper >= lower * 0.999 or math.isinf(upper)
