"""Incremental spatial indexes vs their from-scratch counterparts."""

import numpy as np
import pytest

from repro.geometry.grid import GridIndex
from repro.geometry.incremental import IncrementalBatchOccupancy, IncrementalGridIndex


def drift(points, rng, step, side):
    """One bounded-displacement move with wall reflection."""
    moved = points + rng.uniform(-step, step, size=points.shape)
    moved = np.abs(moved)
    return np.where(moved > side, 2.0 * side - moved, moved)


class TestIncrementalGridIndex:
    SIDE = 12.0
    CELL = 1.0

    def assert_matches_fresh(self, index, points, rng):
        """Every query primitive must agree with a freshly built index."""
        fresh = GridIndex(self.SIDE, self.CELL).build(points)
        queries = rng.uniform(0, self.SIDE, size=(40, 2))
        for radius in (0.35, 1.0, 2.5):
            assert np.array_equal(
                index.any_within(queries, radius), fresh.any_within(queries, radius)
            )
            assert np.array_equal(
                index.count_within(queries, radius), fresh.count_within(queries, radius)
            )
        got = {tuple(sorted(p)) for p in index.pairs_within(1.0).tolist()}
        expected = {tuple(sorted(p)) for p in fresh.pairs_within(1.0).tolist()}
        assert got == expected

    def test_update_equals_rebuild_over_random_walk(self, rng):
        points = rng.uniform(0, self.SIDE, size=(150, 2))
        index = IncrementalGridIndex(self.SIDE, self.CELL, rebuild_fraction=1.0)
        index.update(points)
        for _ in range(12):
            points = drift(points, rng, 0.4, self.SIDE)
            index.update(points)
            self.assert_matches_fresh(index, points, rng)
        # The walk above must have exercised the splice path, not rebuilds.
        assert index.n_rebuilds == 1  # the initial build only
        assert index.n_moved > 0

    def test_update_exact_when_points_cross_bucket_boundaries(self, rng):
        """Adversarial: points ping-ponging exactly across bucket edges."""
        edges = np.arange(1, 11, dtype=np.float64)
        points = np.stack([edges, np.full(10, 5.0)], axis=1)
        index = IncrementalGridIndex(self.SIDE, self.CELL, rebuild_fraction=1.0)
        index.update(points)
        for offset in (-1e-9, 1e-9, -0.5, 0.5, 0.0):
            moved = points.copy()
            moved[:, 0] = edges + offset
            index.update(moved)
            self.assert_matches_fresh(index, moved, rng)

    def test_radius_close_to_cell_size(self, rng):
        """Adversarial: query radius straddling the bucket side."""
        points = rng.uniform(0, self.SIDE, size=(120, 2))
        index = IncrementalGridIndex(self.SIDE, self.CELL, rebuild_fraction=1.0)
        index.update(points)
        points = drift(points, rng, 0.3, self.SIDE)
        index.update(points)
        fresh = GridIndex(self.SIDE, self.CELL).build(points)
        queries = rng.uniform(0, self.SIDE, size=(60, 2))
        for radius in (0.999, 1.0, 1.000001):
            assert np.array_equal(
                index.any_within(queries, radius), fresh.any_within(queries, radius)
            )

    def test_rebuild_fallback_triggers(self, rng):
        points = rng.uniform(0, self.SIDE, size=(100, 2))
        index = IncrementalGridIndex(self.SIDE, self.CELL, rebuild_fraction=0.05)
        index.update(points)
        # Teleport everyone: far more than 5% of points change buckets.
        index.update(rng.uniform(0, self.SIDE, size=(100, 2)))
        assert index.n_rebuilds == 2
        assert index.n_updates == 2

    def test_point_count_change_rebuilds(self, rng):
        index = IncrementalGridIndex(self.SIDE, self.CELL)
        index.update(rng.uniform(0, self.SIDE, size=(50, 2)))
        points = rng.uniform(0, self.SIDE, size=(70, 2))
        index.update(points)
        assert index.size == 70
        self.assert_matches_fresh(index, points, rng)

    def test_rejects_bad_rebuild_fraction(self):
        with pytest.raises(ValueError, match="rebuild_fraction"):
            IncrementalGridIndex(self.SIDE, self.CELL, rebuild_fraction=1.5)


class TestIncrementalBatchOccupancy:
    SIDE = 8.0
    CELL = 0.8
    BATCH = 3
    N = 60

    def fresh_counts(self, occupancy, positions):
        gid = occupancy._cells_of(positions) + (
            np.arange(self.BATCH, dtype=np.int64)[:, None] * occupancy.m ** 2
        )
        return np.bincount(
            gid.reshape(-1), minlength=self.BATCH * occupancy.m ** 2
        ).reshape(self.BATCH, occupancy.m ** 2)

    def walk(self, rng, steps, rows_fn=None, **kwargs):
        occupancy = IncrementalBatchOccupancy(self.SIDE, self.BATCH, self.CELL, **kwargs)
        positions = rng.uniform(0, self.SIDE, size=(self.BATCH, self.N, 2))
        occupancy.update(positions)
        for t in range(steps):
            rows = rows_fn(t) if rows_fn else None
            if rows is None:
                positions = drift(positions, rng, 0.3, self.SIDE)
            else:
                positions = positions.copy()
                positions[rows] = drift(positions[rows], rng, 0.3, self.SIDE)
            occupancy.update(positions, rows=rows)
            expected_cid = occupancy._cells_of(positions)
            assert np.array_equal(occupancy.cid, expected_cid)
            if occupancy.track_counts:
                assert np.array_equal(occupancy.counts, self.fresh_counts(occupancy, positions))
        return occupancy

    def test_cid_tracks_positions(self, rng):
        self.walk(rng, steps=8)

    def test_counts_delta_repair_matches_full_bincount(self, rng):
        occupancy = self.walk(rng, steps=8, track_counts=True, rebuild_fraction=1.0)
        assert occupancy.n_rebuilds == 1  # only the initial build

    def test_row_restricted_updates(self, rng):
        rows = np.array([0, 2])
        self.walk(rng, steps=6, rows_fn=lambda t: rows, track_counts=True)

    def test_count_rebuild_fallback(self, rng):
        occupancy = IncrementalBatchOccupancy(
            self.SIDE, self.BATCH, self.CELL, track_counts=True, rebuild_fraction=0.01
        )
        positions = rng.uniform(0, self.SIDE, size=(self.BATCH, self.N, 2))
        occupancy.update(positions)
        positions = rng.uniform(0, self.SIDE, size=(self.BATCH, self.N, 2))
        occupancy.update(positions)
        assert occupancy.n_rebuilds == 2
        assert np.array_equal(occupancy.counts, self.fresh_counts(occupancy, positions))

    def test_validates_shapes(self, rng):
        occupancy = IncrementalBatchOccupancy(self.SIDE, self.BATCH, self.CELL)
        with pytest.raises(ValueError, match="positions"):
            occupancy.update(rng.uniform(0, 1, size=(self.N, 2)))
        with pytest.raises(ValueError, match="replicas"):
            occupancy.update(rng.uniform(0, 1, size=(self.BATCH + 1, self.N, 2)))
