"""Tests of the trip-length closed forms and process-level collection."""

import numpy as np
import pytest

from repro.analysis.empirical import ks_critical_value, ks_statistic
from repro.analysis.trips import (
    axis_gap_cdf,
    axis_gap_pdf,
    collect_trip_lengths,
    collect_trip_lengths_with_stats,
    mean_axis_gap,
    trip_length_cdf,
    trip_length_pdf,
)

SIDE = 10.0


class TestAxisGap:
    def test_pdf_integrates_to_one(self):
        g = np.linspace(0, SIDE, 100_001)
        assert np.trapezoid(axis_gap_pdf(g, SIDE), g) == pytest.approx(1.0, abs=1e-6)

    def test_pdf_matches_sample(self, rng):
        u = rng.uniform(0, SIDE, 100_000)
        v = rng.uniform(0, SIDE, 100_000)
        gaps = np.abs(u - v)
        stat = ks_statistic(gaps, lambda g: axis_gap_cdf(g, SIDE))
        assert stat < ks_critical_value(100_000, alpha=1e-3)

    def test_cdf_endpoints(self):
        assert axis_gap_cdf(0.0, SIDE) == 0.0
        assert axis_gap_cdf(SIDE, SIDE) == pytest.approx(1.0)

    def test_mean(self, rng):
        u = rng.uniform(0, SIDE, 200_000)
        v = rng.uniform(0, SIDE, 200_000)
        assert np.abs(u - v).mean() == pytest.approx(mean_axis_gap(SIDE), rel=0.01)


class TestTripLength:
    def test_pdf_integrates_to_one(self):
        d = np.linspace(0, 2 * SIDE, 200_001)
        assert np.trapezoid(trip_length_pdf(d, SIDE), d) == pytest.approx(1.0, abs=1e-6)

    def test_pdf_is_convolution(self):
        """The closed form equals the numeric convolution of two gap pdfs."""
        u = np.linspace(0, SIDE, 2001)
        du = u[1] - u[0]
        gap = axis_gap_pdf(u, SIDE)
        for d in (0.3 * SIDE, 0.9 * SIDE, 1.4 * SIDE):
            other = trip_length_pdf(d, SIDE)
            numeric = np.sum(gap * axis_gap_pdf(d - u, SIDE)) * du
            assert float(other) == pytest.approx(numeric, rel=2e-3, abs=1e-6)

    def test_cdf_derivative_matches_pdf(self):
        d = np.linspace(0.01, 2 * SIDE - 0.01, 50)
        h = 1e-5
        numeric = (trip_length_cdf(d + h, SIDE) - trip_length_cdf(d - h, SIDE)) / (2 * h)
        assert np.allclose(numeric, trip_length_pdf(d, SIDE), rtol=1e-4, atol=1e-8)

    def test_cdf_endpoints_and_continuity(self):
        assert trip_length_cdf(0.0, SIDE) == 0.0
        assert trip_length_cdf(2 * SIDE, SIDE) == pytest.approx(1.0)
        # The two polynomial pieces agree at d = L.
        assert trip_length_cdf(SIDE - 1e-9, SIDE) == pytest.approx(
            trip_length_cdf(SIDE + 1e-9, SIDE), abs=1e-6
        )

    def test_matches_monte_carlo(self, rng):
        starts = rng.uniform(0, SIDE, (200_000, 2))
        ends = rng.uniform(0, SIDE, (200_000, 2))
        lengths = np.abs(starts - ends).sum(axis=1)
        stat = ks_statistic(lengths, lambda d: trip_length_cdf(d, SIDE))
        assert stat < ks_critical_value(200_000, alpha=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            trip_length_pdf(1.0, 0.0)


class TestCollectTripLengths:
    def test_collects_from_process(self, rng):
        lengths = collect_trip_lengths(500, SIDE, speed=2.0, steps=60, rng=rng)
        assert lengths.size > 200
        assert np.all(lengths >= 0)
        assert np.all(lengths <= 2 * SIDE + 1e-9)

    def test_mean_near_two_thirds_l(self, rng):
        lengths = collect_trip_lengths(2000, SIDE, speed=2.0, steps=100, rng=rng)
        assert lengths.mean() == pytest.approx(2 * SIDE / 3, rel=0.05)

    def test_no_arrivals_empty(self, rng):
        lengths = collect_trip_lengths(50, SIDE, speed=1e-6, steps=3, rng=rng)
        assert lengths.size == 0

    def test_stats_accounting(self, rng):
        lengths, stats = collect_trip_lengths_with_stats(
            500, SIDE, speed=2.0, steps=60, rng=rng
        )
        assert stats["recorded"] == lengths.size
        assert (
            stats["recorded"] + stats["skipped_first"] + stats["dropped_multi"]
            == stats["total_arrivals"]
        )
        assert 0.0 <= stats["dropped_fraction"] < 0.2
        # Every agent's first trip is skipped exactly once (if it arrived).
        assert stats["skipped_first"] <= 500

    def test_fast_agents_censor_more(self, rng):
        _l1, slow = collect_trip_lengths_with_stats(300, SIDE, 1.0, 60, np.random.default_rng(0))
        _l2, fast = collect_trip_lengths_with_stats(300, SIDE, 6.0, 60, np.random.default_rng(0))
        assert fast["dropped_fraction"] >= slow["dropped_fraction"]
