"""Batch-vs-scalar seed-for-seed parity for EVERY registered protocol.

PR 3's contract: any protocol in ``PROTOCOL_REGISTRY`` runs under
``engine="batch"`` and reproduces the scalar reference trial-for-trial —
flooding times, coverage curves, stall flags, per-agent informed steps,
and the protocol-specific extras (crashed/recovered counts, zone-resolved
misses).  The sweep covers every protocol x neighbor backend x mobility
model, and the retirement semantics that only the non-flooding protocols
exercise: parsimonious window-close, SIR die-out before coverage, and
crash-fault completion over survivors only.
"""

import math

import numpy as np
import pytest

from repro.protocols import BATCH_PROTOCOL_REGISTRY, PROTOCOL_REGISTRY
from repro.simulation import run_trials, standard_config

#: One canonical option set per protocol (non-defaults so the knobs are
#: exercised too).
PROTOCOL_OPTIONS = {
    "flooding": {},
    "gossip": {"fanout": 2},
    "push-pull": {},
    "parsimonious": {"active_window": 2},
    "probabilistic": {"p": 0.3},
    "sir": {"recovery_prob": 0.1},
    "crash-flooding": {"crash_prob": 0.01},
}

BACKENDS = ["grid", "brute"]
try:  # pragma: no cover - depends on environment
    import scipy.spatial  # noqa: F401

    BACKENDS.insert(0, "kdtree")
except ImportError:
    pass


def fingerprint(result):
    extras = tuple(
        sorted((k, v) for k, v in result.extras.items() if k not in ("config", "n_agents"))
    )
    return (
        result.flooding_time,
        result.completed,
        result.stalled,
        result.n_steps,
        result.source,
        tuple(np.asarray(result.informed_history).tolist()),
        result.cz_completion_time,
        result.suburb_completion_time,
        result.source_in_central_zone,
        extras,
    )


def assert_parity(config, trials=3):
    scalar = [fingerprint(r) for r in run_trials(config.with_options(engine="scalar"), trials)]
    batch = [fingerprint(r) for r in run_trials(config.with_options(engine="batch"), trials)]
    assert scalar == batch


class TestRegistryCoverage:
    def test_every_protocol_has_a_batched_state(self):
        assert set(BATCH_PROTOCOL_REGISTRY) == set(PROTOCOL_REGISTRY)

    def test_batch_registry_names_match_classes(self):
        for name, cls in BATCH_PROTOCOL_REGISTRY.items():
            assert cls.name == name


class TestProtocolParity:
    """Every protocol x backend, and every protocol x mobility model."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_REGISTRY))
    def test_parity_across_backends(self, protocol, backend):
        config = standard_config(
            80,
            seed=37,
            protocol=protocol,
            protocol_options=dict(PROTOCOL_OPTIONS[protocol]),
            backend=backend,
            max_steps=400,
        )
        assert_parity(config)

    @pytest.mark.parametrize("mobility", ["mrwp", "rwp", "random-walk"])
    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_REGISTRY))
    def test_parity_across_mobility_models(self, protocol, mobility):
        config = standard_config(
            70,
            seed=41,
            protocol=protocol,
            protocol_options=dict(PROTOCOL_OPTIONS[protocol]),
            mobility=mobility,
            max_steps=400,
        )
        assert_parity(config)

    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_REGISTRY))
    def test_parity_through_replicated_mobility_fallback(self, protocol):
        config = standard_config(
            60,
            seed=43,
            protocol=protocol,
            protocol_options=dict(PROTOCOL_OPTIONS[protocol]),
            mobility="random-direction",
            max_steps=200,
        )
        assert_parity(config)

    def test_parity_is_independent_of_batch_size(self):
        """Stochastic protocols sliced into sub-batches draw identically."""
        config = standard_config(
            70, seed=47, protocol="gossip", protocol_options={"fanout": 1},
            engine="batch", max_steps=400,
        )
        whole = [fingerprint(r) for r in run_trials(config, 6)]
        sliced = [fingerprint(r) for r in run_trials(config.with_options(batch_size=2), 6)]
        assert whole == sliced

    def test_backend_independent_trajectories_for_randomized_protocols(self):
        """Canonical pair ordering: gossip/push-pull trajectories no longer
        depend on the neighbor backend's pair traversal order."""
        for protocol in ("gossip", "push-pull"):
            reference = None
            for backend in BACKENDS:
                config = standard_config(
                    70, seed=53, protocol=protocol,
                    protocol_options=dict(PROTOCOL_OPTIONS[protocol]),
                    backend=backend, max_steps=400,
                )
                got = [fingerprint(r) for r in run_trials(config, 3)]
                if reference is None:
                    reference = got
                assert got == reference, (protocol, backend)


class TestRetirementSemantics:
    """Stalled/died-out replicas retire exactly where the scalar loop stops."""

    def test_parsimonious_window_close_stalls_batch_like_scalar(self):
        # Sparse network + minimal window: most trials strand the message.
        config = standard_config(
            100, radius_factor=0.6, seed=5,
            protocol="parsimonious", protocol_options={"active_window": 1},
            max_steps=400,
        )
        scalar = run_trials(config, 6)
        batch = run_trials(config.with_options(engine="batch"), 6)
        assert [fingerprint(r) for r in scalar] == [fingerprint(r) for r in batch]
        stalled = [r for r in batch if r.stalled]
        assert stalled, "workload must exercise the window-close stall"
        for r in stalled:
            assert not r.completed
            assert math.isinf(r.flooding_time)
            assert r.final_coverage < 1.0
            # The replica retired before the horizon: no steps after stall.
            assert r.n_steps < config.max_steps

    def test_sir_die_out_before_coverage(self):
        config = standard_config(
            100, radius_factor=0.7, seed=3,
            protocol="sir", protocol_options={"recovery_prob": 0.9},
            max_steps=400,
        )
        scalar = run_trials(config, 6)
        batch = run_trials(config.with_options(engine="batch"), 6)
        assert [fingerprint(r) for r in scalar] == [fingerprint(r) for r in batch]
        died_out = [r for r in batch if r.stalled]
        assert died_out, "workload must exercise SIR die-out"
        for r in died_out:
            assert r.extras["recovered"] == r.informed_history[-1]  # all informed recovered
            assert r.final_coverage < 1.0

    def test_crash_fault_completion_over_survivors_only(self):
        config = standard_config(
            100, seed=9,
            protocol="crash-flooding", protocol_options={"crash_prob": 0.02},
            max_steps=400,
        )
        scalar = run_trials(config, 6)
        batch = run_trials(config.with_options(engine="batch"), 6)
        assert [fingerprint(r) for r in scalar] == [fingerprint(r) for r in batch]
        survivors_only = [
            r for r in batch if r.completed and r.informed_history[-1] < 100
        ]
        assert survivors_only, "workload must exercise completion with uninformed crashed agents"
        for r in survivors_only:
            # Completed over survivors: counts never reach n, yet the run
            # completes with a finite time equal to its last step.
            assert r.extras["crashed"] > 0
            assert r.flooding_time == r.n_steps
            assert r.extras["uninformed_survivors"] == 0

    def test_retired_replicas_freeze_generators(self):
        """A batch mixing fast-stalling and long-running replicas must
        reproduce the scalar streams — i.e. retired replicas stop drawing
        while the rest keep lock-stepping."""
        config = standard_config(
            90, radius_factor=0.8, seed=61,
            protocol="sir", protocol_options={"recovery_prob": 0.5},
            max_steps=400,
        )
        scalar = run_trials(config, 8)
        batch = run_trials(config.with_options(engine="batch"), 8)
        assert [fingerprint(r) for r in scalar] == [fingerprint(r) for r in batch]
        n_steps = {r.n_steps for r in batch}
        assert len(n_steps) > 1, "workload must mix retirement steps"
