"""Tests of the terminal visualization helpers."""

import numpy as np
import pytest

from repro.viz.ascii import render_heatmap, render_sparkline, render_zone_map
from repro.viz.csvout import rows_to_csv_string, write_csv
from repro.viz.tables import format_markdown_table, format_table


class TestHeatmap:
    def test_renders_rows(self):
        values = np.arange(12, dtype=float).reshape(3, 4)
        text = render_heatmap(values)
        lines = text.splitlines()
        assert len(lines) == 4 + 1  # 4 y-rows + legend

    def test_top_row_is_high_y(self):
        values = np.zeros((2, 2))
        values[0, 1] = 10.0  # x=0, y=1 (top-left in render)
        text = render_heatmap(values, legend=False)
        lines = text.splitlines()
        assert lines[0][0] == "@"

    def test_constant_field_no_crash(self):
        text = render_heatmap(np.ones((3, 3)), legend=False)
        assert len(text.splitlines()) == 3

    def test_downsampling(self):
        values = np.random.default_rng(0).uniform(size=(40, 40))
        text = render_heatmap(values, width=10, legend=False)
        assert len(text.splitlines()) <= 20

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(5))


class TestZoneMap:
    def test_symbols(self):
        mask = np.array([[True, False], [False, True]])
        text = render_zone_map(mask, legend=False)
        assert "##" in text
        assert ".." in text

    def test_legend_present(self):
        text = render_zone_map(np.ones((2, 2), dtype=bool))
        assert "Central Zone" in text


class TestSparkline:
    def test_length_capped(self):
        line = render_sparkline(np.linspace(0, 1, 500), width=40)
        assert len(line) <= 40

    def test_monotone_ramp(self):
        line = render_sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_empty(self):
        assert render_sparkline([]) == ""


class TestTables:
    def test_alignment(self):
        text = format_table(["a", "bee"], [[1, 2.5], [100, 0.333333]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all same width

    def test_title(self):
        text = format_table(["x"], [[1]], title="hello")
        assert text.splitlines()[0] == "hello"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[float("inf")], [float("nan")], [1e-9], [123456.0]])
        assert "inf" in text
        assert "nan" in text
        assert "1e-09" in text

    def test_markdown(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1].startswith("|---")
        assert lines[2] == "| 1 | 2 |"

    def test_markdown_mismatch(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])


class TestCsv:
    def test_roundtrip_string(self):
        text = rows_to_csv_string(["a", "b"], [[1, "x"], [2, "y"]])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_write_csv_creates_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "out.csv"
        result = write_csv(str(path), ["h"], [[1], [2]])
        assert result == str(path)
        assert path.read_text().startswith("h")
