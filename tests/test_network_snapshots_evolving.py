"""Tests of snapshot series and temporal (evolving-graph) reachability."""

import numpy as np
import pytest

from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.network.evolving import journey_times, reachability_fraction, temporal_bfs
from repro.network.snapshots import SnapshotSeries, take_snapshots

SIDE = 10.0


def make_series(n=60, steps=20, radius=1.5, speed=0.2, seed=0):
    model = ManhattanRandomWaypoint(n, SIDE, speed, rng=np.random.default_rng(seed))
    return SnapshotSeries.record(model, steps, radius)


class TestSnapshotSeries:
    def test_record_shape(self):
        series = make_series(n=30, steps=10)
        assert series.frames.shape == (11, 30, 2)
        assert series.n_steps == 10
        assert series.n == 30

    def test_graph_at(self):
        series = make_series(n=30, steps=5)
        graph = series.graph_at(3)
        assert graph.n == 30
        assert np.allclose(graph.positions, series.positions_at(3))

    def test_iteration_yields_all_graphs(self):
        series = make_series(n=10, steps=4)
        graphs = list(series)
        assert len(graphs) == 5

    def test_displacement_bounded_by_speed(self):
        series = make_series(n=40, steps=15, speed=0.3)
        disp = series.displacement_per_step()
        assert disp.shape == (15, 40)
        assert disp.max() <= 0.3 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            SnapshotSeries(np.zeros((5, 10, 3)), 1.0, SIDE)
        with pytest.raises(ValueError):
            SnapshotSeries(np.zeros((5, 10, 2)), -1.0, SIDE)
        with pytest.raises(ValueError):
            take_snapshots(
                ManhattanRandomWaypoint(5, SIDE, 0.1, rng=np.random.default_rng(0)), -1
            )


class TestTemporalBfs:
    def test_source_at_time_zero(self):
        series = make_series()
        times = temporal_bfs(series, source=0)
        assert times[0] == 0.0

    def test_times_monotone_meaning(self):
        """Informed times are >= 1 for everyone but the source."""
        series = make_series()
        times = temporal_bfs(series, source=0)
        others = np.delete(times, 0)
        assert np.all(others >= 1.0)

    def test_one_hop_per_step_cap(self):
        """Single-hop semantics: at most (informed set grows by neighbors)
        — an agent informed at step t must be within R of an agent informed
        at some earlier step, at frame t."""
        series = make_series(n=40, steps=25, radius=2.0)
        times = temporal_bfs(series, source=0)
        for t in range(1, series.n_steps + 1):
            newly = np.nonzero(times == t)[0]
            if newly.size == 0:
                continue
            earlier = np.nonzero(times < t)[0]
            positions = series.positions_at(t)
            dists = np.sqrt(
                ((positions[newly][:, None] - positions[earlier][None, :]) ** 2).sum(-1)
            )
            assert np.all(dists.min(axis=1) <= series.radius + 1e-9)

    def test_multi_hop_dominates_single_hop(self):
        series = make_series(n=50, steps=15, radius=1.8)
        single = temporal_bfs(series, source=3, multi_hop=False)
        multi = temporal_bfs(series, source=3, multi_hop=True)
        assert np.all(multi <= single)

    def test_journey_times_shape(self):
        series = make_series(n=20, steps=8)
        times = journey_times(series, sources=[0, 5, 7])
        assert times.shape == (3, 20)

    def test_reachability_fraction_monotone(self):
        series = make_series()
        frac = reachability_fraction(series, source=0)
        assert frac[0] == pytest.approx(1.0 / series.n)
        assert np.all(np.diff(frac) >= -1e-12)

    def test_invalid_source(self):
        series = make_series(n=10, steps=2)
        with pytest.raises(ValueError):
            temporal_bfs(series, source=10)

    def test_unreachable_is_inf(self):
        """With radius 0 nobody is ever informed except the source."""
        model = ManhattanRandomWaypoint(5, SIDE, 0.1, rng=np.random.default_rng(0))
        series = SnapshotSeries.record(model, 5, radius=1e-12)
        times = temporal_bfs(series, source=0)
        assert np.isinf(times[1:]).all()
