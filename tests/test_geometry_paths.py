"""Unit tests for repro.geometry.paths (Manhattan path machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.paths import (
    HORIZONTAL_FIRST,
    VERTICAL_FIRST,
    ManhattanPath,
    choose_corners,
    leg_lengths,
    path_corner,
    position_along_path,
)

coord = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


class TestManhattanPath:
    def test_corner_vertical_first(self):
        path = ManhattanPath(start=(1.0, 2.0), end=(5.0, 7.0), vertical_first=True)
        assert path.corner == (1.0, 7.0)

    def test_corner_horizontal_first(self):
        path = ManhattanPath(start=(1.0, 2.0), end=(5.0, 7.0), vertical_first=False)
        assert path.corner == (5.0, 2.0)

    def test_length_is_manhattan(self):
        path = ManhattanPath(start=(1.0, 2.0), end=(5.0, 7.0), vertical_first=True)
        assert path.length == pytest.approx(4.0 + 5.0)

    def test_leg_lengths_sum(self):
        path = ManhattanPath(start=(1.0, 2.0), end=(5.0, 7.0), vertical_first=True)
        assert path.first_leg_length + path.second_leg_length == pytest.approx(path.length)
        assert path.first_leg_length == pytest.approx(5.0)

    def test_point_at_endpoints(self):
        path = ManhattanPath(start=(1.0, 2.0), end=(5.0, 7.0), vertical_first=False)
        assert path.point_at(0.0) == pytest.approx((1.0, 2.0))
        assert path.point_at(path.length) == pytest.approx((5.0, 7.0))

    def test_point_at_corner(self):
        path = ManhattanPath(start=(1.0, 2.0), end=(5.0, 7.0), vertical_first=False)
        assert path.point_at(path.first_leg_length) == pytest.approx(path.corner)

    def test_point_at_clips(self):
        path = ManhattanPath(start=(0.0, 0.0), end=(2.0, 2.0), vertical_first=True)
        assert path.point_at(-5.0) == pytest.approx((0.0, 0.0))
        assert path.point_at(100.0) == pytest.approx((2.0, 2.0))


class TestVectorizedPaths:
    def test_path_corner_matches_scalar(self, rng):
        start = rng.uniform(0, 10, (20, 2))
        end = rng.uniform(0, 10, (20, 2))
        choice = rng.integers(0, 2, 20)
        corners = path_corner(start, end, choice)
        for i in range(20):
            expected = ManhattanPath(
                tuple(start[i]), tuple(end[i]), choice[i] == VERTICAL_FIRST
            ).corner
            assert corners[i] == pytest.approx(expected)

    def test_choose_corners_uniform_split(self, rng):
        start = np.zeros((4000, 2))
        end = np.ones((4000, 2))
        _corners, choice = choose_corners(start, end, rng)
        frac = np.mean(choice == VERTICAL_FIRST)
        assert 0.45 < frac < 0.55

    def test_leg_lengths_sum_to_manhattan(self, rng):
        start = rng.uniform(0, 10, (50, 2))
        end = rng.uniform(0, 10, (50, 2))
        choice = rng.integers(0, 2, 50)
        first, second = leg_lengths(start, end, choice)
        total = np.abs(end - start).sum(axis=1)
        assert np.allclose(first + second, total)

    @given(
        x0=coord, y0=coord, x1=coord, y1=coord,
        frac=st.floats(min_value=0.0, max_value=1.0),
        vertical=st.booleans(),
    )
    @settings(max_examples=60)
    def test_position_along_path_on_path(self, x0, y0, x1, y1, frac, vertical):
        """Any interpolated point lies on one of the two legs."""
        start = np.array([[x0, y0]])
        end = np.array([[x1, y1]])
        choice = np.array([VERTICAL_FIRST if vertical else HORIZONTAL_FIRST])
        total = abs(x1 - x0) + abs(y1 - y0)
        point = position_along_path(start, end, choice, np.array([frac * total]))[0]
        on_first_leg = (
            np.isclose(point[0], x0) if vertical else np.isclose(point[1], y0)
        )
        on_second_leg = (
            np.isclose(point[1], y1) if vertical else np.isclose(point[0], x1)
        )
        assert on_first_leg or on_second_leg

    @given(x0=coord, y0=coord, x1=coord, y1=coord, vertical=st.booleans())
    @settings(max_examples=60)
    def test_position_along_path_distance_consistency(self, x0, y0, x1, y1, vertical):
        """Walking d units from the start covers exactly d of Manhattan length."""
        start = np.array([[x0, y0]])
        end = np.array([[x1, y1]])
        choice = np.array([VERTICAL_FIRST if vertical else HORIZONTAL_FIRST])
        total = abs(x1 - x0) + abs(y1 - y0)
        travelled = 0.37 * total
        point = position_along_path(start, end, choice, np.array([travelled]))[0]
        walked = abs(point[0] - x0) + abs(point[1] - y0)
        assert walked == pytest.approx(travelled, abs=1e-9)

    def test_zero_length_path(self):
        start = np.array([[3.0, 3.0]])
        point = position_along_path(
            start, start, np.array([VERTICAL_FIRST]), np.array([0.0])
        )[0]
        assert point == pytest.approx([3.0, 3.0])
