"""Tests of ferry-patrol mobility and model composition."""

import numpy as np
import pytest

from repro.geometry.points import in_square
from repro.mobility.ferry import CompositeMobility, FerryPatrol, rectangle_route
from repro.mobility.random_walk import RandomWalk

SIDE = 10.0


class TestRectangleRoute:
    def test_route_shape(self):
        route = rectangle_route(SIDE, 1.0)
        assert route.shape == (4, 2)
        assert route.min() == pytest.approx(1.0)
        assert route.max() == pytest.approx(SIDE - 1.0)

    def test_invalid_inset(self):
        with pytest.raises(ValueError):
            rectangle_route(SIDE, SIDE)


class TestFerryPatrol:
    def test_positions_on_route(self):
        route = rectangle_route(SIDE, 2.0)
        ferry = FerryPatrol(3, SIDE, speed=0.5, route=route)
        for _ in range(50):
            positions = ferry.step()
            # Every ferry sits on the rectangle's perimeter.
            on_edge = (
                np.isclose(positions[:, 0], 2.0)
                | np.isclose(positions[:, 0], SIDE - 2.0)
                | np.isclose(positions[:, 1], 2.0)
                | np.isclose(positions[:, 1], SIDE - 2.0)
            )
            assert on_edge.all()

    def test_even_spacing_preserved(self):
        route = rectangle_route(SIDE, 1.0)
        ferry = FerryPatrol(4, SIDE, speed=0.7, route=route)
        length = ferry.route_length
        for _ in range(20):
            ferry.step()
        arcs = np.sort(np.mod(ferry._arc, length))
        gaps = np.diff(np.concatenate([arcs, [arcs[0] + length]]))
        assert np.allclose(gaps, length / 4)

    def test_loop_closure(self):
        """After travelling exactly one loop, a ferry returns to its start."""
        route = rectangle_route(SIDE, 1.0)
        ferry = FerryPatrol(1, SIDE, speed=1.0, route=route)
        start = ferry.positions.copy()
        steps = int(round(ferry.route_length))
        for _ in range(steps):
            ferry.step()
        assert np.allclose(ferry.positions, start, atol=1e-9)

    def test_deterministic(self):
        route = rectangle_route(SIDE, 1.0)
        a = FerryPatrol(2, SIDE, speed=0.3, route=route)
        b = FerryPatrol(2, SIDE, speed=0.3, route=route)
        for _ in range(10):
            assert np.allclose(a.step(), b.step())

    def test_invalid_route(self):
        with pytest.raises(ValueError):
            FerryPatrol(1, SIDE, 1.0, route=np.array([[1.0, 1.0]]))
        with pytest.raises(ValueError):
            FerryPatrol(1, SIDE, 1.0, route=np.array([[1.0, 1.0], [SIDE + 1, 1.0]]))
        with pytest.raises(ValueError):
            FerryPatrol(1, SIDE, 1.0, route=np.array([[1.0, 1.0], [1.0, 1.0]]))

    def test_duplicate_waypoints_anywhere_in_route(self):
        # A consecutive duplicate mid-route is a zero-length segment too.
        with pytest.raises(ValueError, match="zero-length"):
            FerryPatrol(
                1, SIDE, 1.0,
                route=np.array([[1.0, 1.0], [5.0, 1.0], [5.0, 1.0], [1.0, 5.0]]),
            )
        # An implied closing segment of length zero (last point == first).
        with pytest.raises(ValueError, match="zero-length"):
            FerryPatrol(
                1, SIDE, 1.0,
                route=np.array([[1.0, 1.0], [5.0, 1.0], [1.0, 1.0]]),
            )

    def test_waypoint_on_boundary_is_valid(self):
        # The square is closed: way-points may sit exactly on the walls
        # (inset 0 is the boundary patrol).
        route = np.array([[0.0, 0.0], [SIDE, 0.0], [SIDE, SIDE], [0.0, SIDE]])
        ferry = FerryPatrol(2, SIDE, 1.0, route=route)
        positions = ferry.step()
        assert in_square(positions, SIDE).all()


class TestCompositeMobility:
    def test_concatenates_populations(self, rng):
        walk = RandomWalk(30, SIDE, 0.5, rng=rng)
        ferry = FerryPatrol(2, SIDE, 0.5, route=rectangle_route(SIDE, 1.0))
        combo = CompositeMobility([walk, ferry])
        assert combo.n == 32
        assert combo.positions.shape == (32, 2)

    def test_step_advances_all(self, rng):
        walk = RandomWalk(10, SIDE, 0.5, rng=rng)
        ferry = FerryPatrol(1, SIDE, 0.5, route=rectangle_route(SIDE, 1.0))
        combo = CompositeMobility([walk, ferry])
        before = combo.positions
        after = combo.step()
        assert not np.allclose(before, after)
        assert in_square(after, SIDE).all()

    def test_block_slices(self, rng):
        walk = RandomWalk(10, SIDE, 0.5, rng=rng)
        ferry = FerryPatrol(3, SIDE, 0.5, route=rectangle_route(SIDE, 1.0))
        combo = CompositeMobility([walk, ferry])
        slices = combo.block_slices()
        assert slices[0] == slice(0, 10)
        assert slices[1] == slice(10, 13)

    def test_side_mismatch_rejected(self, rng):
        walk = RandomWalk(10, SIDE, 0.5, rng=rng)
        other = RandomWalk(10, SIDE + 1, 0.5, rng=rng)
        with pytest.raises(ValueError):
            CompositeMobility([walk, other])

    def test_side_mismatch_tolerance(self, rng):
        # Float noise below the 1e-9 documented tolerance composes; above
        # it is rejected.
        walk = RandomWalk(4, SIDE, 0.5, rng=rng)
        near = RandomWalk(4, SIDE + 0.5e-9, 0.5, rng=rng)
        combo = CompositeMobility([walk, near])
        assert combo.n == 8
        beyond = RandomWalk(4, SIDE + 1e-8, 0.5, rng=rng)
        with pytest.raises(ValueError, match="side"):
            CompositeMobility([walk, beyond])

    def test_single_model_composition(self, rng):
        walk = RandomWalk(7, SIDE, 0.5, rng=rng)
        combo = CompositeMobility([walk])
        assert combo.n == 7
        assert combo.block_slices() == [slice(0, 7)]
        assert np.array_equal(combo.positions, walk.positions)
        combo.step()
        assert np.array_equal(combo.positions, walk.positions)

    def test_block_slices_under_nested_composites(self, rng):
        inner = CompositeMobility(
            [
                RandomWalk(5, SIDE, 0.5, rng=rng),
                FerryPatrol(2, SIDE, 0.5, route=rectangle_route(SIDE, 1.0)),
            ]
        )
        outer = CompositeMobility([inner, RandomWalk(3, SIDE, 0.5, rng=rng)])
        # The outer composition sees the inner composite as one 7-agent
        # block; the inner split is still available on the inner model.
        assert outer.n == 10
        assert outer.block_slices() == [slice(0, 7), slice(7, 10)]
        assert inner.block_slices() == [slice(0, 5), slice(5, 7)]
        after = outer.step()
        assert after.shape == (10, 2)
        assert in_square(after, SIDE).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeMobility([])
