"""Tests of the report generator (on cheap deterministic experiments)."""

from repro.viz.report import generate_report, write_report


class TestGenerateReport:
    def test_report_structure(self):
        report = generate_report(scale="quick", seed=0, experiment_ids=["lemma15_suburb"])
        assert "# EXPERIMENTS" in report
        assert "lemma15_suburb" in report
        assert "Lemma 15" in report
        assert "PASS" in report
        assert "|" in report  # markdown tables present

    def test_multiple_experiments_indexed(self):
        report = generate_report(
            scale="quick", seed=0, experiment_ids=["lemma15_suburb", "lemma6_rows"]
        )
        index_section = report.split("##")[0]
        assert "`lemma15_suburb`" in index_section
        assert "`lemma6_rows`" in index_section

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        out = write_report(str(path), scale="quick", seed=0, experiment_ids=["lemma6_rows"])
        assert out == str(path)
        assert path.read_text().startswith("# EXPERIMENTS")
