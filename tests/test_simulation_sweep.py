"""Sweep scheduler: seed-for-seed parity, dedup, observers, fan-out."""

import numpy as np
import pytest

from repro.simulation.config import FloodingConfig, standard_config
from repro.simulation.metrics import InformedRecorder
from repro.simulation.runner import run_trials, sweep
from repro.simulation.sweep import SweepPlan, SweepPoint, run_sweep

BASE = standard_config(140, radius_factor=1.1, max_steps=600, seed=5)


def fingerprint(results):
    """The full observable outcome of a trial list."""
    return [
        (
            r.flooding_time,
            r.completed,
            r.stalled,
            r.n_steps,
            r.source,
            tuple(np.asarray(r.informed_history).tolist()),
            r.cz_completion_time,
            r.suburb_completion_time,
            r.source_in_central_zone,
        )
        for r in results
    ]


def small_plan():
    plan = SweepPlan()
    plan.add(BASE, 3, key="base")
    plan.add(BASE.with_options(radius=BASE.radius * 1.5), 2, key="wide")
    plan.add(BASE.with_options(seed=11), 4, key="reseeded")
    return plan


class TestPlan:
    def test_add_returns_point(self):
        plan = SweepPlan()
        point = plan.add(BASE, 2, key="k")
        assert isinstance(point, SweepPoint)
        assert len(plan) == 1 and list(plan)[0].key == "k"

    def test_over_parameter_keys_by_value(self):
        plan = SweepPlan.over_parameter(BASE, "radius", [2.0, 3.0], n_trials=2)
        assert [p.key for p in plan] == [2.0, 3.0]
        assert [p.config.radius for p in plan] == [2.0, 3.0]

    def test_tuple_points(self):
        plan = SweepPlan([(BASE, 2), (BASE, 1, "labelled")])
        assert [p.key for p in plan] == [None, "labelled"]

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            SweepPoint(BASE, 0)

    def test_rejects_non_config(self):
        with pytest.raises(TypeError):
            SweepPoint("not a config", 1)

    def test_rejects_non_callable_factory(self):
        with pytest.raises(TypeError):
            SweepPoint(BASE, 1, observer_factory="not callable")


class TestParityAgainstHandLoop:
    """The acceptance gate: scheduling == hand-looping run_trials."""

    @pytest.mark.parametrize("engine", ["scalar", "batch", "auto"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_bit_identical_per_point(self, engine, jobs):
        points = run_sweep(small_plan(), engine=engine, jobs=jobs)
        assert [p.key for p in points] == ["base", "wide", "reseeded"]
        for point, source in zip(points, small_plan().points):
            expected = run_trials(source.config.with_options(engine=engine), source.n_trials)
            assert fingerprint(point.results) == fingerprint(expected), (engine, jobs, point.key)
            assert point.n_trials == source.n_trials == len(point.results)
            assert point.engine in ("scalar", "batch")

    def test_engine_none_keeps_config_engine(self):
        config = BASE.with_options(engine="batch")
        (point,) = run_sweep([SweepPoint(config, 2)])
        assert point.engine == "batch"
        assert fingerprint(point.results) == fingerprint(run_trials(config, 2))

    def test_batch_size_slicing_is_invisible(self):
        reference = run_sweep(small_plan(), engine="batch")
        sliced = run_sweep(small_plan(), engine="batch", batch_size=1)
        for a, b in zip(reference, sliced):
            assert fingerprint(a.results) == fingerprint(b.results)

    def test_legacy_sweep_wrapper_unchanged(self):
        out = sweep(BASE, "radius", [2.5, 3.5], n_trials=2)
        assert [value for value, _, _ in out] == [2.5, 3.5]
        for value, summary, results in out:
            expected = run_trials(BASE.with_options(radius=value), 2)
            assert fingerprint(results) == fingerprint(expected)
            assert summary.n_trials == 2


class TestDedup:
    def test_duplicate_configs_execute_once(self, monkeypatch):
        import sys

        # The package attribute `repro.simulation.sweep` is the legacy
        # aggregation *function*; the module lives in sys.modules.
        sweep_mod = sys.modules["repro.simulation.sweep"]

        calls = []
        original = sweep_mod._run_sweep_job

        def counting(args):
            calls.append(args)
            return original(args)

        monkeypatch.setattr(sweep_mod, "_run_sweep_job", counting)
        plan = SweepPlan()
        plan.add(BASE, 3, key="a")
        plan.add(BASE, 2, key="b")  # same config, fewer trials
        points = run_sweep(plan, engine="batch")
        # One deduplicated batch job serves both points.
        assert len(calls) == 1
        assert fingerprint(points[1].results) == fingerprint(points[0].results)[:2]

    def test_prefix_matches_standalone_run(self):
        plan = SweepPlan()
        plan.add(BASE, 2, key="short")
        plan.add(BASE, 4, key="long")
        short, long = run_sweep(plan, engine="scalar")
        assert fingerprint(short.results) == fingerprint(run_trials(BASE, 2))
        assert fingerprint(long.results) == fingerprint(run_trials(BASE, 4))


class TestPointResult:
    def test_completion_fractions(self):
        # A horizon of 1 step cannot complete flooding at this scale.
        hopeless = BASE.with_options(max_steps=1)
        done, not_done = run_sweep([SweepPoint(BASE, 2, "ok"), SweepPoint(hopeless, 2, "no")])
        assert done.completed_fraction == 1.0 and done.finite_fraction == 1.0
        assert done.completion_label == "2/2"
        assert not_done.completed_fraction == 0.0 and not_done.finite_fraction == 0.0
        assert not_done.completion_label == "0/2"
        assert np.isnan(not_done.masked_mean())
        assert np.isfinite(done.masked_mean())

    def test_masked_mean_threshold(self):
        (point,) = run_sweep([SweepPoint(BASE, 2)])
        assert point.masked_mean(min_finite_fraction=1.0) == point.summary.mean

    def test_empty_plan(self):
        assert run_sweep(SweepPlan()) == []

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_sweep(small_plan(), jobs=0)


def _recorder_factory(config):
    """Top-level so worker processes can pickle it."""
    return [InformedRecorder()]


class TestObservers:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_observers_returned_per_trial(self, jobs):
        plan = SweepPlan()
        plan.add(BASE, 2, key="obs", observer_factory=_recorder_factory)
        (point,) = run_sweep(plan, engine="auto", jobs=jobs)
        assert point.engine == "scalar"  # observers force the scalar engine
        recorders = point.observers()
        assert len(recorders) == 2
        for recorder, result in zip(recorders, point.results):
            assert recorder.informed_history().tolist() == result.informed_history.tolist()

    def test_observer_results_match_plain_runs(self):
        plan = SweepPlan()
        plan.add(BASE, 2, observer_factory=_recorder_factory)
        (point,) = run_sweep(plan, engine="auto")
        expected = run_trials(BASE.with_options(engine="scalar"), 2)
        assert fingerprint(point.results) == fingerprint(expected)

    def test_explicit_batch_engine_rejected(self):
        plan = SweepPlan()
        plan.add(BASE, 1, key="obs", observer_factory=_recorder_factory)
        with pytest.raises(ValueError, match="scalar"):
            run_sweep(plan, engine="batch")

    def test_plain_runs_carry_no_observers(self):
        (point,) = run_sweep([SweepPoint(BASE, 1)])
        assert "observers" not in point.results[0].extras


class TestInitValidation:
    """The build_model init bugfix: unknown inits fail loudly, uniformly."""

    def test_unknown_init_rejected_at_construction(self):
        for mobility in ("mrwp", "mrwp-pause", "rwp"):
            with pytest.raises(ValueError, match="init"):
                FloodingConfig(
                    n=50, side=7.0, radius=2.0, speed=0.5, mobility=mobility, init="warp"
                )

    def test_valid_inits_accepted(self):
        for init in ("stationary", "closed-form", "uniform"):
            config = BASE.with_options(init=init)
            assert config.init == init

    def test_closed_form_is_mrwp_only(self):
        from repro.simulation.runner import build_model

        config = BASE.with_options(init="closed-form")
        assert build_model(config, np.random.default_rng(0)).n == BASE.n
        for mobility in ("rwp", "mrwp-pause"):
            narrow = config.with_options(mobility=mobility)
            with pytest.raises(ValueError, match="init"):
                build_model(narrow, np.random.default_rng(0))

    def test_uniform_init_not_coerced_for_pause(self):
        # Pre-fix, mrwp-pause silently coerced anything unknown to
        # "stationary"; "uniform" must reach the model untouched.
        from repro.simulation.runner import build_model

        config = BASE.with_options(mobility="mrwp-pause", init="uniform")
        model = build_model(config, np.random.default_rng(0))
        assert model.n == BASE.n
