"""Tests of the cell partition (Inequality 6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cells import CellGrid, cell_side_bounds

SIDE = 10.0
SQRT5 = math.sqrt(5.0)


class TestCellSideBounds:
    def test_interval(self):
        lo, hi = cell_side_bounds(2.0)
        assert lo == pytest.approx(2.0 / (1 + SQRT5))
        assert hi == pytest.approx(2.0 / SQRT5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            cell_side_bounds(0.0)


class TestForRadius:
    @given(radius=st.floats(min_value=0.05, max_value=9.0))
    @settings(max_examples=60)
    def test_inequality6_satisfied(self, radius):
        """For any reasonable radius the chosen cell side obeys Ineq. 6."""
        grid = CellGrid.for_radius(SIDE, radius)
        lo, hi = cell_side_bounds(radius)
        assert lo - 1e-9 <= grid.ell <= hi + 1e-9

    def test_adjacency_transmission_guarantee(self):
        """sqrt5 * l <= R: opposite corners of adjacent cells are in range."""
        grid = CellGrid.for_radius(SIDE, 1.7)
        worst = math.sqrt((2 * grid.ell) ** 2 + grid.ell**2)
        assert worst <= 1.7 + 1e-9

    def test_single_cell_grid_when_radius_huge(self):
        """R up to (1+sqrt5) L still admits the m=1 grid."""
        grid = CellGrid.for_radius(SIDE, 3.0 * SIDE)
        assert grid.m == 1

    def test_too_large_radius_raises(self):
        """Beyond (1+sqrt5) L even one cell violates Ineq. 6's lower bound."""
        with pytest.raises(ValueError):
            CellGrid.for_radius(SIDE, 4.0 * SIDE)


class TestIndexing:
    def test_cell_indices_basics(self):
        grid = CellGrid(SIDE, 5)  # ell = 2
        points = np.array([[0.1, 0.1], [3.9, 8.1], [10.0, 10.0]])
        idx = grid.cell_indices(points)
        assert idx[0].tolist() == [0, 0]
        assert idx[1].tolist() == [1, 4]
        assert idx[2].tolist() == [4, 4]  # far boundary clamps to last cell

    def test_flat_indices_roundtrip(self):
        grid = CellGrid(SIDE, 4)
        points = np.random.default_rng(0).uniform(0, SIDE, (100, 2))
        flat = grid.flat_indices(points)
        ij = grid.cell_indices(points)
        assert np.array_equal(flat, ij[:, 0] * 4 + ij[:, 1])

    def test_corners_and_centers(self):
        grid = CellGrid(SIDE, 5)
        corner = grid.cell_sw_corner(1, 2)
        assert corner.tolist() == [2.0, 4.0]
        center = grid.cell_center(1, 2)
        assert center.tolist() == [3.0, 5.0]

    def test_in_core(self):
        grid = CellGrid(SIDE, 5)  # ell=2, core = [2/3, 4/3] within cell
        inside = np.array([[1.0, 1.0]])  # offset (1,1) in cell 0 — core
        edge = np.array([[0.1, 1.0]])  # offset (0.1, 1) — outside core
        assert grid.in_core(inside)[0]
        assert not grid.in_core(edge)[0]

    def test_occupancy_counts(self):
        grid = CellGrid(SIDE, 2)  # 4 cells of side 5
        points = np.array([[1.0, 1.0], [1.5, 1.5], [7.0, 7.0]])
        occ = grid.occupancy(points)
        assert occ[0, 0] == 2
        assert occ[1, 1] == 1
        assert occ.sum() == 3

    def test_occupancy_core_only(self):
        grid = CellGrid(SIDE, 2)
        core_point = np.array([[2.5, 2.5]])  # center of cell (0,0)
        edge_point = np.array([[0.2, 0.2]])
        occ = grid.occupancy(np.vstack([core_point, edge_point]), core_only=True)
        assert occ[0, 0] == 1


class TestMassesAndAdjacency:
    def test_all_cell_masses_sum_to_one(self):
        grid = CellGrid(SIDE, 7)
        assert grid.all_cell_masses().sum() == pytest.approx(1.0, abs=1e-12)

    def test_center_cells_denser(self):
        grid = CellGrid(SIDE, 5)
        masses = grid.all_cell_masses()
        assert masses[2, 2] > masses[0, 0]
        # Symmetry of Thm 1's pdf.
        assert masses[0, 0] == pytest.approx(masses[4, 4])
        assert masses[0, 2] == pytest.approx(masses[4, 2])

    def test_adjacent_pairs_count(self):
        grid = CellGrid(SIDE, 4)
        pairs = grid.adjacent_pairs()
        # 2 * m * (m-1) adjacent pairs in an m x m grid.
        assert pairs.shape == (2 * 4 * 3, 2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CellGrid(0.0, 3)
        with pytest.raises(ValueError):
            CellGrid(SIDE, 0)
