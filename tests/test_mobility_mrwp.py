"""Tests of the MRWP mobility model's kinematics and stationarity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.validation import spatial_distribution_tv
from repro.geometry.points import in_square
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.mobility.stationary import PalmStationarySampler

SIDE = 10.0


def make_model(n=200, speed=0.1, seed=0, **kwargs):
    return ManhattanRandomWaypoint(n, SIDE, speed, rng=np.random.default_rng(seed), **kwargs)


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ManhattanRandomWaypoint(0, SIDE, 0.1)
        with pytest.raises(ValueError):
            ManhattanRandomWaypoint(10, -1.0, 0.1)
        with pytest.raises(ValueError):
            ManhattanRandomWaypoint(10, SIDE, -0.1)

    def test_init_modes(self):
        for init in ("stationary", "closed-form", "uniform"):
            model = make_model(init=init)
            assert in_square(model.positions, SIDE).all()

    def test_init_from_state(self, rng):
        state = PalmStationarySampler(SIDE).sample(50, rng)
        model = ManhattanRandomWaypoint(50, SIDE, 0.1, rng=rng, init=state)
        assert np.allclose(model.positions, state.positions)

    def test_init_state_wrong_size(self, rng):
        state = PalmStationarySampler(SIDE).sample(50, rng)
        with pytest.raises(ValueError):
            ManhattanRandomWaypoint(51, SIDE, 0.1, rng=rng, init=state)

    def test_unknown_init_rejected(self):
        with pytest.raises(ValueError):
            make_model(init="bogus")


class TestKinematics:
    def test_positions_stay_in_square(self):
        model = make_model(speed=0.5)
        for _ in range(50):
            positions = model.step()
            assert in_square(positions, SIDE, tol=1e-9).all()

    def test_displacement_exactly_speed(self):
        """Between steps every agent travels exactly v in Manhattan metric
        (legs are axis-aligned; trips chain without losing distance)."""
        model = make_model(n=500, speed=0.37)
        prev = model.positions
        for _ in range(20):
            cur = model.step()
            manhattan = np.abs(cur - prev).sum(axis=1)
            # Mid-step turns make the L1 displacement <= v (an agent can
            # double back); it can never exceed v.
            assert np.all(manhattan <= 0.37 + 1e-9)
            # Agents that did not turn this step moved exactly v.
            moved_straight = np.isclose(manhattan, 0.37, atol=1e-9)
            assert moved_straight.mean() > 0.5
            prev = cur

    def test_euclidean_displacement_bounded_by_speed(self):
        model = make_model(n=300, speed=0.8)
        prev = model.positions
        for _ in range(10):
            cur = model.step()
            assert np.all(np.sqrt(((cur - prev) ** 2).sum(1)) <= 0.8 + 1e-9)
            prev = cur

    def test_zero_speed_freezes(self):
        model = make_model(speed=0.0)
        before = model.positions
        model.step()
        assert np.allclose(model.positions, before)

    def test_large_speed_multi_trip(self):
        """Speed above the square side completes multiple trips per step."""
        model = make_model(n=50, speed=3 * SIDE)
        model.step()
        assert in_square(model.positions, SIDE, tol=1e-9).all()
        assert model.arrival_counts.sum() > 0

    def test_dt_scaling(self):
        """Two half-steps equal one full step in distance budget."""
        a = make_model(n=100, speed=0.4, seed=7)
        b = make_model(n=100, speed=0.4, seed=7)
        a.step(1.0)
        b.step(0.5)
        b.step(0.5)
        # Same RNG consumption only if no arrivals happened; compare bounds
        # instead: both stay in square and time advanced equally.
        assert a.time == pytest.approx(b.time)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            make_model().step(0.0)

    def test_turn_counter_monotone(self):
        model = make_model(n=100, speed=1.0)
        prev = model.turn_counts.copy()
        for _ in range(30):
            model.step()
            assert np.all(model.turn_counts >= prev)
            prev = model.turn_counts.copy()
        assert model.turn_counts.sum() > 0

    def test_arrivals_consistent_with_turns(self):
        """Every arrival is also counted as a turn event."""
        model = make_model(n=100, speed=2.0)
        for _ in range(30):
            model.step()
        assert np.all(model.turn_counts >= model.arrival_counts)


class TestStateManagement:
    def test_get_set_roundtrip(self):
        model = make_model(seed=3)
        state = model.get_state()
        model.advance(10)
        model.set_state(state)
        assert np.allclose(model.positions, state.positions)

    def test_state_determinism(self):
        """Same seed + same state -> identical trajectory."""
        a = make_model(n=100, speed=0.3, seed=9)
        state = a.get_state()
        run1 = a.advance(15)
        b = ManhattanRandomWaypoint(
            100, SIDE, 0.3, rng=np.random.default_rng(9), init=state
        )
        # b consumed RNG during __init__ differently; instead compare via reset
        del b
        c = make_model(n=100, speed=0.3, seed=9)
        run2 = c.advance(15)
        assert np.allclose(run1, run2)

    def test_reset_restores_time(self):
        model = make_model()
        model.advance(5)
        model.reset(np.random.default_rng(1))
        assert model.time == 0.0
        assert model.turn_counts.sum() == 0


class TestStationarity:
    @pytest.mark.slow
    def test_process_preserves_theorem1(self):
        """The acid test: stepping a stationary start stays at the noise floor."""
        model = make_model(n=20_000, speed=0.3, seed=11)
        model.advance(40)
        tv = spatial_distribution_tv(model.positions, SIDE, bins=10)
        assert tv < 0.045  # noise floor ~0.028 for 20k samples

    @pytest.mark.slow
    def test_second_leg_fraction_preserved(self):
        model = make_model(n=20_000, speed=0.3, seed=13)
        model.advance(30)
        assert np.mean(model.on_second_leg) == pytest.approx(0.5, abs=0.02)

    @given(speed=st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=10, deadline=None)
    def test_any_speed_keeps_agents_inside(self, speed):
        model = make_model(n=50, speed=speed, seed=1)
        model.advance(10)
        assert in_square(model.positions, SIDE, tol=1e-9).all()
