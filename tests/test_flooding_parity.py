"""Seed-for-seed parity across every neighbor-subsystem strategy.

The repo's core invariant: spatial-index strategy choices (incremental vs
rebuild, frontier-pruned vs unpruned, grid vs KD-tree vs cell cover,
scalar vs batch engine) are *performance* knobs — with fixed seeds every
combination must produce identical trial results, down to the informed-at
step of every agent.
"""

import numpy as np
import pytest

from repro.geometry.neighbors import BatchNeighborQuery, available_backends
from repro.protocols.flooding import BatchFloodingState, FloodingProtocol
from repro.simulation import run_trials, standard_config

OPTION_GRID = [
    {},
    {"incremental": False},
    {"prune": False},
    {"incremental": False, "prune": False},
]


def fingerprints(config, trials=4):
    return [
        (
            r.flooding_time,
            r.completed,
            r.n_steps,
            r.source,
            tuple(np.asarray(r.informed_history).tolist()),
            r.cz_completion_time,
            r.suburb_completion_time,
        )
        for r in run_trials(config, trials)
    ]


class TestStrategyParity:
    """{incremental, rebuild} x {pruned, unpruned} x engines x mobility."""

    @pytest.mark.parametrize(
        "mobility,mobility_options",
        [
            ("mrwp", {}),
            ("rwp", {}),
            ("random-walk", {}),
            ("mrwp-pause", {"pause_time": 2.0}),
            ("mrwp-speed", {"v_min": 0.4, "v_max": 1.6}),
            ("random-direction", {}),
        ],
    )
    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_option_grid_is_invisible_in_results(self, mobility, mobility_options, engine):
        base = standard_config(
            90, seed=23, mobility=mobility,
            mobility_options=dict(mobility_options), engine=engine,
        )
        reference = fingerprints(base)
        for options in OPTION_GRID[1:]:
            variant = base.with_options(neighbor_options=dict(options))
            assert fingerprints(variant) == reference, (mobility, engine, options)

    @pytest.mark.parametrize("backend", available_backends())
    def test_backends_agree_across_option_grid(self, backend):
        reference = None
        for engine in ("scalar", "batch"):
            for options in OPTION_GRID:
                config = standard_config(
                    70, seed=31, backend=backend, engine=engine,
                    neighbor_options=dict(options),
                )
                got = fingerprints(config, trials=3)
                if reference is None:
                    reference = got
                assert got == reference, (backend, engine, options)

    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_multi_hop_frontier_parity(self, engine):
        base = standard_config(80, seed=17, multi_hop=True, engine=engine)
        reference = fingerprints(base)
        for options in OPTION_GRID[1:]:
            variant = base.with_options(neighbor_options=dict(options))
            assert fingerprints(variant) == reference, options

    def test_randomized_sweep_across_seeds(self):
        """Randomized workloads: every strategy grid cell, many seeds."""
        for seed in (1, 7, 101):
            reference = None
            for engine in ("scalar", "batch"):
                for options in OPTION_GRID:
                    config = standard_config(
                        60,
                        seed=seed,
                        radius_factor=1.2,
                        engine=engine,
                        neighbor_options=dict(options),
                    )
                    got = fingerprints(config, trials=3)
                    if reference is None:
                        reference = got
                    assert got == reference, (seed, engine, options)


class TestAdversarialStates:
    """Hand-built states that stress the kernels' boundary logic."""

    def batch_hits(self, positions, informed, radius, side, **query_options):
        batch, n = informed.shape
        query = BatchNeighborQuery(side, batch, **query_options)
        return query.any_within(positions, informed, ~informed, radius)

    def test_near_complete_informed_set(self, rng):
        """informed ~ n: the frontier-pruned source set is tiny, results
        must still match the unpruned kernel and brute force."""
        batch, n, side, radius = 3, 200, 14.0, 1.5
        positions = rng.uniform(0, side, size=(batch, n, 2))
        informed = np.ones((batch, n), dtype=bool)
        informed[:, :3] = False  # three stragglers per replica
        got = self.batch_hits(positions, informed, radius, side)
        unpruned = self.batch_hits(
            positions, informed, radius, side, incremental=False, prune=False
        )
        brute = self.batch_hits(positions, informed, radius, side, backend="brute")
        assert np.array_equal(got, unpruned)
        assert np.array_equal(got, brute)

    def test_agents_on_cover_cell_boundaries(self):
        """Sources sitting exactly on occupancy-cell edges."""
        side, radius = 10.0, 2.0
        cell = radius / BatchNeighborQuery._COVER_DIVISOR
        xs = np.arange(1, 9, dtype=np.float64) * cell
        n = xs.size + 2
        positions = np.zeros((1, n, 2))
        positions[0, : xs.size, 0] = xs  # sources exactly on cell edges
        positions[0, : xs.size, 1] = 5.0
        positions[0, -2] = [5.0, 5.0]
        positions[0, -1] = [5.0, 5.0 + radius]  # query exactly at distance R
        informed = np.zeros((1, n), dtype=bool)
        informed[0, :-1] = True
        got = self.batch_hits(positions, informed, radius, side)
        brute = self.batch_hits(positions, informed, radius, side, backend="brute")
        assert np.array_equal(got, brute)
        assert got[0, -1]  # inclusive <= R

    def test_radius_comparable_to_cell_size(self, rng):
        """Radius ~ grid cell: candidate blocks span multiple cells."""
        side = 12.0
        positions = rng.uniform(0, side, size=(2, 120, 2))
        informed = rng.uniform(size=(2, 120)) < 0.4
        for radius in (0.11, 0.5, 3.0):
            for options in OPTION_GRID:
                got = self.batch_hits(positions, informed, radius, side, **options)
                brute = self.batch_hits(positions, informed, radius, side, backend="brute")
                assert np.array_equal(got, brute), (radius, options)

    def test_scalar_protocol_with_external_informed_surgery(self, rng):
        """The incremental index lists must resync when the informed mask
        is mutated behind the protocol's back (near-complete case)."""
        n, side, radius = 120, 11.0, 1.4
        protocol = FloodingProtocol(n, side, radius, source=0)
        protocol.informed[:-2] = True  # external surgery: all but 2 informed
        positions = rng.uniform(0, side, size=(n, 2))
        newly = protocol.step(positions)
        expected_uninformed = np.nonzero(~protocol.informed)[0]
        assert set(newly) <= {n - 2, n - 1}
        assert protocol._uninformed_idx.size == expected_uninformed.size

    def test_scalar_protocol_with_count_preserving_surgery(self, rng):
        """Surgery that keeps the informed *count* but moves the bits must
        also resync the incremental index lists (membership scan)."""
        n, side, radius = 80, 9.0, 1.2
        positions = rng.uniform(0, side, size=(n, 2))
        protocol = FloodingProtocol(n, side, radius, source=0)
        protocol.step(positions)  # populate the cached lists
        count = protocol.informed_count
        # Surgery: same count, entirely different agents.
        protocol.informed[:] = False
        protocol.informed[n - count:] = True
        newly = protocol.step(positions)
        reference = FloodingProtocol(n, side, radius, source=n - 1)
        reference.informed[:] = False
        reference.informed[n - count:] = True
        expected = reference.step(positions)
        assert np.array_equal(np.sort(newly), np.sort(expected))

    def test_batch_state_round_equals_scalar_round(self, rng):
        """One communication round, same positions: batch rows == scalar."""
        n, side, radius = 150, 12.0, 1.3
        batch = 4
        positions = rng.uniform(0, side, size=(batch, n, 2))
        sources = np.array([0, 5, 9, 149])
        for multi_hop in (False, True):
            state = BatchFloodingState(
                n, side, radius, sources, multi_hop=multi_hop
            )
            state.step(positions)
            for b in range(batch):
                protocol = FloodingProtocol(
                    n, side, radius, source=int(sources[b]), multi_hop=multi_hop
                )
                protocol.step(positions[b])
                assert np.array_equal(state.informed[b], protocol.informed), (b, multi_hop)
                assert np.array_equal(state.informed_at[b], protocol.informed_at), (b, multi_hop)
