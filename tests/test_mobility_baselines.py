"""Tests of the baseline mobility models (RWP, random walk, random direction)."""

import numpy as np
import pytest

from repro.geometry.points import in_square
from repro.mobility.random_direction import RandomDirection
from repro.mobility.random_walk import RandomWalk
from repro.mobility.rwp import RandomWaypoint

SIDE = 10.0


class TestRandomWaypoint:
    def test_stays_in_square(self, rng):
        model = RandomWaypoint(100, SIDE, 0.5, rng=rng)
        for _ in range(40):
            assert in_square(model.step(), SIDE, tol=1e-9).all()

    def test_displacement_bounded_by_speed(self, rng):
        model = RandomWaypoint(200, SIDE, 0.3, rng=rng)
        prev = model.positions
        for _ in range(20):
            cur = model.step()
            assert np.all(np.sqrt(((cur - prev) ** 2).sum(1)) <= 0.3 + 1e-9)
            prev = cur

    def test_straight_line_motion(self, rng):
        """Between arrivals, three consecutive positions are collinear."""
        model = RandomWaypoint(100, SIDE, 0.05, rng=rng)  # slow: rare arrivals
        p0 = model.positions
        p1 = model.step()
        p2 = model.step()
        v1 = p1 - p0
        v2 = p2 - p1
        cross = np.abs(v1[:, 0] * v2[:, 1] - v1[:, 1] * v2[:, 0])
        # Nearly all agents did not arrive in 2 slow steps.
        assert np.mean(cross < 1e-9) > 0.9

    def test_stationary_init_center_biased(self, rng):
        """RWP's stationary law is denser at the center than uniform."""
        model = RandomWaypoint(50_000, SIDE, 0.5, rng=rng, init="stationary")
        positions = model.positions
        center = np.all(np.abs(positions - SIDE / 2) < SIDE / 4, axis=1)
        # Center quarter-area square holds 25% under uniform, more under RWP.
        assert center.mean() > 0.30

    def test_pause_time(self, rng):
        model = RandomWaypoint(50, SIDE, 1.0, rng=rng, pause_time=1000.0, init="uniform")
        # Drive every agent to its destination; afterwards all are paused.
        for _ in range(50):
            model.step()
        paused_before = model.positions
        model.step()
        # Agents that have arrived sit still during their pause.
        still = np.isclose(model.positions, paused_before).all(axis=1)
        assert still.mean() > 0.5

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            RandomWaypoint(10, SIDE, 0.5, rng=rng, pause_time=-1.0)
        with pytest.raises(ValueError):
            RandomWaypoint(10, SIDE, 0.5, rng=rng, init="bogus")
        with pytest.raises(ValueError):
            RandomWaypoint(10, SIDE, 0.5, rng=rng).step(-1.0)

    def test_arrival_counts_grow(self, rng):
        model = RandomWaypoint(100, SIDE, 5.0, rng=rng)
        model.advance(30)
        assert model.arrival_counts.sum() > 0


class TestRandomWalk:
    def test_stays_in_square(self, rng):
        model = RandomWalk(200, SIDE, move_radius=1.0, rng=rng)
        for _ in range(30):
            assert in_square(model.step(), SIDE, tol=1e-9).all()

    def test_jump_bounded(self, rng):
        model = RandomWalk(300, SIDE, move_radius=0.7, rng=rng)
        prev = model.positions
        cur = model.step()
        # A single reflection preserves displacement <= 2 * move_radius.
        assert np.all(np.sqrt(((cur - prev) ** 2).sum(1)) <= 2 * 0.7 + 1e-9)

    def test_stationary_is_uniform(self, rng):
        """Reflected disk-jump walk keeps the uniform law (refs [10, 11])."""
        model = RandomWalk(50_000, SIDE, move_radius=1.5, rng=rng)
        model.advance(20)
        positions = model.positions
        # Corner boxes hold their fair share (contrast with MRWP's empty corners).
        corner = np.all(positions < SIDE / 10, axis=1)
        assert corner.mean() == pytest.approx(0.01, abs=0.003)

    def test_clip_boundary_mode(self, rng):
        model = RandomWalk(100, SIDE, move_radius=1.0, rng=rng, boundary="clip")
        for _ in range(20):
            assert in_square(model.step(), SIDE).all()

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            RandomWalk(10, SIDE, move_radius=0.0, rng=rng)
        with pytest.raises(ValueError):
            RandomWalk(10, SIDE, move_radius=SIDE + 1, rng=rng)
        with pytest.raises(ValueError):
            RandomWalk(10, SIDE, move_radius=1.0, rng=rng, boundary="wrap")


class TestRandomDirection:
    def test_stays_in_square(self, rng):
        model = RandomDirection(200, SIDE, 0.8, rng=rng)
        for _ in range(40):
            assert in_square(model.step(), SIDE, tol=1e-9).all()

    def test_constant_speed_between_reflections(self, rng):
        model = RandomDirection(300, SIDE, 0.4, rng=rng, mean_leg=100.0)
        prev = model.positions
        cur = model.step()
        disp = np.sqrt(((cur - prev) ** 2).sum(1))
        # No reflection and no redraw -> displacement exactly v.
        interior = np.all((prev > 0.5) & (prev < SIDE - 0.5), axis=1)
        assert np.allclose(disp[interior], 0.4, atol=1e-9)

    def test_stationary_is_uniform(self, rng):
        model = RandomDirection(50_000, SIDE, 1.0, rng=rng)
        model.advance(20)
        corner = np.all(model.positions < SIDE / 10, axis=1)
        assert corner.mean() == pytest.approx(0.01, abs=0.003)

    def test_speed_above_side(self, rng):
        """Multiple reflections per step are folded correctly."""
        model = RandomDirection(50, SIDE, 3.5 * SIDE, rng=rng)
        for _ in range(10):
            assert in_square(model.step(), SIDE, tol=1e-9).all()

    def test_invalid_mean_leg(self, rng):
        with pytest.raises(ValueError):
            RandomDirection(10, SIDE, 1.0, rng=rng, mean_leg=0.0)
