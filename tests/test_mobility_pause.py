"""Tests of the pause-time MRWP variant and its mixed stationary law."""

import numpy as np
import pytest

from repro.analysis.empirical import (
    analytic_cell_probabilities,
    histogram_density,
    total_variation,
)
from repro.geometry.points import in_square
from repro.mobility.pause import (
    ManhattanRandomWaypointWithPause,
    moving_probability,
    spatial_pdf_with_pause,
)
from repro.mobility.distributions import spatial_pdf

SIDE = 20.0


class TestMovingProbability:
    def test_no_pause_always_moving(self):
        assert moving_probability(SIDE, 1.0, 0.0) == 1.0

    def test_formula(self):
        speed, pause = 0.5, 10.0
        trip_time = (2 * SIDE / 3) / speed
        assert moving_probability(SIDE, speed, pause) == pytest.approx(
            trip_time / (trip_time + pause)
        )

    def test_long_pause_mostly_parked(self):
        assert moving_probability(SIDE, 1.0, 1e6) < 1e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_probability(SIDE, 0.0, 1.0)
        with pytest.raises(ValueError):
            moving_probability(SIDE, 1.0, -1.0)


class TestMixedPdf:
    def test_zero_pause_reduces_to_theorem1(self):
        x = np.linspace(0.1, SIDE - 0.1, 20)
        assert np.allclose(
            spatial_pdf_with_pause(x, x, SIDE, 1.0, 0.0), spatial_pdf(x, x, SIDE)
        )

    def test_infinite_pause_limit_is_uniform(self):
        value = spatial_pdf_with_pause(3.0, 7.0, SIDE, 1.0, 1e9)
        assert float(value) == pytest.approx(1.0 / SIDE**2, rel=1e-3)

    def test_integrates_to_one(self):
        grid = np.linspace(0, SIDE, 201)
        centers = 0.5 * (grid[:-1] + grid[1:])
        xg, yg = np.meshgrid(centers, centers, indexing="ij")
        h = grid[1] - grid[0]
        total = np.sum(spatial_pdf_with_pause(xg, yg, SIDE, 0.5, 7.0)) * h * h
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_corners_not_empty_under_pause(self):
        """Pausing adds uniform mass: corners are no longer density-zero."""
        assert spatial_pdf_with_pause(0.0, 0.0, SIDE, 1.0, 10.0) > 0.0
        assert spatial_pdf(0.0, 0.0, SIDE) == 0.0


class TestPauseModel:
    def test_stays_in_square(self):
        model = ManhattanRandomWaypointWithPause(
            200, SIDE, 0.5, pause_time=3.0, rng=np.random.default_rng(0)
        )
        for _ in range(30):
            assert in_square(model.step(), SIDE, tol=1e-9).all()

    def test_initial_moving_fraction(self):
        speed, pause = 0.5, 15.0
        model = ManhattanRandomWaypointWithPause(
            30_000, SIDE, speed, pause_time=pause, rng=np.random.default_rng(1)
        )
        expected = moving_probability(SIDE, speed, pause)
        assert model.moving_fraction == pytest.approx(expected, abs=0.01)

    def test_moving_fraction_stays_stationary(self):
        speed, pause = 0.5, 10.0
        model = ManhattanRandomWaypointWithPause(
            20_000, SIDE, speed, pause_time=pause, rng=np.random.default_rng(2)
        )
        model.advance(20)
        expected = moving_probability(SIDE, speed, pause)
        assert model.moving_fraction == pytest.approx(expected, abs=0.02)

    def test_paused_agents_do_not_move(self):
        model = ManhattanRandomWaypointWithPause(
            500, SIDE, 0.5, pause_time=50.0, rng=np.random.default_rng(3)
        )
        paused_before = model.paused_mask
        before = model.positions
        after = model.step()
        still_paused = paused_before & model.paused_mask
        assert np.allclose(before[still_paused], after[still_paused])

    def test_zero_pause_behaves_like_mrwp_statistically(self):
        """pause_time=0: the spatial law stays Theorem 1 under stepping."""
        model = ManhattanRandomWaypointWithPause(
            20_000, SIDE, 0.4, pause_time=0.0, rng=np.random.default_rng(4)
        )
        model.advance(15)
        bins = 8
        empirical = histogram_density(model.positions, SIDE, bins) * (SIDE / bins) ** 2
        analytic = analytic_cell_probabilities(
            lambda x, y: spatial_pdf(x, y, SIDE), SIDE, bins
        )
        assert total_variation(empirical, analytic) < 0.05

    @pytest.mark.slow
    def test_mixture_law_under_stepping(self):
        speed, pause = 0.4, 12.0
        model = ManhattanRandomWaypointWithPause(
            30_000, SIDE, speed, pause_time=pause, rng=np.random.default_rng(5)
        )
        model.advance(15)
        bins = 8
        empirical = histogram_density(model.positions, SIDE, bins) * (SIDE / bins) ** 2
        analytic = analytic_cell_probabilities(
            lambda x, y: spatial_pdf_with_pause(x, y, SIDE, speed, pause), SIDE, bins
        )
        assert total_variation(empirical, analytic) < 0.04

    def test_validation(self):
        with pytest.raises(ValueError):
            ManhattanRandomWaypointWithPause(10, SIDE, 0.5, pause_time=-1.0)
        with pytest.raises(ValueError):
            ManhattanRandomWaypointWithPause(10, SIDE, 0.0, pause_time=1.0)
        with pytest.raises(ValueError):
            ManhattanRandomWaypointWithPause(10, SIDE, 0.5, pause_time=1.0, init="warp")
        model = ManhattanRandomWaypointWithPause(
            10, SIDE, 0.5, pause_time=1.0, rng=np.random.default_rng(6)
        )
        with pytest.raises(ValueError):
            model.step(0.0)

    def test_uniform_init(self):
        model = ManhattanRandomWaypointWithPause(
            100, SIDE, 0.5, pause_time=2.0, rng=np.random.default_rng(7), init="uniform"
        )
        assert model.moving_fraction == 1.0  # cold start: everyone mid-trip
