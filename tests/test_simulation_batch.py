"""Batch engine: seed-for-seed parity, batched queries, sharding determinism."""

import numpy as np
import pytest

from repro.geometry.neighbors import BatchNeighborQuery, available_backends, make_engine
from repro.mobility import (
    BatchManhattanRandomWaypoint,
    BatchRandomWalk,
    BatchRandomWaypoint,
    ManhattanRandomWaypoint,
    RandomWalk,
    RandomWaypoint,
    ReplicatedBatchMobility,
)
from repro.protocols.flooding import BatchFloodingState
from repro.simulation import (
    run_flooding_batch,
    run_trials,
    run_trials_parallel,
    standard_config,
    sweep,
    sweep_parallel,
)


def assert_results_match(scalar_results, batch_results):
    assert len(scalar_results) == len(batch_results)
    for a, b in zip(scalar_results, batch_results):
        assert a.flooding_time == b.flooding_time
        assert a.completed == b.completed
        assert a.stalled == b.stalled
        assert a.n_steps == b.n_steps
        assert a.source == b.source
        assert a.final_coverage == b.final_coverage
        assert np.array_equal(a.informed_history, b.informed_history)
        assert a.cz_completion_time == b.cz_completion_time
        assert a.suburb_completion_time == b.suburb_completion_time
        assert a.source_in_central_zone == b.source_in_central_zone


class TestSeedForSeedParity:
    """The batch engine must reproduce the scalar engine trial-for-trial."""

    def test_flooding_times_match_scalar(self):
        config = standard_config(120, seed=7)
        scalar = run_trials(config, 8)
        batch = run_trials(config.with_options(engine="batch"), 8)
        assert_results_match(scalar, batch)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mobility": "rwp"},
            {"mobility": "random-walk"},
            {"mobility": "random-direction"},  # exercises the replicated fallback
            {"mobility": "mrwp-pause", "mobility_options": {"pause_time": 1.5}},
            {"multi_hop": True},
            {"init": "uniform"},
            {"init": "closed-form"},
            {"source": "central"},
            {"source": "suburb"},
            {"backend": "grid"},
            {"track_zones": False},
        ],
    )
    def test_parity_across_options(self, overrides):
        config = standard_config(80, seed=11, **overrides)
        scalar = run_trials(config, 5)
        batch = run_trials(config.with_options(engine="batch"), 5)
        assert_results_match(scalar, batch)

    def test_parity_is_independent_of_batch_size(self):
        config = standard_config(80, seed=3, engine="batch")
        whole = run_trials(config, 7)
        sliced = run_trials(config.with_options(batch_size=3), 7)
        assert_results_match(whole, sliced)

    def test_sweep_with_batch_engine_matches_scalar(self):
        config = standard_config(80, seed=5)
        scalar = sweep(config, "radius", [3.0, 4.0], n_trials=3)
        batch = sweep(config.with_options(engine="batch"), "radius", [3.0, 4.0], n_trials=3)
        for (va, sa, ra), (vb, sb, rb) in zip(scalar, batch):
            assert va == vb
            assert sa == sb
            assert_results_match(ra, rb)

    def test_batch_supports_every_registered_protocol(self):
        """PR 3: the batch engine is protocol-agnostic (the old behaviour
        — a deep ValueError for anything but flooding — is gone)."""
        config = standard_config(80, seed=1, engine="batch", protocol="gossip")
        results = run_trials(config, 2)
        assert len(results) == 2

    def test_unknown_protocol_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            standard_config(80, protocol="carrier-pigeon")

    def test_auto_engine_resolves_to_batch_for_batchable_protocols(self):
        config = standard_config(80, seed=1, engine="auto", protocol="sir")
        assert config.resolved_engine == "batch"
        assert standard_config(80, engine="scalar").resolved_engine == "scalar"

    def test_auto_engine_matches_batch_results(self):
        config = standard_config(80, seed=29)
        batch = run_trials(config.with_options(engine="batch"), 4)
        auto = run_trials(config.with_options(engine="auto"), 4)
        assert_results_match(batch, auto)


class TestBatchMobility:
    """Vectorized multi-replica stepping vs B independent scalar models."""

    B, N, SIDE, SPEED = 5, 60, 10.0, 0.8

    def _rng_pairs(self, seed):
        root = np.random.SeedSequence(seed)
        children = root.spawn(self.B)
        return (
            [np.random.default_rng(c) for c in children],
            [np.random.default_rng(c) for c in children],
        )

    def test_batch_mrwp_trajectories_match_scalar(self):
        scalar_rngs, batch_rngs = self._rng_pairs(21)
        models = [
            ManhattanRandomWaypoint(self.N, self.SIDE, self.SPEED, rng=r)
            for r in scalar_rngs
        ]
        batch = BatchManhattanRandomWaypoint(self.N, self.SIDE, self.SPEED, batch_rngs)
        assert np.array_equal(
            batch.positions, np.stack([m.positions for m in models])
        )
        for _ in range(15):
            expected = np.stack([m.step() for m in models])
            assert np.array_equal(batch.step(), expected)
        assert np.array_equal(
            batch.turn_counts.reshape(self.B, self.N),
            np.stack([m.turn_counts for m in models]),
        )
        assert np.array_equal(
            batch.arrival_counts.reshape(self.B, self.N),
            np.stack([m.arrival_counts for m in models]),
        )

    def test_batch_rwp_trajectories_match_scalar(self):
        scalar_rngs, batch_rngs = self._rng_pairs(22)
        models = [
            RandomWaypoint(self.N, self.SIDE, self.SPEED, rng=r, pause_time=0.5)
            for r in scalar_rngs
        ]
        batch = BatchRandomWaypoint(self.N, self.SIDE, self.SPEED, batch_rngs, pause_time=0.5)
        for _ in range(15):
            expected = np.stack([m.step() for m in models])
            assert np.array_equal(batch.step(), expected)

    def test_batch_random_walk_trajectories_match_scalar(self):
        scalar_rngs, batch_rngs = self._rng_pairs(23)
        models = [
            RandomWalk(self.N, self.SIDE, move_radius=self.SPEED, rng=r)
            for r in scalar_rngs
        ]
        batch = BatchRandomWalk(self.N, self.SIDE, move_radius=self.SPEED, rngs=batch_rngs)
        for _ in range(15):
            expected = np.stack([m.step() for m in models])
            assert np.array_equal(batch.step(), expected)

    def test_step_returns_independent_copies_by_default(self):
        """Holding step() results across steps must be safe (the lock-step
        driver opts into the zero-copy view with copy=False)."""
        _scalar_rngs, batch_rngs = self._rng_pairs(26)
        batch = BatchManhattanRandomWaypoint(self.N, self.SIDE, self.SPEED, batch_rngs)
        first = batch.step()
        held = first.copy()
        second = batch.step()
        assert not np.shares_memory(first, second)
        assert np.array_equal(first, held)  # not silently refreshed in place
        view = batch.step(copy=False)
        assert not view.flags.writeable
        assert np.array_equal(view, batch.positions)

    def test_inactive_replicas_freeze_state_and_streams(self):
        _scalar_rngs, batch_rngs = self._rng_pairs(24)
        batch = BatchManhattanRandomWaypoint(self.N, self.SIDE, self.SPEED, batch_rngs)
        frozen = batch.positions[2]
        active = np.ones(self.B, dtype=bool)
        active[2] = False
        for _ in range(10):
            positions = batch.step(active=active)
        assert np.array_equal(positions[2], frozen)
        assert not np.array_equal(positions[0], batch.positions[2])

    def test_batch_mrwp_marginals_stay_stationary(self):
        """Stepping must preserve Theorem 1's non-uniform marginal: the
        central box denser than a corner box, all positions in bounds."""
        side = 10.0
        batch = BatchManhattanRandomWaypoint(
            30, side, 0.7, [np.random.default_rng(s) for s in range(40)]
        )
        for _ in range(5):
            positions = batch.step()
        flat = positions.reshape(-1, 2)
        assert np.all(flat >= 0.0) and np.all(flat <= side)
        center = np.all(np.abs(flat - side / 2) < side / 6, axis=1).mean()
        corner = np.all(flat < side / 3, axis=1).mean()
        # Theorem 1: the central box carries ~2.6x the corner box's mass.
        assert center > corner * 1.5

    def test_replicated_fallback_matches_scalar(self):
        scalar_rngs, batch_rngs = self._rng_pairs(25)
        models = [
            ManhattanRandomWaypoint(self.N, self.SIDE, self.SPEED, rng=r)
            for r in batch_rngs
        ]
        reference = [
            ManhattanRandomWaypoint(self.N, self.SIDE, self.SPEED, rng=r)
            for r in scalar_rngs
        ]
        batch = ReplicatedBatchMobility(models)
        assert batch.batch_size == self.B
        for _ in range(5):
            expected = np.stack([m.step() for m in reference])
            assert np.array_equal(batch.step(), expected)


class TestBatchNeighborQuery:
    """Tiled / cell-cover batched queries vs per-replica scalar engines."""

    @pytest.fixture
    def workload(self):
        rng = np.random.default_rng(5)
        batch, n, side, radius = 6, 80, 12.0, 1.3
        positions = rng.uniform(0, side, size=(batch, n, 2))
        source_mask = rng.uniform(size=(batch, n)) < 0.3
        query_mask = ~source_mask & (rng.uniform(size=(batch, n)) < 0.8)
        return positions, source_mask, query_mask, side, radius

    @pytest.mark.parametrize("backend", ["cells", "auto", *available_backends()])
    def test_any_within_matches_scalar_engines(self, workload, backend):
        positions, source_mask, query_mask, side, radius = workload
        batch = positions.shape[0]
        query = BatchNeighborQuery(side, batch, backend=backend)
        got = query.any_within(positions, source_mask, query_mask, radius)
        reference = make_engine("brute", side)
        for b in range(batch):
            expected = np.zeros(positions.shape[1], dtype=bool)
            expected[query_mask[b]] = reference.any_within(
                positions[b][source_mask[b]], positions[b][query_mask[b]], radius
            )
            assert np.array_equal(got[b], expected), f"replica {b} backend {backend}"

    @pytest.mark.parametrize("backend", available_backends())
    def test_count_within_matches_scalar_engines(self, workload, backend):
        positions, source_mask, query_mask, side, radius = workload
        batch = positions.shape[0]
        query = BatchNeighborQuery(side, batch, backend=backend)
        got = query.count_within(positions, source_mask, query_mask, radius)
        reference = make_engine("brute", side)
        for b in range(batch):
            expected = np.zeros(positions.shape[1], dtype=np.intp)
            expected[query_mask[b]] = reference.count_within(
                positions[b][source_mask[b]], positions[b][query_mask[b]], radius
            )
            assert np.array_equal(got[b], expected)

    def test_no_cross_replica_hits(self):
        # One source in replica 0 only; replica 1's queries must all miss.
        positions = np.zeros((2, 3, 2))
        positions[1] = positions[0]  # identical coordinates across replicas
        source_mask = np.array([[True, False, False], [False, False, False]])
        query_mask = ~source_mask
        query = BatchNeighborQuery(5.0, 2, backend="kdtree" if "kdtree" in available_backends() else "grid")
        hits = query.any_within(positions, source_mask, query_mask, 1.0)
        assert hits[0, 1] and hits[0, 2]
        assert not hits[1].any()

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown neighbor backend"):
            BatchNeighborQuery(5.0, 2, backend="nope")

    def test_flooding_state_single_step(self):
        positions = np.array(
            [[[0.0, 0.0], [0.5, 0.0], [3.0, 3.0]], [[0.0, 0.0], [2.0, 0.0], [2.5, 0.0]]]
        )
        state = BatchFloodingState(3, 5.0, 1.0, sources=[0, 0])
        newly = state.step(positions)
        assert newly[0, 1] and not newly[0, 2]
        assert not newly[1].any()  # nearest agent is 2.0 > radius away
        assert state.informed_counts.tolist() == [2, 1]

    def test_flooding_state_multi_hop_saturates_components(self):
        positions = np.array([[[0.0, 0.0], [0.9, 0.0], [1.8, 0.0], [4.0, 4.0]]])
        state = BatchFloodingState(4, 6.0, 1.0, sources=[0], multi_hop=True)
        state.step(positions)
        assert state.informed[0].tolist() == [True, True, True, False]


class TestShardingDeterminism:
    """run_trials must be reproducible under batch slicing and processes."""

    def test_parallel_batch_matches_serial_and_scalar(self):
        config = standard_config(80, seed=13)
        scalar = run_trials(config, 6)
        batched = config.with_options(engine="batch", batch_size=2)
        serial = run_trials(batched, 6)
        parallel = run_trials_parallel(batched, 6, max_workers=2)
        sharded = run_trials_parallel(batched.with_options(batch_size=0), 6, max_workers=3)
        assert_results_match(scalar, serial)
        assert_results_match(scalar, parallel)
        assert_results_match(scalar, sharded)

    def test_sweep_parallel_batch_matches_serial(self):
        config = standard_config(80, seed=17, engine="batch")
        serial = sweep(config, "radius", [3.0, 3.5], n_trials=4)
        parallel = sweep_parallel(config, "radius", [3.0, 3.5], n_trials=4, max_workers=2)
        for (va, sa, ra), (vb, sb, rb) in zip(serial, parallel):
            assert va == vb
            assert sa == sb
            assert_results_match(ra, rb)

    def test_repeated_calls_are_identical(self):
        config = standard_config(80, seed=19, engine="batch")
        first = run_trials(config, 4)
        second = run_trials(config, 4)
        assert_results_match(first, second)


class TestConfigKnobs:
    def test_engine_validation(self):
        with pytest.raises(ValueError, match="engine"):
            standard_config(50, engine="warp")

    def test_batch_size_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            standard_config(50, batch_size=-1)

    def test_defaults_are_scalar(self):
        config = standard_config(50)
        assert config.engine == "scalar"
        assert config.batch_size == 0

    def test_run_flooding_batch_requires_seed_seqs(self):
        config = standard_config(50)
        with pytest.raises(ValueError, match="seed_seqs"):
            run_flooding_batch(config, [])
