"""Lease-based cooperative sweeps: the PR 7 distributed fault matrix.

Unit tests drive the lease protocol itself (exclusive-link acquisition,
heartbeats, TTL staleness with an injected clock, rename-tombstone
reclamation, corrupt-lease recovery), then the integration legs: N
cooperating ``run_sweep`` invocations draining one checkpoint to tables
**byte-identical** to a solo run — including a worker SIGKILLed mid-run
whose leases a survivor reclaims after the TTL — and the poison-job
quarantine surfacing point keys, trial ranges, seeds, and a sticky marker
that blocks silent retries until deleted.
"""

import importlib
import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.simulation.config import standard_config
from repro.simulation.lease import (
    DEFAULT_LEASE_TTL,
    LeaseError,
    LeaseManager,
    worker_identity,
)
from repro.simulation.parallel import PoisonJobError
from repro.simulation.sweep import SweepPlan, StoppingRule, run_sweep

BASE = standard_config(140, radius_factor=1.1, max_steps=600, seed=5)


def small_plan():
    plan = SweepPlan()
    plan.add(BASE, 3, key="base")
    plan.add(BASE.with_options(radius=BASE.radius * 1.5), 2, key="wide")
    plan.add(BASE.with_options(seed=11), 4, key="reseeded")
    return plan


def fingerprint(results):
    return [
        (
            r.flooding_time,
            r.completed,
            r.stalled,
            r.n_steps,
            r.source,
            tuple(np.asarray(r.informed_history).tolist()),
        )
        for r in results
    ]


def table(points):
    return [
        (p.key, p.n_trials, p.engine, fingerprint(p.results), p.summary)
        for p in points
    ]


def lease_files(directory):
    return sorted(name for name in os.listdir(directory) if name.endswith(".lease"))


# ----------------------------------------------------------------------
# The lease protocol
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestLeaseProtocol:
    def test_acquire_is_exclusive(self, tmp_path):
        a = LeaseManager(str(tmp_path), ttl=30.0, owner="worker-a")
        b = LeaseManager(str(tmp_path), ttl=30.0, owner="worker-b")
        assert a.acquire(0)
        assert a.acquire(0)  # idempotent for the owner
        assert not b.acquire(0)  # live foreign lease: refused
        assert a.owns(0) and not b.owns(0)
        assert a.read(0)["owner"] == "worker-a"

    def test_release_hands_the_group_over(self, tmp_path):
        a = LeaseManager(str(tmp_path), ttl=30.0, owner="worker-a")
        b = LeaseManager(str(tmp_path), ttl=30.0, owner="worker-b")
        assert a.acquire(3)
        a.release(3)
        assert not a.owns(3)
        assert a.read(3) is None  # the lease file is gone
        assert b.acquire(3)

    def test_heartbeat_refreshes_timestamp(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(str(tmp_path), ttl=30.0, owner="worker-a", clock=clock)
        assert a.acquire(0)
        first = a.read(0)["heartbeat"]
        clock.now += 10.0
        a.heartbeat(0)
        assert a.read(0)["heartbeat"] == pytest.approx(first + 10.0)

    def test_stale_lease_reclaimed_after_ttl(self, tmp_path):
        clock_a = FakeClock(1000.0)
        clock_b = FakeClock(1000.0)
        a = LeaseManager(str(tmp_path), ttl=5.0, owner="worker-a", clock=clock_a)
        b = LeaseManager(str(tmp_path), ttl=5.0, owner="worker-b", clock=clock_b)
        assert a.acquire(0)
        clock_b.now = 1004.0
        assert not b.acquire(0)  # within the TTL: still the owner's
        clock_b.now = 1006.0
        assert b.acquire(0)  # past the TTL: reclaimed
        assert b.read(0)["owner"] == "worker-b"

    def test_loser_detects_the_takeover_on_heartbeat(self, tmp_path):
        clock = FakeClock(1000.0)
        a = LeaseManager(str(tmp_path), ttl=5.0, owner="worker-a", clock=clock)
        b = LeaseManager(str(tmp_path), ttl=5.0, owner="worker-b", clock=clock)
        assert a.acquire(0)
        clock.now = 1010.0
        assert b.acquire(0)
        with pytest.raises(LeaseError, match="reclaimed"):
            a.heartbeat(0)
        assert not a.owns(0)  # ownership dropped so release_all is a no-op
        a.release(0)
        assert b.read(0)["owner"] == "worker-b"  # the thief's lease survived

    def test_staleness_uses_the_victims_recorded_ttl(self, tmp_path):
        clock = FakeClock(1000.0)
        a = LeaseManager(str(tmp_path), ttl=2.0, owner="worker-a", clock=clock)
        b = LeaseManager(str(tmp_path), ttl=600.0, owner="worker-b", clock=clock)
        assert a.acquire(0)
        clock.now = 1003.0  # past a's 2s TTL, far within b's 600s
        assert b.acquire(0)

    def test_corrupt_lease_is_reclaimable_not_trusted(self, tmp_path):
        a = LeaseManager(str(tmp_path), ttl=30.0, owner="worker-a")
        with open(a.path(0), "w") as handle:
            handle.write("{torn mid-wri")
        payload = a.read(0)
        assert payload["owner"] == "<unreadable>"
        assert a.is_stale(payload)
        assert a.acquire(0)
        assert a.read(0)["owner"] == "worker-a"

    def test_heartbeat_without_ownership_raises(self, tmp_path):
        a = LeaseManager(str(tmp_path), ttl=30.0, owner="worker-a")
        with pytest.raises(LeaseError, match="does \nnot hold|not hold"):
            a.heartbeat(7)

    def test_context_manager_releases_everything(self, tmp_path):
        with LeaseManager(str(tmp_path), ttl=30.0, owner="worker-a") as a:
            assert a.acquire(0)
            assert a.acquire(1)
            assert a.owned == [0, 1]
        assert lease_files(str(tmp_path)) == []

    def test_worker_identity_is_unique_per_call(self):
        assert worker_identity() != worker_identity()
        assert str(os.getpid()) in worker_identity()

    def test_ttl_validation(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            LeaseManager(str(tmp_path), ttl=0.0)


# ----------------------------------------------------------------------
# Cooperative execution: bit-exact multi-worker drains
# ----------------------------------------------------------------------
class TestCooperativeSweeps:
    def test_single_cooperative_worker_matches_solo(self, tmp_path):
        expected = run_sweep(small_plan())
        ck = str(tmp_path / "ck")
        got = run_sweep(small_plan(), checkpoint=ck, lease_ttl=30.0)
        assert table(got) == table(expected)
        assert lease_files(ck) == []  # everything released on the way out

    def test_late_joiner_loads_everything_from_the_store(self, tmp_path):
        ck = str(tmp_path / "ck")
        first = run_sweep(small_plan(), checkpoint=ck, lease_ttl=30.0)
        joiner = run_sweep(small_plan(), checkpoint=ck, lease_ttl=30.0)
        assert table(joiner) == table(first)

    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_two_concurrent_jobs2_workers_bit_exact(self, tmp_path, engine):
        """The satellite scenario: two jobs=2 workers on one checkpoint."""
        expected = run_sweep(small_plan(), engine=engine, jobs=2)
        ck = str(tmp_path / "ck")
        got = run_sweep(
            small_plan(), engine=engine, jobs=2, checkpoint=ck, workers=2
        )
        assert table(got) == table(expected)
        assert lease_files(ck) == []

    def test_adaptive_cooperative_matches_solo_stop_points(self, tmp_path):
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
        expected = run_sweep(small_plan(), stopping=rule)
        ck = str(tmp_path / "ck")
        got = run_sweep(small_plan(), stopping=rule, checkpoint=ck, workers=2)
        assert table(got) == table(expected)

    def test_validation_matrix(self, tmp_path):
        with pytest.raises(ValueError, match="requires a shared\n?.*checkpoint|checkpoint"):
            run_sweep(small_plan(), workers=2)
        with pytest.raises(ValueError, match="checkpoint"):
            run_sweep(small_plan(), lease_ttl=10.0)
        with pytest.raises(ValueError, match="worker_id"):
            run_sweep(small_plan(), worker_id="me")
        with pytest.raises(ValueError, match="trial_budget"):
            run_sweep(
                small_plan(), checkpoint=str(tmp_path / "a"), workers=2, trial_budget=5
            )
        with pytest.raises(ValueError, match="workers must be"):
            run_sweep(small_plan(), workers=0)

    def test_observer_points_refuse_cooperative_mode(self, tmp_path):
        from repro.simulation.metrics import InformedRecorder

        plan = SweepPlan()
        plan.add(
            BASE, 2, key="obs", observer_factory=lambda config: [InformedRecorder()]
        )
        with pytest.raises(ValueError, match="observer"):
            run_sweep(plan, checkpoint=str(tmp_path / "ck"), lease_ttl=10.0)


# ----------------------------------------------------------------------
# SIGKILL a leased worker: the survivor reclaims and finishes bit-exactly
# ----------------------------------------------------------------------
_KILLED_WORKER_SCRIPT = textwrap.dedent(
    """
    import os, signal, sys
    sys.path.insert(0, {src!r})
    from repro.simulation.checkpoint import SweepCheckpoint
    from repro.simulation.config import standard_config
    from repro.simulation.sweep import SweepPlan, StoppingRule, run_sweep

    BASE = standard_config(140, radius_factor=1.1, max_steps=600, seed=5)
    plan = SweepPlan()
    plan.add(BASE, 3, key="base")
    plan.add(BASE.with_options(radius=BASE.radius * 1.5), 2, key="wide")
    plan.add(BASE.with_options(seed=11), 4, key="reseeded")

    # SIGKILL after the first checkpoint flush: the worker dies holding a
    # live lease on an UNFINISHED group (batch=1 rounds leave the group
    # mid-flight), which is exactly what the survivor must reclaim.
    original = SweepCheckpoint.write_group
    def killing(self, index, fp, results):
        original(self, index, fp, results)
        os.kill(os.getpid(), signal.SIGKILL)
    SweepCheckpoint.write_group = killing

    rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
    run_sweep(plan, stopping=rule, checkpoint={ck!r}, lease_ttl=1.0)
    """
)


class TestSigkilledWorkerReclaim:
    def test_survivor_reclaims_stale_lease_and_matches_solo(self, tmp_path):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        ck = str(tmp_path / "ck")
        script = _KILLED_WORKER_SCRIPT.format(src=os.path.abspath(src), ck=ck)
        errpath = tmp_path / "stderr.txt"
        with open(errpath, "wb") as err:
            proc = subprocess.Popen(
                [sys.executable, "-c", script],
                stdout=subprocess.DEVNULL,
                stderr=err,
                start_new_session=True,
            )
            try:
                returncode = proc.wait(timeout=120)
            finally:
                try:
                    os.killpg(proc.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
        assert returncode == -signal.SIGKILL, errpath.read_text()
        # The dead worker left a held lease on a partially-run group...
        held = lease_files(ck)
        assert held, "the SIGKILLed worker should have died holding a lease"
        victim = json.load(open(os.path.join(ck, held[0])))
        assert victim["ttl"] == 1.0

        # ...which the survivor reclaims after the TTL and finishes.
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
        survived = run_sweep(
            small_plan(), stopping=rule, checkpoint=ck, lease_ttl=1.0
        )
        expected = run_sweep(small_plan(), stopping=rule)
        assert table(survived) == table(expected)
        assert lease_files(ck) == []


# ----------------------------------------------------------------------
# Poison-job quarantine through the sweep scheduler
# ----------------------------------------------------------------------
def _poisoned_run_sweep_job(args):
    """Fork-inherited stand-in for sweep._run_sweep_job: seed 11 is lethal."""
    config = args[0]
    if config.seed == 11:
        os._exit(1)
    return _REAL_RUN_SWEEP_JOB(args)


from repro.simulation.sweep import _run_sweep_job as _REAL_RUN_SWEEP_JOB  # noqa: E402


class TestPoisonQuarantineEndToEnd:
    def test_quarantine_names_the_point_and_sticks(self, tmp_path, monkeypatch):
        sweep_mod = importlib.import_module("repro.simulation.sweep")
        ck = str(tmp_path / "ck")
        monkeypatch.setattr(sweep_mod, "_run_sweep_job", _poisoned_run_sweep_job)
        with pytest.raises(PoisonJobError) as excinfo:
            run_sweep(
                small_plan(), engine="scalar", jobs=2, checkpoint=ck, max_retries=1
            )
        message = str(excinfo.value)
        # The error names the sweep point, trial range, seed, and marker.
        assert "'reseeded'" in message
        assert "seed 11" in message
        assert "trials 0" in message
        assert "quarantine marker" in message
        assert "delete the marker" in message

        # The marker is on disk and the innocents' trials were persisted.
        markers = [n for n in os.listdir(ck) if n.startswith("poison_")]
        assert len(markers) == 1
        marker = json.load(open(os.path.join(ck, markers[0])))
        assert marker["kind"] == "repro-sweep-poison"
        assert marker["seed"] == 11
        assert "'reseeded'" in " ".join(marker["keys"])
        groups = [n for n in os.listdir(ck) if n.startswith("group_")]
        assert groups, "completed groups must be persisted before the raise"

        # Sticky: a resume fails fast on the marker even with a fixed job.
        monkeypatch.setattr(sweep_mod, "_run_sweep_job", _REAL_RUN_SWEEP_JOB)
        with pytest.raises(PoisonJobError, match="previous \n?run|previous"):
            run_sweep(
                small_plan(), engine="scalar", jobs=2, checkpoint=ck, resume=True
            )

        # Deleting the marker (the error's instruction) unblocks the retry,
        # and the final table is the uninterrupted-solo truth.
        os.unlink(os.path.join(ck, markers[0]))
        recovered = run_sweep(
            small_plan(), engine="scalar", jobs=2, checkpoint=ck, resume=True
        )
        assert table(recovered) == table(run_sweep(small_plan(), engine="scalar"))

    def test_no_checkpoint_still_raises_with_labels(self, monkeypatch):
        sweep_mod = importlib.import_module("repro.simulation.sweep")
        monkeypatch.setattr(sweep_mod, "_run_sweep_job", _poisoned_run_sweep_job)
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
        with pytest.raises(PoisonJobError) as excinfo:
            run_sweep(small_plan(), engine="scalar", jobs=2, stopping=rule, max_retries=0)
        assert "'reseeded'" in str(excinfo.value)
        assert "seed 11" in str(excinfo.value)
