"""Unit tests for repro.geometry.points."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.points import (
    as_points,
    chebyshev_distance,
    clamp_to_square,
    corner_distance,
    euclidean_distance,
    in_square,
    manhattan_distance,
    manhattan_distance_to_box,
    pairwise_euclidean,
    pairwise_manhattan,
)

coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestAsPoints:
    def test_single_point_promoted(self):
        points = as_points((1.0, 2.0))
        assert points.shape == (1, 2)

    def test_array_passthrough(self):
        arr = np.zeros((5, 2))
        assert as_points(arr).shape == (5, 2)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            as_points(np.zeros((5, 3)))

    def test_rejects_wrong_single(self):
        with pytest.raises(ValueError):
            as_points((1.0, 2.0, 3.0))

    def test_converts_to_float64(self):
        points = as_points(np.array([[1, 2]], dtype=np.int32))
        assert points.dtype == np.float64


class TestDistances:
    def test_euclidean_simple(self):
        assert euclidean_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_manhattan_simple(self):
        assert manhattan_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(7.0)

    def test_chebyshev_simple(self):
        assert chebyshev_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(4.0)

    def test_vectorized_shapes(self):
        a = np.zeros((7, 2))
        b = np.ones((7, 2))
        assert euclidean_distance(a, b).shape == (7,)
        assert manhattan_distance(a, b).shape == (7,)

    @given(
        x1=coord, y1=coord, x2=coord, y2=coord
    )
    @settings(max_examples=50)
    def test_metric_ordering(self, x1, y1, x2, y2):
        """Chebyshev <= Euclidean <= Manhattan <= 2 * Chebyshev."""
        a = np.array([x1, y1])
        b = np.array([x2, y2])
        che = float(chebyshev_distance(a, b))
        euc = float(euclidean_distance(a, b))
        man = float(manhattan_distance(a, b))
        assert che <= euc + 1e-9
        assert euc <= man + 1e-9
        assert man <= 2.0 * che + 1e-9

    @given(x1=coord, y1=coord, x2=coord, y2=coord)
    @settings(max_examples=50)
    def test_symmetry(self, x1, y1, x2, y2):
        a = np.array([x1, y1])
        b = np.array([x2, y2])
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))
        assert manhattan_distance(a, b) == pytest.approx(manhattan_distance(b, a))


class TestPairwise:
    def test_pairwise_euclidean_matches_scalar(self, rng):
        a = rng.uniform(0, 10, size=(6, 2))
        b = rng.uniform(0, 10, size=(4, 2))
        matrix = pairwise_euclidean(a, b)
        assert matrix.shape == (6, 4)
        for i in range(6):
            for j in range(4):
                assert matrix[i, j] == pytest.approx(float(euclidean_distance(a[i], b[j])))

    def test_pairwise_manhattan_self(self, rng):
        a = rng.uniform(0, 10, size=(5, 2))
        matrix = pairwise_manhattan(a)
        assert matrix.shape == (5, 5)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.allclose(matrix, matrix.T)


class TestSquarePredicates:
    def test_clamp(self):
        points = np.array([[-1.0, 5.0], [11.0, 0.5]])
        clamped = clamp_to_square(points, 10.0)
        assert clamped.min() >= 0.0
        assert clamped.max() <= 10.0

    def test_clamp_rejects_bad_side(self):
        with pytest.raises(ValueError):
            clamp_to_square(np.zeros((1, 2)), 0.0)

    def test_in_square(self):
        points = np.array([[5.0, 5.0], [-0.1, 5.0], [10.1, 5.0]])
        mask = in_square(points, 10.0)
        assert mask.tolist() == [True, False, False]

    def test_in_square_tolerance(self):
        points = np.array([[10.05, 5.0]])
        assert not in_square(points, 10.0)[0]
        assert in_square(points, 10.0, tol=0.1)[0]

    def test_corner_distance(self):
        points = np.array([[0.0, 0.0], [10.0, 10.0], [5.0, 5.0], [1.0, 10.0]])
        dist = corner_distance(points, 10.0)
        assert dist[0] == pytest.approx(0.0)
        assert dist[1] == pytest.approx(0.0)
        assert dist[2] == pytest.approx(10.0)
        assert dist[3] == pytest.approx(1.0)

    def test_box_distance_inside_zero(self):
        points = np.array([[2.0, 3.0]])
        assert manhattan_distance_to_box(points, 0, 0, 5, 5)[0] == pytest.approx(0.0)

    def test_box_distance_outside(self):
        points = np.array([[7.0, 8.0]])
        assert manhattan_distance_to_box(points, 0, 0, 5, 5)[0] == pytest.approx(2.0 + 3.0)
