"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_square():
    """A convenient side length used across geometry tests."""
    return 10.0


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running statistical test")
