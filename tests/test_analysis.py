"""Tests of the analysis toolkit (stats, empirical distances, scaling fits)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.empirical import (
    analytic_cell_probabilities,
    chi_square_statistic,
    histogram_density,
    ks_critical_value,
    ks_statistic,
    total_variation,
)
from repro.analysis.scaling import fit_affine_inverse, fit_power_law, r_squared
from repro.analysis.stats import (
    bootstrap_ci,
    empirical_quantiles,
    fraction_satisfying,
    geometric_mean,
)


class TestStats:
    def test_bootstrap_ci_contains_mean(self, rng):
        data = rng.normal(10.0, 1.0, size=200)
        low, high = bootstrap_ci(data, rng=rng)
        assert low < data.mean() < high
        assert high - low < 1.0

    def test_bootstrap_ci_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_ci([], rng=rng)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5, rng=rng)

    def test_bootstrap_deterministic_default(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(data) == bootstrap_ci(data)

    def test_quantiles(self):
        q = empirical_quantiles(range(101), qs=(0.5,))
        assert q[0.5] == pytest.approx(50.0)

    def test_quantiles_ignore_inf(self):
        q = empirical_quantiles([1.0, 2.0, 3.0, math.inf], qs=(0.5,))
        assert q[0.5] == pytest.approx(2.0)

    def test_fraction_satisfying(self):
        assert fraction_satisfying([1, 2, 3, 4], lambda v: v <= 2) == 0.5
        with pytest.raises(ValueError):
            fraction_satisfying([], lambda v: True)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestEmpiricalDistances:
    def test_histogram_density_integrates_to_one(self, rng):
        points = rng.uniform(0, 5, (1000, 2))
        density = histogram_density(points, 5.0, bins=4)
        cell_area = (5.0 / 4) ** 2
        assert density.sum() * cell_area == pytest.approx(1.0)

    def test_histogram_requires_points(self):
        with pytest.raises(ValueError):
            histogram_density(np.array([[10.0, 10.0]]) + 100, 5.0, 4)

    def test_analytic_cells_sum_to_one(self):
        cells = analytic_cell_probabilities(
            lambda x, y: np.full(np.broadcast(x, y).shape, 1.0 / 25.0), 5.0, bins=5
        )
        assert cells.sum() == pytest.approx(1.0)

    def test_tv_identical_zero(self):
        p = np.array([0.25, 0.25, 0.5])
        assert total_variation(p, p) == 0.0

    def test_tv_disjoint_one(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_tv_symmetry_and_range(self, rng):
        p = rng.uniform(0, 1, 10)
        q = rng.uniform(0, 1, 10)
        tv = total_variation(p, q)
        assert tv == pytest.approx(total_variation(q, p))
        assert 0 <= tv <= 1

    def test_tv_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation([1.0], [0.5, 0.5])

    def test_ks_uniform_sample(self, rng):
        sample = rng.uniform(0, 1, 5000)
        stat = ks_statistic(sample, lambda x: np.clip(x, 0, 1))
        assert stat < ks_critical_value(5000, alpha=1e-3)

    def test_ks_detects_wrong_cdf(self, rng):
        sample = rng.uniform(0, 1, 5000) ** 2  # not uniform
        stat = ks_statistic(sample, lambda x: np.clip(x, 0, 1))
        assert stat > ks_critical_value(5000, alpha=1e-3)

    def test_chi_square_uniform_ok(self, rng):
        counts = rng.multinomial(10_000, [0.25] * 4)
        stat, dof = chi_square_statistic(counts, [0.25] * 4)
        assert dof == 3
        assert stat < 20  # chi2(3) 99.99th pct ~ 21

    def test_chi_square_merges_small_bins(self):
        observed = np.array([1000.0, 1.0, 1.0, 1.0])
        probs = np.array([0.997, 0.001, 0.001, 0.001])
        _stat, dof = chi_square_statistic(observed, probs)
        assert dof == 1  # tiny bins merged


class TestScalingFits:
    def test_power_law_exact(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**1.7
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.7)
        assert fit.amplitude == pytest.approx(3.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_power_law_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])

    def test_affine_inverse_exact(self):
        x = np.array([0.5, 1.0, 2.0, 4.0])
        y = 7.0 + 3.0 / x
        fit = fit_affine_inverse(x, y)
        assert fit.constant == pytest.approx(7.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_affine_inverse_predict(self):
        fit = fit_affine_inverse([1.0, 2.0], [5.0, 4.0])
        assert fit.predict(1.0) == pytest.approx(5.0)

    def test_r_squared_bounds(self, rng):
        y = rng.normal(size=50)
        assert r_squared(y, y) == pytest.approx(1.0)
        assert r_squared(y, np.full(50, y.mean())) == pytest.approx(0.0)

    @given(
        exponent=st.floats(min_value=-2.0, max_value=2.0),
        amplitude=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=30)
    def test_power_law_recovers_parameters(self, exponent, amplitude):
        x = np.array([1.0, 3.0, 9.0, 27.0])
        fit = fit_power_law(x, amplitude * x**exponent)
        assert fit.exponent == pytest.approx(exponent, abs=1e-9)
        assert fit.amplitude == pytest.approx(amplitude, rel=1e-9)
