"""Statistical tests of the low-level samplers."""

import numpy as np
import pytest

from repro.geometry.sampling import (
    sample_beta22,
    sample_length_biased_pair,
    sample_uniform_disk,
    sample_uniform_square,
)


class TestUniformSquare:
    def test_shape_and_range(self, rng):
        points = sample_uniform_square(500, 7.0, rng)
        assert points.shape == (500, 2)
        assert points.min() >= 0.0
        assert points.max() <= 7.0

    def test_zero_samples(self, rng):
        assert sample_uniform_square(0, 7.0, rng).shape == (0, 2)

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_uniform_square(-1, 7.0, rng)

    def test_mean_near_center(self, rng):
        points = sample_uniform_square(20_000, 10.0, rng)
        assert np.allclose(points.mean(axis=0), [5.0, 5.0], atol=0.15)


class TestBeta22:
    def test_range(self, rng):
        values = sample_beta22(1000, 4.0, rng)
        assert values.min() >= 0.0
        assert values.max() <= 4.0

    def test_moments(self, rng):
        """Beta(2,2) scaled to [0, L]: mean L/2, variance L^2/20."""
        side = 10.0
        values = sample_beta22(100_000, side, rng)
        assert values.mean() == pytest.approx(side / 2, abs=0.05)
        assert values.var() == pytest.approx(side * side / 20.0, rel=0.05)


class TestLengthBiasedPair:
    def test_shape(self, rng):
        pairs = sample_length_biased_pair(300, 5.0, rng)
        assert pairs.shape == (300, 2)
        assert pairs.min() >= 0.0
        assert pairs.max() <= 5.0

    def test_mean_gap(self, rng):
        """E|a-b| under density ∝ |a-b| is L/2 (vs L/3 for uniform pairs)."""
        side = 6.0
        pairs = sample_length_biased_pair(100_000, side, rng)
        gap = np.abs(pairs[:, 0] - pairs[:, 1])
        assert gap.mean() == pytest.approx(side / 2.0, rel=0.02)

    def test_no_zero_gaps_dominate(self, rng):
        """The density vanishes at a == b: tiny gaps must be rare."""
        side = 1.0
        pairs = sample_length_biased_pair(50_000, side, rng)
        gap = np.abs(pairs[:, 0] - pairs[:, 1])
        # P(gap < 0.05) = integral of 2|d|(1-...)~ = about (0.05)^2 * 3 ~ 0.0075/noise
        assert np.mean(gap < 0.05) < 0.02

    def test_bad_args_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_length_biased_pair(-1, 5.0, rng)
        with pytest.raises(ValueError):
            sample_length_biased_pair(5, 0.0, rng)


class TestUniformDisk:
    def test_radius_bound(self, rng):
        points = sample_uniform_disk(2000, 3.0, rng)
        assert np.all(np.sqrt((points**2).sum(axis=1)) <= 3.0 + 1e-12)

    def test_mean_at_origin(self, rng):
        points = sample_uniform_disk(50_000, 2.0, rng)
        assert np.allclose(points.mean(axis=0), [0.0, 0.0], atol=0.03)

    def test_uniform_area_density(self, rng):
        """Half the area (r <= R/sqrt2) holds half the points."""
        points = sample_uniform_disk(50_000, 1.0, rng)
        r = np.sqrt((points**2).sum(axis=1))
        assert np.mean(r <= 1.0 / np.sqrt(2.0)) == pytest.approx(0.5, abs=0.01)
