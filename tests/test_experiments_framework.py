"""Tests of the experiment framework and registry (not the heavy runs)."""

import pytest

from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.experiments.registry import EXPERIMENT_MODULES, all_ids, get_spec, run_experiment


class TestScaleParams:
    def test_selects_quick(self):
        assert scale_params("quick", {"n": 1}, {"n": 2}) == {"n": 1}

    def test_selects_full(self):
        assert scale_params("full", {"n": 1}, {"n": 2}) == {"n": 2}

    def test_returns_copy(self):
        quick = {"n": 1}
        out = scale_params("quick", quick, {})
        out["n"] = 99
        assert quick["n"] == 1

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            scale_params("huge", {}, {})


class TestExperimentResult:
    def make(self, passed=True):
        return ExperimentResult(
            experiment_id="demo",
            title="Demo",
            paper_ref="Thm 0",
            headers=["a", "b"],
            rows=[[1, 2.5]],
            notes=["a note"],
            artifacts={"map": "###"},
            passed=passed,
        )

    def test_to_text_contains_everything(self):
        text = self.make().to_text()
        assert "demo" in text
        assert "Thm 0" in text
        assert "a note" in text
        assert "###" in text
        assert "PASS" in text

    def test_fail_verdict(self):
        assert "FAIL" in self.make(passed=False).to_text()

    def test_to_csv(self):
        csv = self.make().to_csv()
        assert csv.splitlines()[0] == "a,b"


class TestRegistry:
    def test_all_ids_stable(self):
        ids = all_ids()
        assert len(ids) == len(EXPERIMENT_MODULES)
        assert ids[0] == "fig1_spatial"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_spec("nonexistent")

    def test_all_specs_loadable(self):
        for experiment_id in all_ids():
            spec = get_spec(experiment_id)
            assert isinstance(spec, ExperimentSpec)
            assert spec.id == experiment_id
            assert spec.paper_ref
            assert spec.description

    def test_spec_id_mismatch_detected(self):
        def bad_runner(scale, seed):
            return ExperimentResult(
                experiment_id="other", title="", paper_ref="", headers=[], rows=[]
            )

        spec = ExperimentSpec(
            id="expected", title="", paper_ref="", description="", runner=bad_runner
        )
        with pytest.raises(RuntimeError):
            spec.run()


class TestLightExperimentsRun:
    """The cheap, deterministic experiments run end-to-end in tests."""

    @pytest.mark.parametrize("experiment_id", ["lemma15_suburb", "lemma6_rows"])
    def test_runs_and_passes(self, experiment_id):
        result = run_experiment(experiment_id, scale="quick", seed=0)
        assert result.passed
        assert result.rows
        assert result.to_text()
