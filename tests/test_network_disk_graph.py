"""Tests of disk-graph snapshots, cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.network.disk_graph import DiskGraph

SIDE = 10.0


def random_graph(rng, n=60, radius=1.5):
    positions = rng.uniform(0, SIDE, (n, 2))
    return DiskGraph(positions, radius, side=SIDE), positions


class TestEdges:
    def test_edges_match_brute_force(self, rng):
        graph, positions = random_graph(rng)
        dists = np.sqrt(((positions[:, None] - positions[None, :]) ** 2).sum(-1))
        expected = {
            (i, j)
            for i in range(graph.n)
            for j in range(i + 1, graph.n)
            if dists[i, j] <= graph.radius
        }
        got = {tuple(sorted(e)) for e in graph.edges.tolist()}
        assert got == expected

    def test_zero_radius(self, rng):
        graph, _ = random_graph(rng, radius=0.0)
        assert graph.n_edges == 0

    def test_negative_radius_rejected(self, rng):
        with pytest.raises(ValueError):
            DiskGraph(rng.uniform(0, 1, (5, 2)), -1.0, side=SIDE)

    def test_degrees_sum_twice_edges(self, rng):
        graph, _ = random_graph(rng)
        assert graph.degrees().sum() == 2 * graph.n_edges


class TestComponents:
    def test_against_networkx(self, rng):
        graph, _ = random_graph(rng, n=100, radius=1.0)
        nxg = graph.to_networkx()
        assert graph.n_components() == nx.number_connected_components(nxg)
        assert graph.is_connected() == nx.is_connected(nxg)
        largest = max(len(c) for c in nx.connected_components(nxg))
        assert graph.giant_component_fraction() == pytest.approx(largest / graph.n)

    def test_component_sizes_descending(self, rng):
        graph, _ = random_graph(rng, radius=0.8)
        sizes = graph.component_sizes()
        assert np.all(np.diff(sizes) <= 0)
        assert sizes.sum() == graph.n

    def test_full_radius_connected(self, rng):
        graph, _ = random_graph(rng, radius=2 * SIDE)
        assert graph.is_connected()
        assert graph.giant_component_fraction() == 1.0

    def test_isolated_mask(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [9.0, 9.0]])
        graph = DiskGraph(positions, 1.0, side=SIDE)
        assert graph.isolated_mask().tolist() == [False, False, True]

    def test_subgraph_connectivity(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 5.0], [6.0, 5.0]])
        graph = DiskGraph(positions, 1.2, side=SIDE)
        assert not graph.is_connected()
        assert graph.subgraph_is_connected(np.array([True, True, False, False]))
        assert graph.subgraph_is_connected(np.array([False, False, True, True]))
        assert not graph.subgraph_is_connected(np.array([True, False, True, False]))

    def test_subgraph_mask_validation(self, rng):
        graph, _ = random_graph(rng, n=10)
        with pytest.raises(ValueError):
            graph.subgraph_is_connected(np.ones(11, dtype=bool))

    def test_empty_and_singleton(self):
        empty = DiskGraph(np.empty((0, 2)), 1.0, side=SIDE)
        assert empty.n_components() == 0
        single = DiskGraph(np.array([[1.0, 1.0]]), 1.0, side=SIDE)
        assert single.is_connected()
        assert single.giant_component_fraction() == 1.0
