"""Adaptive sequential stopping: rule properties, prefix exactness, budget.

Property-tests the :class:`StoppingRule` (deterministic stop trial at a
fixed seed, never below the minimum, monotone in the CI target) and the
scheduler's core adaptive guarantees: adaptive results are **bit-exact
prefixes** of the fixed-budget run, identical across engines and ``jobs``,
and the fixed-budget path stays byte-identical to the pre-adaptive
scheduler.  The trial-budget reallocation (TOPSIS) and the masked-mean
behaviour under adaptive stopping round out the suite.
"""

import math

import numpy as np
import pytest

from repro.simulation.config import standard_config
from repro.simulation.parallel import _child_states, _child_states_range
from repro.simulation.results import summarize
from repro.simulation.runner import run_trials
from repro.simulation.sweep import (
    StoppingRule,
    SweepPlan,
    SweepPoint,
    _reallocation_scores,
    _topsis,
    run_sweep,
)

BASE = standard_config(140, radius_factor=1.1, max_steps=600, seed=5)


def fingerprint(results):
    return [
        (
            r.flooding_time,
            r.completed,
            r.n_steps,
            r.source,
            tuple(np.asarray(r.informed_history).tolist()),
        )
        for r in results
    ]


class TestRuleValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StoppingRule(ci_width=0.0)
        with pytest.raises(ValueError):
            StoppingRule(ci_width=-0.1)
        with pytest.raises(ValueError):
            StoppingRule(batch=0)
        with pytest.raises(ValueError):
            StoppingRule(min_trials=0)
        with pytest.raises(ValueError):
            StoppingRule(max_trials=0)
        with pytest.raises(ValueError):
            StoppingRule(min_trials=5, max_trials=3)
        with pytest.raises(ValueError):
            StoppingRule(confidence=1.0)

    def test_point_rejects_non_rule(self):
        with pytest.raises(TypeError):
            SweepPoint(BASE, 2, stopping="adaptive")

    def test_run_sweep_rejects_non_rule(self):
        with pytest.raises(TypeError):
            run_sweep([SweepPoint(BASE, 2)], stopping="adaptive")

    def test_bounds_default_to_fixed_budget(self):
        rule = StoppingRule()
        assert rule.bounds(6) == (2, 6)
        assert rule.bounds(1) == (1, 1)  # min(2, n) never exceeds the budget
        assert StoppingRule(min_trials=3).bounds(6) == (3, 6)
        assert StoppingRule(max_trials=4).bounds(6) == (2, 4)
        # Explicit bounds beyond the budget are honored (opt-in growth).
        assert StoppingRule(max_trials=50).bounds(6) == (2, 50)


class TestShouldStop:
    def test_never_below_minimum(self):
        rule = StoppingRule(ci_width=1e6)  # absurdly loose: stop ASAP
        assert not rule.should_stop(summarize([5.0]), lo=2, hi=10)
        assert rule.should_stop(summarize([5.0, 5.0]), lo=2, hi=10)

    def test_always_stops_at_cap(self):
        rule = StoppingRule(ci_width=1e-12)  # unreachable target
        values = [3.0, 9.0, 4.0, 8.0, 5.0]
        assert rule.should_stop(summarize(values), lo=2, hi=5)

    def test_keeps_sampling_without_two_finite_trials(self):
        rule = StoppingRule(ci_width=1e6)
        inf = float("inf")
        assert not rule.should_stop(summarize([inf, inf]), lo=2, hi=10)
        assert not rule.should_stop(summarize([5.0, inf]), lo=2, hi=10)

    def test_relative_width_criterion(self):
        # 0.95 CI half-width of [4, 6] is ~1.96 -> relative ~0.39.
        summary = summarize([4.0, 6.0])
        half = (summary.ci_high - summary.ci_low) / 2.0
        relative = half / summary.mean
        assert StoppingRule(ci_width=relative * 1.01).should_stop(summary, 2, 10)
        assert not StoppingRule(ci_width=relative * 0.99).should_stop(summary, 2, 10)


class TestTrialsUntilStop:
    """The rule as a pure function of a value stream — the property surface."""

    STREAMS = [
        [5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0],       # zero variance
        [4.0, 6.0, 5.0, 5.0, 4.5, 5.5, 5.0, 5.0],       # shrinking CI
        [1.0, 9.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0],        # high variance
        [float("inf"), 5.0, 6.0, 5.0, 4.0, 5.0, 6.0, 5.0],  # a timeout
    ]

    @pytest.mark.parametrize("values", STREAMS)
    def test_deterministic(self, values):
        rule = StoppingRule(ci_width=0.25, batch=1)
        assert rule.trials_until_stop(values) == rule.trials_until_stop(values)

    @pytest.mark.parametrize("values", STREAMS)
    def test_never_below_minimum_never_above_cap(self, values):
        for min_trials in (1, 3, 5):
            rule = StoppingRule(ci_width=0.25, batch=1, min_trials=min_trials)
            stop = rule.trials_until_stop(values)
            assert min_trials <= stop <= len(values)

    @pytest.mark.parametrize("values", STREAMS)
    def test_monotone_in_target_width(self, values):
        """A looser CI target never stops later."""
        stops = [
            StoppingRule(ci_width=w, batch=1).trials_until_stop(values)
            for w in (0.05, 0.1, 0.25, 0.5, 1.0)
        ]
        assert stops == sorted(stops, reverse=True)

    def test_batch_granularity(self):
        # With batch=3 the stop count lands on min + k*batch (or the cap).
        values = [4.0, 6.0, 5.0, 5.0, 4.5, 5.5, 5.0, 5.0, 5.0]
        rule = StoppingRule(ci_width=0.2, batch=3, min_trials=2)
        stop = rule.trials_until_stop(values)
        assert stop == 2 or (stop - 2) % 3 == 0 or stop == len(values)

    def test_needs_enough_values(self):
        with pytest.raises(ValueError, match="at least"):
            StoppingRule().trials_until_stop([5.0], n_trials=4)


class TestSeedSchedulePrefix:
    """The construction that makes resume/adaptive bit-exact."""

    @pytest.mark.parametrize("start", [0, 1, 3, 5])
    def test_ranged_states_are_suffixes_of_the_full_schedule(self, start):
        full = _child_states(BASE, 8)
        assert _child_states_range(BASE, start, 8) == full[start:]

    def test_schedule_independent_of_total(self):
        assert _child_states(BASE, 3) == _child_states(BASE, 8)[:3]


class TestAdaptiveIsAPrefix:
    """Adaptive results == a prefix of the fixed-budget run, always."""

    @pytest.mark.parametrize("engine", ["scalar", "batch", "auto"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_prefix_across_engines_and_jobs(self, engine, jobs):
        rule = StoppingRule(ci_width=0.5, batch=1)
        (point,) = run_sweep(
            [SweepPoint(BASE, 6)], engine=engine, jobs=jobs, stopping=rule
        )
        fixed = run_trials(BASE.with_options(engine=engine), 6)
        assert point.n_trials <= 6
        assert fingerprint(point.results) == fingerprint(fixed)[: point.n_trials]
        assert point.summary.n_trials == point.n_trials

    def test_stop_trial_deterministic_across_engines(self):
        rule = StoppingRule(ci_width=0.5, batch=1)
        counts = {
            engine: run_sweep([SweepPoint(BASE, 6)], engine=engine, stopping=rule)[0].n_trials
            for engine in ("scalar", "batch", "auto")
        }
        assert len(set(counts.values())) == 1, counts

    def test_per_point_rule_overrides_sweep_rule(self):
        # Zero-variance points satisfy any ci_width, so force the cap
        # through min_trials instead.
        tight = StoppingRule(ci_width=1e-12, batch=1, min_trials=5)
        loose = StoppingRule(ci_width=1e6, batch=1)  # stops at the minimum
        plan = SweepPlan()
        plan.add(BASE, 5, key="tight", stopping=tight)
        plan.add(BASE.with_options(seed=11), 5, key="inherits")
        tight_point, loose_point = run_sweep(plan, stopping=loose)
        assert tight_point.n_trials == 5
        assert loose_point.n_trials == 2

    def test_run_trials_stopping_delegates(self):
        rule = StoppingRule(ci_width=0.5, batch=1)
        adaptive = run_trials(BASE, 6, stopping=rule)
        fixed = run_trials(BASE, 6)
        assert fingerprint(adaptive) == fingerprint(fixed)[: len(adaptive)]

    def test_fixed_budget_mode_is_unchanged(self):
        """No rule anywhere: the scheduler takes the single-pass path and
        reproduces the exact pre-adaptive tables (the PR 5 parity gate)."""
        plan = SweepPlan()
        plan.add(BASE, 3, key="a")
        plan.add(BASE.with_options(seed=11), 4, key="b")
        for point, source in zip(run_sweep(plan), plan):
            assert fingerprint(point.results) == fingerprint(
                run_trials(source.config, source.n_trials)
            )
            assert point.n_trials == source.n_trials

    def test_adaptive_saves_trials_when_converged(self):
        # Zero-variance flooding times at this scale: the rule fires at
        # the 2-trial minimum instead of burning the full budget.
        rule = StoppingRule(ci_width=0.5, batch=1)
        (point,) = run_sweep([SweepPoint(BASE, 6)], stopping=rule)
        assert point.n_trials < 6


class TestTrialBudget:
    def test_minimums_always_funded(self):
        # Budget below the summed minimums: every point still reaches its
        # floor (a stopping rule can't be evaluated below it).
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=2)
        plan = SweepPlan()
        plan.add(BASE, 5, key="a")
        plan.add(BASE.with_options(seed=11), 5, key="b")
        points = run_sweep(plan, stopping=rule, trial_budget=1)
        assert [p.n_trials for p in points] == [2, 2]

    def test_budget_caps_total(self):
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=2)
        plan = SweepPlan()
        plan.add(BASE, 10, key="a")
        plan.add(BASE.with_options(seed=11), 10, key="b")
        points = run_sweep(plan, stopping=rule, trial_budget=7)
        assert sum(p.n_trials for p in points) == 7

    def test_budget_allocation_deterministic(self):
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=2)
        plan = SweepPlan()
        for k, seed in enumerate((5, 11, 17)):
            plan.add(BASE.with_options(seed=seed), 8, key=k)
        a = run_sweep(plan, stopping=rule, trial_budget=15)
        b = run_sweep(plan, stopping=rule, trial_budget=15)
        assert [p.n_trials for p in a] == [p.n_trials for p in b]
        assert [fingerprint(p.results) for p in a] == [fingerprint(p.results) for p in b]

    def test_budget_points_are_prefixes(self):
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=2)
        plan = SweepPlan()
        plan.add(BASE, 8, key="a")
        plan.add(BASE.with_options(seed=11), 8, key="b")
        for point, source in zip(run_sweep(plan, stopping=rule, trial_budget=9), plan):
            fixed = run_trials(source.config, 8)
            assert fingerprint(point.results) == fingerprint(fixed)[: point.n_trials]

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            run_sweep([SweepPoint(BASE, 2)], trial_budget=0)


class TestTopsis:
    def test_scores_in_unit_interval(self):
        matrix = [[0.9, 0.5, 10.0], [0.1, 0.0, 100.0], [0.5, 0.3, 50.0]]
        scores = _topsis(np.asarray(matrix), benefit=(True, True, False))
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0)

    def test_dominating_candidate_wins(self):
        # Row 0 is better on every criterion (high need, high deficit,
        # low cost) -> highest closeness score.
        matrix = [[1.0, 1.0, 1.0], [0.2, 0.1, 50.0], [0.5, 0.5, 25.0]]
        scores = _topsis(np.asarray(matrix), benefit=(True, True, False))
        assert scores[0] == scores.max()
        assert scores[1] == scores.min()

    def test_identical_candidates_tie(self):
        scores = _topsis(np.asarray([[0.5, 0.5, 5.0]] * 3), benefit=(True, True, False))
        assert np.allclose(scores, scores[0])

    def test_reallocation_prefers_uncertain_groups(self):
        flat = run_trials(BASE, 4)  # zero-variance flooding times
        noisy = list(flat)
        spread = run_trials(BASE.with_options(seed=11), 4)
        groups = [
            {"results": flat},
            {"results": spread},
        ]
        scores = _reallocation_scores(groups)
        flat_summary = summarize(r.flooding_time for r in flat)
        spread_summary = summarize(r.flooding_time for r in spread)
        if flat_summary.std < spread_summary.std:
            assert scores[1] >= scores[0]

    def test_no_trusted_ci_means_maximal_need(self):
        hopeless = BASE.with_options(max_steps=1)
        nothing_finished = run_trials(hopeless, 2)
        converged = run_trials(BASE, 4)
        scores = _reallocation_scores(
            [{"results": nothing_finished}, {"results": converged}]
        )
        assert scores[0] > scores[1]


class TestMaskedMeanUnderAdaptive:
    """Satellite: no NaN leakage into tables in low-completion regimes."""

    def test_zero_finite_point_stays_masked(self):
        hopeless = BASE.with_options(max_steps=1)
        rule = StoppingRule(ci_width=0.5, batch=1)
        (point,) = run_sweep([SweepPoint(hopeless, 4)], stopping=rule)
        # Infinite values never produce a trusted CI: the rule runs the
        # point to its cap rather than stopping on garbage.
        assert point.n_trials == 4
        assert point.summary.n_finite == 0
        assert math.isnan(point.masked_mean())
        assert point.completion_label == "0/4"
        assert point.finite_fraction == 0.0

    def test_completion_label_reflects_adaptive_count(self):
        rule = StoppingRule(ci_width=0.5, batch=1)
        (point,) = run_sweep([SweepPoint(BASE, 6)], stopping=rule)
        assert point.completion_label == f"{point.summary.n_finite}/{point.n_trials}"

    def test_rendered_table_has_no_nan(self):
        from repro.viz.tables import format_table

        hopeless = BASE.with_options(max_steps=1)
        rule = StoppingRule(ci_width=0.5, batch=1)
        points = run_sweep(
            [SweepPoint(BASE, 3, "ok"), SweepPoint(hopeless, 3, "masked")],
            stopping=rule,
        )
        rows = []
        for point in points:
            mean = point.masked_mean()
            rows.append(
                [
                    point.key,
                    round(mean, 1) if math.isfinite(mean) else "masked",
                    point.completion_label,
                ]
            )
        text = format_table(["key", "mean", "completed"], rows)
        assert "nan" not in text.lower()
        assert "masked" in text


class TestExperimentAdaptiveArm:
    """The bench acceptance path: unchanged verdict, fewer trials."""

    def test_thm3_radius_adaptive_verdict_and_note(self):
        from repro.experiments.registry import run_experiment

        fixed = run_experiment("thm3_radius", scale="quick", seed=0)
        adaptive = run_experiment(
            "thm3_radius", scale="quick", seed=0,
            stopping=StoppingRule(ci_width=0.15, min_trials=2),
        )
        assert adaptive.passed == fixed.passed
        note = next(n for n in adaptive.notes if "adaptive stopping" in n)
        executed, budget = (
            int(note.split()[2]), int(note.split()[5])
        )
        assert executed <= budget
        # The fixed run carries no adaptive note.
        assert not any("adaptive stopping" in n for n in fixed.notes)

    def test_non_scheduler_experiment_refuses_stopping(self):
        from repro.experiments.registry import run_experiment

        with pytest.raises(ValueError, match="adaptive|stopping"):
            run_experiment("lemma6_rows", stopping=StoppingRule())

    def test_run_all_threads_stopping_only_where_supported(self):
        from repro.experiments.registry import get_spec

        assert get_spec("thm3_radius").accepts_stopping
        assert not get_spec("lemma6_rows").accepts_stopping
