"""Tests of the unicast journey metrics."""

import numpy as np
import pytest

from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.network.evolving import temporal_bfs
from repro.network.journeys import (
    delay_statistics,
    delivery_delay_matrix,
    temporal_diameter,
    temporal_eccentricities,
)
from repro.network.snapshots import SnapshotSeries

SIDE = 15.0


@pytest.fixture(scope="module")
def series():
    model = ManhattanRandomWaypoint(60, SIDE, 0.4, rng=np.random.default_rng(0))
    return SnapshotSeries.record(model, 40, radius=2.2)


class TestDelayMatrix:
    def test_matches_temporal_bfs(self, series):
        matrix = delivery_delay_matrix(series, [0, 5])
        assert np.allclose(matrix[0], temporal_bfs(series, 0))
        assert np.allclose(matrix[1], temporal_bfs(series, 5))

    def test_diagonal_zero(self, series):
        matrix = delivery_delay_matrix(series, [3])
        assert matrix[0, 3] == 0.0


class TestEccentricities:
    def test_eccentricity_is_flooding_time(self, series):
        ecc = temporal_eccentricities(series, sources=[7])
        times = temporal_bfs(series, 7)
        assert ecc[0] == times.max()

    def test_default_all_sources(self, series):
        ecc = temporal_eccentricities(series)
        assert ecc.shape == (series.n,)

    def test_diameter_is_max_eccentricity(self, series):
        sources = [0, 1, 2, 3]
        assert temporal_diameter(series, sources) == temporal_eccentricities(
            series, sources
        ).max()


class TestDelayStatistics:
    def test_structure(self, series, rng):
        stats = delay_statistics(series, n_pairs=30, rng=rng)
        assert 0.0 <= stats["delivered_fraction"] <= 1.0
        if stats["delays"].size:
            assert stats["median"] <= stats["p95"]
            assert np.all(stats["delays"] >= 0)

    def test_self_pairs_have_zero_delay(self, series):
        class FixedRng:
            def integers(self, lo, hi, size):
                return np.zeros(size, dtype=int)  # all pairs are (0, 0)

        stats = delay_statistics(series, n_pairs=5, rng=FixedRng())
        assert stats["delivered_fraction"] == 1.0
        assert stats["mean"] == 0.0

    def test_validation(self, series, rng):
        with pytest.raises(ValueError):
            delay_statistics(series, n_pairs=0, rng=rng)
