"""CLI report command and miscellaneous coverage."""

import math

import numpy as np
import pytest

from repro.cli import main
from repro.geometry.neighbors import GridNeighborEngine
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.protocols.flooding import FloodingProtocol
from repro.simulation.engine import Simulation
from repro.simulation.results import FloodingResult


class TestCliReport:
    def test_report_command(self, capsys, tmp_path):
        out_path = tmp_path / "report.md"
        code = main(
            ["report", "--out", str(out_path), "--only", "lemma15_suburb"]
        )
        capsys.readouterr()
        assert code == 0
        content = out_path.read_text()
        assert "lemma15_suburb" in content
        assert "PASS" in content


class TestEngineDt:
    def test_fractional_dt_advances_time(self):
        model = ManhattanRandomWaypoint(50, 10.0, 0.5, rng=np.random.default_rng(0))
        protocol = FloodingProtocol(50, 10.0, 2.0, 0)
        simulation = Simulation(model, protocol)
        simulation.run(4, dt=0.5)
        assert model.time == pytest.approx(2.0)


class TestResultEdgeCases:
    def make_result(self, history, n_agents):
        return FloodingResult(
            flooding_time=math.inf,
            completed=False,
            stalled=False,
            n_steps=len(history) - 1,
            informed_history=np.asarray(history),
            source=0,
            final_coverage=history[-1] / n_agents,
            extras={"n_agents": n_agents},
        )

    def test_time_to_coverage_inf_when_unreached(self):
        result = self.make_result([1, 2, 3], n_agents=10)
        assert math.isinf(result.time_to_coverage(0.9))
        assert result.time_to_coverage(0.2) == 1.0

    def test_coverage_requires_n_agents(self):
        result = self.make_result([1, 2], n_agents=10)
        result.extras = {}
        with pytest.raises(KeyError):
            result.coverage_at(0)
        with pytest.raises(KeyError):
            result.time_to_coverage(0.5)


class TestGridEngineCellSize:
    def test_explicit_cell_size_still_exact(self, rng):
        sources = rng.uniform(0, 10, (60, 2))
        queries = rng.uniform(0, 10, (40, 2))
        coarse = GridNeighborEngine(10.0, cell_size=5.0)
        fine = GridNeighborEngine(10.0, cell_size=0.25)
        for radius in (0.4, 2.0):
            assert np.array_equal(
                coarse.any_within(sources, queries, radius),
                fine.any_within(sources, queries, radius),
            )
