"""Tests of the ASCII flooding animation and the parallel trial runner."""

import numpy as np
import pytest

from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.protocols.flooding import FloodingProtocol
from repro.simulation.config import FloodingConfig
from repro.simulation.parallel import run_trials_parallel, sweep_parallel
from repro.simulation.runner import run_trials, sweep
from repro.viz.animation import record_flooding_frames, render_agents_frame

SIDE = 15.0
QUICK = dict(n=200, side=SIDE, radius=2.5, speed=0.5, max_steps=400, seed=5)


class TestRenderAgentsFrame:
    def test_symbols_present(self, rng):
        positions = rng.uniform(0, SIDE, (50, 2))
        informed = np.zeros(50, dtype=bool)
        informed[:10] = True
        frame = render_agents_frame(positions, informed, SIDE, width=10)
        assert "#" in frame
        assert "o" in frame
        assert "10/50" in frame

    def test_frame_dimensions(self, rng):
        positions = rng.uniform(0, SIDE, (20, 2))
        frame = render_agents_frame(
            positions, np.zeros(20, dtype=bool), SIDE, width=12, legend=False
        )
        lines = frame.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 12 for line in lines)

    def test_informed_dominates_cell(self):
        positions = np.array([[1.0, 1.0], [1.1, 1.1]])
        informed = np.array([True, False])
        frame = render_agents_frame(positions, informed, SIDE, width=5, legend=False)
        assert "#" in frame
        assert "o" not in frame

    def test_validation(self, rng):
        positions = rng.uniform(0, SIDE, (5, 2))
        with pytest.raises(ValueError):
            render_agents_frame(positions, np.zeros(4, dtype=bool), SIDE)
        with pytest.raises(ValueError):
            render_agents_frame(positions, np.zeros(5, dtype=bool), SIDE, width=1)


class TestRecordFloodingFrames:
    def test_captures_requested_steps(self):
        model = ManhattanRandomWaypoint(100, SIDE, 0.5, rng=np.random.default_rng(0))
        protocol = FloodingProtocol(100, SIDE, 2.0, 0)
        frames = record_flooding_frames(model, protocol, at_steps=[0, 3, 6], width=10)
        assert sorted(frames) == [0, 3, 6]
        assert all(isinstance(f, str) for f in frames.values())

    def test_coverage_grows_across_frames(self):
        model = ManhattanRandomWaypoint(150, SIDE, 0.5, rng=np.random.default_rng(1))
        protocol = FloodingProtocol(150, SIDE, 2.5, 0)
        record_flooding_frames(model, protocol, at_steps=[8], width=10)
        assert protocol.informed_count > 1

    def test_rejects_negative_steps(self):
        model = ManhattanRandomWaypoint(10, SIDE, 0.5, rng=np.random.default_rng(2))
        protocol = FloodingProtocol(10, SIDE, 2.0, 0)
        with pytest.raises(ValueError):
            record_flooding_frames(model, protocol, at_steps=[-1])


class TestParallelRunner:
    def test_matches_serial_exactly(self):
        config = FloodingConfig(**QUICK)
        serial = run_trials(config, 3)
        parallel = run_trials_parallel(config, 3, max_workers=2)
        assert [r.flooding_time for r in serial] == [r.flooding_time for r in parallel]
        assert [r.source for r in serial] == [r.source for r in parallel]

    def test_single_worker_path(self):
        config = FloodingConfig(**QUICK)
        results = run_trials_parallel(config, 2, max_workers=1)
        assert len(results) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            run_trials_parallel(FloodingConfig(**QUICK), 0)

    def test_sweep_matches_serial(self):
        config = FloodingConfig(**QUICK)
        serial = sweep(config, "radius", [2.0, 3.0], n_trials=2)
        parallel = sweep_parallel(config, "radius", [2.0, 3.0], n_trials=2, max_workers=2)
        for (v1, s1, r1), (v2, s2, r2) in zip(serial, parallel):
            assert v1 == v2
            assert s1.mean == s2.mean
            assert [a.flooding_time for a in r1] == [a.flooding_time for a in r2]
