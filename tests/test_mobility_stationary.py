"""Tests of the perfect-simulation samplers (the heart of the reproduction).

The two independent constructions (Palm trip sampler and closed-form
sampler) must each match Theorems 1-2 and must match each other.
"""

import numpy as np
import pytest

from repro.analysis.empirical import ks_critical_value, ks_statistic
from repro.analysis.validation import (
    destination_cross_errors,
    destination_quadrant_errors,
    spatial_distribution_tv,
)
from repro.geometry.points import in_square
from repro.mobility.distributions import spatial_marginal_cdf
from repro.mobility.stationary import (
    ClosedFormStationarySampler,
    KinematicState,
    PalmStationarySampler,
    sample_destination_given_position,
    sample_stationary_positions,
)

SIDE = 10.0
N = 40_000


@pytest.fixture(params=["palm", "closed"])
def sampler(request):
    if request.param == "palm":
        return PalmStationarySampler(SIDE)
    return ClosedFormStationarySampler(SIDE)


class TestKinematicState:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            KinematicState(
                np.zeros((3, 2)), np.zeros((4, 2)), np.zeros((3, 2)), np.zeros(3, dtype=bool)
            )
        with pytest.raises(ValueError):
            KinematicState(
                np.zeros((3, 2)), np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(4, dtype=bool)
            )

    def test_copy_is_deep(self, rng):
        state = PalmStationarySampler(SIDE).sample(10, rng)
        clone = state.copy()
        clone.positions[0] = [99.0, 99.0]
        assert state.positions[0, 0] != 99.0


class TestSamplerValidity:
    def test_state_in_square(self, sampler, rng):
        state = sampler.sample(5000, rng)
        assert in_square(state.positions, SIDE, tol=1e-9).all()
        assert in_square(state.destinations, SIDE, tol=1e-9).all()
        assert in_square(state.targets, SIDE, tol=1e-9).all()

    def test_target_consistency(self, sampler, rng):
        """Second-leg targets equal destinations; first-leg targets share a
        coordinate with both position and destination (Manhattan corner)."""
        state = sampler.sample(5000, rng)
        second = state.on_second_leg
        assert np.allclose(state.targets[second], state.destinations[second])
        first = ~second
        corner = state.targets[first]
        pos = state.positions[first]
        dest = state.destinations[first]
        shares_pos = np.isclose(corner[:, 0], pos[:, 0]) | np.isclose(corner[:, 1], pos[:, 1])
        shares_dest = np.isclose(corner[:, 0], dest[:, 0]) | np.isclose(corner[:, 1], dest[:, 1])
        assert shares_pos.all()
        assert shares_dest.all()

    def test_position_on_current_leg(self, sampler, rng):
        """The position lies on the axis-aligned segment toward the target."""
        state = sampler.sample(5000, rng)
        delta = state.targets - state.positions
        aligned = np.isclose(delta[:, 0], 0.0, atol=1e-9) | np.isclose(
            delta[:, 1], 0.0, atol=1e-9
        )
        assert aligned.all()

    def test_second_leg_fraction_is_half(self, sampler, rng):
        """Half the stationary mass is on the second leg (== the cross atoms)."""
        state = sampler.sample(N, rng)
        assert np.mean(state.on_second_leg) == pytest.approx(0.5, abs=0.01)

    def test_invalid_n(self, sampler, rng):
        with pytest.raises(ValueError):
            sampler.sample(0, rng)


class TestAgainstTheorem1:
    def test_tv_distance_small(self, sampler, rng):
        state = sampler.sample(N, rng)
        tv = spatial_distribution_tv(state.positions, SIDE, bins=10)
        # Noise floor for 40k samples on 100 bins is ~0.02.
        assert tv < 0.05

    def test_marginal_ks(self, sampler, rng):
        state = sampler.sample(N, rng)
        for axis in (0, 1):
            stat = ks_statistic(
                state.positions[:, axis], lambda x: spatial_marginal_cdf(x, SIDE)
            )
            assert stat < ks_critical_value(N, alpha=1e-4)

    def test_direct_position_sampler(self, rng):
        positions = sample_stationary_positions(N, SIDE, rng)
        tv = spatial_distribution_tv(positions, SIDE, bins=10)
        assert tv < 0.05


class TestSamplersAgree:
    def test_cross_sampler_agreement(self, rng):
        """Palm and closed-form samplers produce the same position law."""
        palm = PalmStationarySampler(SIDE).sample(N, rng).positions
        closed = ClosedFormStationarySampler(SIDE).sample(N, rng).positions
        bins = 8
        h_palm, _, _ = np.histogram2d(palm[:, 0], palm[:, 1], bins=bins, range=[[0, SIDE]] * 2)
        h_closed, _, _ = np.histogram2d(
            closed[:, 0], closed[:, 1], bins=bins, range=[[0, SIDE]] * 2
        )
        p = h_palm.ravel() / h_palm.sum()
        q = h_closed.ravel() / h_closed.sum()
        assert 0.5 * np.abs(p - q).sum() < 0.03

    def test_second_leg_destination_on_cross(self, rng):
        """Palm second-leg destinations share a coordinate with the position
        (they sit on the cross — the bridge between the two constructions)."""
        state = PalmStationarySampler(SIDE).sample(10_000, rng)
        second = state.on_second_leg
        pos = state.positions[second]
        dest = state.destinations[second]
        on_cross = np.isclose(pos[:, 0], dest[:, 0]) | np.isclose(pos[:, 1], dest[:, 1])
        assert on_cross.all()


class TestDestinationConditional:
    def test_against_theorem2_at_position(self, rng):
        position = np.array([SIDE / 3, SIDE / 4])
        positions = np.tile(position, (N, 1))
        destinations, on_cross = sample_destination_given_position(positions, SIDE, rng)
        quad = destination_quadrant_errors(position, destinations, SIDE)
        cross = destination_cross_errors(position, destinations, SIDE)
        assert quad["max_error"] < 4.0 / np.sqrt(N)
        assert cross["max_error"] < 4.0 / np.sqrt(N)
        assert cross["total_empirical"] == pytest.approx(0.5, abs=0.01)
        assert np.mean(on_cross) == pytest.approx(0.5, abs=0.01)

    def test_destinations_in_square(self, rng):
        positions = sample_stationary_positions(2000, SIDE, rng)
        destinations, _ = sample_destination_given_position(positions, SIDE, rng)
        assert in_square(destinations, SIDE, tol=1e-9).all()

    def test_cross_destinations_beyond_position(self, rng):
        """On-cross destinations lie strictly along one axis of the position."""
        positions = sample_stationary_positions(5000, SIDE, rng)
        destinations, on_cross = sample_destination_given_position(positions, SIDE, rng)
        pos = positions[on_cross]
        dest = destinations[on_cross]
        aligned = np.isclose(pos[:, 0], dest[:, 0]) | np.isclose(pos[:, 1], dest[:, 1])
        assert aligned.all()
