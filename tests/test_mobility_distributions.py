"""Tests of the closed-form distributions (Theorems 1-2, Eqs. 4-5, Obs. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.distributions import (
    cell_mass,
    cross_probability,
    cross_probability_total,
    destination_pdf,
    mean_trip_length,
    quadrant_masses,
    region_mass,
    spatial_marginal_cdf,
    spatial_marginal_pdf,
    spatial_pdf,
    spatial_pdf_max,
    spatial_pdf_min,
)

SIDE = 10.0
interior = st.floats(min_value=0.5, max_value=9.5, allow_nan=False)


class TestSpatialPdf:
    def test_nonnegative_inside(self, rng):
        x = rng.uniform(0, SIDE, 200)
        y = rng.uniform(0, SIDE, 200)
        assert np.all(spatial_pdf(x, y, SIDE) >= 0)

    def test_zero_outside(self):
        assert spatial_pdf(-1.0, 5.0, SIDE) == 0.0
        assert spatial_pdf(5.0, SIDE + 1.0, SIDE) == 0.0

    def test_zero_at_corners(self):
        for corner in [(0, 0), (0, SIDE), (SIDE, 0), (SIDE, SIDE)]:
            assert spatial_pdf(*corner, SIDE) == pytest.approx(0.0)

    def test_max_at_center(self):
        assert spatial_pdf(SIDE / 2, SIDE / 2, SIDE) == pytest.approx(spatial_pdf_max(SIDE))
        assert spatial_pdf_max(SIDE) == pytest.approx(1.5 / SIDE**2)
        assert spatial_pdf_min(SIDE) == 0.0

    def test_integrates_to_one(self):
        grid = np.linspace(0, SIDE, 401)
        centers = 0.5 * (grid[:-1] + grid[1:])
        xg, yg = np.meshgrid(centers, centers, indexing="ij")
        h = grid[1] - grid[0]
        total = np.sum(spatial_pdf(xg, yg, SIDE)) * h * h
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_symmetry(self):
        """f is symmetric under x<->y and under reflection x -> L - x."""
        assert spatial_pdf(2.0, 7.0, SIDE) == pytest.approx(spatial_pdf(7.0, 2.0, SIDE))
        assert spatial_pdf(2.0, 7.0, SIDE) == pytest.approx(spatial_pdf(8.0, 7.0, SIDE))

    def test_paper_form_equivalence(self):
        """3/L^3 (x+y) - 3/L^4 (x^2+y^2) == 3/L^4 (x(L-x) + y(L-y))."""
        x, y = 3.3, 6.1
        paper = 3.0 / SIDE**3 * (x + y) - 3.0 / SIDE**4 * (x * x + y * y)
        assert spatial_pdf(x, y, SIDE) == pytest.approx(paper)


class TestMarginal:
    def test_marginal_integrates_to_one(self):
        x = np.linspace(0, SIDE, 100_001)
        total = np.trapezoid(spatial_marginal_pdf(x, SIDE), x)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_marginal_from_joint(self):
        """f_X(x) equals the numeric y-integral of the joint pdf."""
        y = np.linspace(0, SIDE, 20_001)
        for x in (1.0, 4.2, 8.8):
            numeric = np.trapezoid(spatial_pdf(x, y, SIDE), y)
            assert spatial_marginal_pdf(x, SIDE) == pytest.approx(numeric, rel=1e-6)

    def test_cdf_matches_pdf(self):
        xs = np.linspace(0.01, SIDE, 25)
        grid = np.linspace(0, SIDE, 50_001)
        pdf = spatial_marginal_pdf(grid, SIDE)
        for x in xs:
            numeric = np.trapezoid(pdf[grid <= x], grid[grid <= x])
            assert spatial_marginal_cdf(x, SIDE) == pytest.approx(numeric, abs=1e-4)

    def test_cdf_endpoints(self):
        assert spatial_marginal_cdf(0.0, SIDE) == pytest.approx(0.0)
        assert spatial_marginal_cdf(SIDE, SIDE) == pytest.approx(1.0)


class TestCellMass:
    def test_observation5_matches_numeric_integral(self):
        """Obs. 5's closed form equals numeric integration of Thm 1's pdf."""
        ell = 1.7
        for x0, y0 in [(0.0, 0.0), (2.0, 5.0), (SIDE - ell, SIDE - ell)]:
            grid = np.linspace(0, ell, 201)
            centers = 0.5 * (grid[:-1] + grid[1:])
            xg, yg = np.meshgrid(x0 + centers, y0 + centers, indexing="ij")
            h = grid[1] - grid[0]
            numeric = float(np.sum(spatial_pdf(xg, yg, SIDE)) * h * h)
            assert cell_mass(x0, y0, ell, SIDE) == pytest.approx(numeric, rel=1e-4)

    def test_all_cells_sum_to_one(self):
        m = 8
        ell = SIDE / m
        idx = np.arange(m) * ell
        masses = cell_mass(idx[:, None], idx[None, :], ell, SIDE)
        assert masses.sum() == pytest.approx(1.0, abs=1e-12)

    def test_observation5_lower_bound(self):
        """Obs. 5: every cell mass >= l^3 (3L - 2l) / L^4."""
        ell = 1.25
        bound = ell**3 * (3 * SIDE - 2 * ell) / SIDE**4
        idx = np.arange(8) * ell
        masses = cell_mass(idx[:, None], idx[None, :], ell, SIDE)
        assert np.all(masses >= bound - 1e-12)

    def test_region_mass_matches_cell_mass(self):
        ell = 2.0
        assert region_mass(1.0, 3.0, 1.0 + ell, 3.0 + ell, SIDE) == pytest.approx(
            float(cell_mass(1.0, 3.0, ell, SIDE))
        )

    def test_region_mass_whole_square(self):
        assert region_mass(0.0, 0.0, SIDE, SIDE, SIDE) == pytest.approx(1.0)


class TestDestinationLaw:
    @given(x0=interior, y0=interior)
    @settings(max_examples=50)
    def test_cross_total_is_half(self, x0, y0):
        assert float(cross_probability_total(x0, y0, SIDE)) == pytest.approx(0.5)

    @given(x0=interior, y0=interior)
    @settings(max_examples=50)
    def test_quadrants_total_is_half(self, x0, y0):
        assert float(np.sum(quadrant_masses(x0, y0, SIDE))) == pytest.approx(0.5)

    @given(x0=interior, y0=interior)
    @settings(max_examples=30)
    def test_quadrant_masses_match_pdf_times_area(self, x0, y0):
        """Each quadrant's mass = constant density x quadrant area."""
        masses = quadrant_masses(x0, y0, SIDE)
        areas = np.array(
            [
                x0 * y0,  # SW
                (SIDE - x0) * y0,  # SE
                x0 * (SIDE - y0),  # NW
                (SIDE - x0) * (SIDE - y0),  # NE
            ]
        )
        probes = np.array(
            [
                [x0 / 2, y0 / 2],
                [(x0 + SIDE) / 2, y0 / 2],
                [x0 / 2, (y0 + SIDE) / 2],
                [(x0 + SIDE) / 2, (y0 + SIDE) / 2],
            ]
        )
        densities = destination_pdf(x0, y0, probes[:, 0], probes[:, 1], SIDE)
        assert np.allclose(masses, densities * areas, rtol=1e-9)

    def test_pdf_infinite_on_cross(self):
        assert np.isinf(destination_pdf(3.0, 4.0, 3.0, 8.0, SIDE))
        assert np.isinf(destination_pdf(3.0, 4.0, 1.0, 4.0, SIDE))

    def test_paper_quadrant_constants(self):
        """Spot-check Theorem 2's numerators at a fixed position."""
        x0, y0 = 3.0, 4.0
        denom = 4 * SIDE * (x0 + y0) - 4 * (x0**2 + y0**2)
        sw = destination_pdf(x0, y0, 1.0, 1.0, SIDE)
        ne = destination_pdf(x0, y0, 8.0, 8.0, SIDE)
        nw = destination_pdf(x0, y0, 1.0, 8.0, SIDE)
        se = destination_pdf(x0, y0, 8.0, 1.0, SIDE)
        assert float(sw) == pytest.approx((2 * SIDE - x0 - y0) / (4 * SIDE * denom / 4))
        assert float(ne) == pytest.approx((x0 + y0) / (SIDE * denom))
        assert float(nw) == pytest.approx((SIDE - x0 + y0) / (SIDE * denom))
        assert float(se) == pytest.approx((SIDE + x0 - y0) / (SIDE * denom))

    def test_paper_phi_formulas(self):
        """Eqs. 4-5 verbatim."""
        x0, y0 = 3.0, 4.0
        denom = 4 * SIDE * (x0 + y0) - 4 * (x0**2 + y0**2)
        phi = cross_probability(x0, y0, SIDE)
        assert float(phi[0]) == pytest.approx(y0 * (SIDE - y0) / denom)  # S
        assert float(phi[1]) == pytest.approx(y0 * (SIDE - y0) / denom)  # N
        assert float(phi[2]) == pytest.approx(x0 * (SIDE - x0) / denom)  # W
        assert float(phi[3]) == pytest.approx(x0 * (SIDE - x0) / denom)  # E

    def test_mean_trip_length(self):
        assert mean_trip_length(SIDE) == pytest.approx(2 * SIDE / 3)

    def test_bad_side_rejected(self):
        with pytest.raises(ValueError):
            spatial_pdf(1.0, 1.0, -1.0)
