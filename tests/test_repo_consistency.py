"""Repository consistency guards: docs, registry, and benches stay in sync."""

import os

import pytest

from repro.experiments.registry import EXPERIMENT_MODULES, all_ids, get_spec

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestRegistryConsistency:
    def test_every_experiment_has_a_benchmark(self):
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for experiment_id in all_ids():
            path = os.path.join(bench_dir, f"test_bench_{experiment_id}.py")
            assert os.path.exists(path), f"missing benchmark for {experiment_id}"

    def test_design_md_lists_every_experiment(self):
        with open(os.path.join(REPO_ROOT, "DESIGN.md")) as fh:
            design = fh.read()
        for experiment_id in all_ids():
            assert f"`{experiment_id}`" in design, f"{experiment_id} missing from DESIGN.md"

    def test_module_paths_resolve(self):
        for experiment_id, module_path in EXPERIMENT_MODULES.items():
            spec = get_spec(experiment_id)
            assert spec.runner.__module__ == module_path

    def test_paper_refs_are_nonempty_and_specific(self):
        for experiment_id in all_ids():
            spec = get_spec(experiment_id)
            assert len(spec.paper_ref) > 3
            assert len(spec.description) > 10


class TestDocsExist:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_doc_present_and_substantial(self, name):
        path = os.path.join(REPO_ROOT, name)
        assert os.path.exists(path)
        with open(path) as fh:
            content = fh.read()
        assert len(content) > 1000

    def test_examples_present(self):
        examples = os.path.join(REPO_ROOT, "examples")
        scripts = [f for f in os.listdir(examples) if f.endswith(".py")]
        assert "quickstart.py" in scripts
        assert len(scripts) >= 3
