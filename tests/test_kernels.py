"""Compiled kernel tier: registry, parity, and end-to-end invisibility.

The tier's core contract is the same one the neighbor-backend suite
enforces: ``kernels`` is a *performance* knob.  Every compiled kernel is
bit-exact against its numpy path, so compiled and numpy runs of the same
seeds must be indistinguishable down to the informed-at step of every
agent — and every test here must stay green whether or not a compiled
provider (numba or the bundled C extension) is actually available.
"""

import numpy as np
import pytest

from repro.geometry.neighbors import available_backends
from repro.kernels import (
    KERNEL_NAMES,
    KERNEL_TIERS,
    _reset_probe_cache_for_tests,
    active_kernel_tier,
    available_kernel_backends,
    compile_events,
    get_kernel,
    kernel_backend,
    kernel_tier_label,
    provider_kernels,
    reference_kernels,
    resolve_kernel_tier,
    use_kernel_tier,
    warm_kernels,
)
from repro.simulation import run_trials, standard_config

HAVE_PROVIDER = kernel_backend() is not None

needs_provider = pytest.mark.skipif(
    not HAVE_PROVIDER, reason="no compiled kernel provider on this host"
)


def _tables():
    """Every kernel table under test: the pure-Python reference cores
    (always available — they *are* the spec) plus each real provider."""
    tables = [("reference", reference_kernels())]
    for backend in available_kernel_backends():
        if backend != "numpy":
            tables.append((backend, provider_kernels(backend)))
    return tables


TABLES = _tables()
TABLE_IDS = [name for name, _ in TABLES]


# ----------------------------------------------------------------------
# Registry, probes, and escape hatches
# ----------------------------------------------------------------------
class TestRegistry:
    def test_backend_list_always_ends_with_numpy(self):
        backends = available_kernel_backends()
        assert backends[-1] == "numpy"
        assert len(backends) == len(set(backends))

    def test_geometry_registry_exposes_kernel_backends(self):
        assert available_backends(kind="kernels") == available_kernel_backends()
        # The default kind still answers for the neighbor subsystem.
        assert "grid" in available_backends()

    def test_escape_hatches_force_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        monkeypatch.setenv("REPRO_NO_CEXT", "1")
        _reset_probe_cache_for_tests()
        try:
            assert kernel_backend() is None
            assert available_kernel_backends() == ["numpy"]
            assert resolve_kernel_tier("auto") == "numpy"
            assert kernel_tier_label("auto") == "numpy"
            assert warm_kernels() == "numpy"
            with pytest.raises(RuntimeError, match="compiled"):
                resolve_kernel_tier("compiled")
            # An explicit compiled demand surfaces through the runner too.
            config = standard_config(40, seed=3, kernels="compiled")
            with pytest.raises(RuntimeError, match="compiled"):
                run_trials(config, 1)
        finally:
            monkeypatch.delenv("REPRO_NO_NUMBA")
            monkeypatch.delenv("REPRO_NO_CEXT")
            _reset_probe_cache_for_tests()

    def test_probe_results_are_cached(self):
        first = kernel_backend()
        assert kernel_backend() is first or kernel_backend() == first

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="kernel tier"):
            resolve_kernel_tier("bogus")

    def test_tier_label_matches_backend(self):
        label = kernel_tier_label("auto")
        backend = kernel_backend()
        if backend is None:
            assert label == "numpy"
        elif backend == "numba":
            assert label.startswith("numba-")
        else:
            assert label == "cext"
        assert kernel_tier_label("numpy") == "numpy"


class TestTierScoping:
    def test_default_tier_is_numpy(self):
        assert active_kernel_tier() == "numpy"
        assert get_kernel("batch_any_within") is None

    def test_numpy_tier_never_dispatches(self):
        with use_kernel_tier("numpy") as tier:
            assert tier == "numpy"
            assert all(get_kernel(name) is None for name in KERNEL_NAMES)

    @needs_provider
    def test_compiled_tier_scopes_and_restores(self):
        with use_kernel_tier("compiled") as tier:
            assert tier == "compiled"
            assert all(callable(get_kernel(name)) for name in KERNEL_NAMES)
            with use_kernel_tier("numpy"):
                assert get_kernel("union_fixpoint") is None
            assert callable(get_kernel("union_fixpoint"))
        assert active_kernel_tier() == "numpy"
        assert get_kernel("union_fixpoint") is None

    def test_auto_resolves_to_best_available(self):
        expected = "compiled" if HAVE_PROVIDER else "numpy"
        assert resolve_kernel_tier("auto") == expected
        with use_kernel_tier("auto") as tier:
            assert tier == expected


class TestConfigKnob:
    def test_default_and_validation(self):
        config = standard_config(50)
        assert config.kernels == "auto"
        with pytest.raises(ValueError, match="kernels"):
            standard_config(50, kernels="bogus")
        for tier in KERNEL_TIERS:
            if tier == "compiled" and not HAVE_PROVIDER:
                continue
            assert standard_config(50, kernels=tier).kernels == tier

    def test_resolved_kernels_property(self):
        assert standard_config(50, kernels="numpy").resolved_kernels == "numpy"
        auto = standard_config(50).resolved_kernels
        assert auto == ("compiled" if HAVE_PROVIDER else "numpy")
        if not HAVE_PROVIDER:
            with pytest.raises(RuntimeError):
                standard_config(50, kernels="compiled").resolved_kernels


# ----------------------------------------------------------------------
# Per-kernel parity against independent numpy oracles
# ----------------------------------------------------------------------
@pytest.mark.parametrize("table", [t for _, t in TABLES], ids=TABLE_IDS)
class TestPairKernelParity:
    def _oracle_any_within(self, pos, src_mask, qry_mask, radius):
        batch, n, _ = pos.shape
        out = np.zeros((batch, n), dtype=bool)
        for b in range(batch):
            d = pos[b, :, None, :] - pos[b, None, :, :]
            hit = ((d ** 2).sum(-1) <= radius * radius) & src_mask[b][None, :]
            out[b] = hit.any(axis=1) & qry_mask[b]
        return out

    def test_any_within_randomized(self, table, rng):
        for _ in range(25):
            batch = int(rng.integers(1, 4))
            n = int(rng.integers(1, 40))
            side = float(rng.uniform(0.5, 8.0))
            radius = float(rng.uniform(0.05, side))
            pos = rng.uniform(0, side, size=(batch, n, 2))
            src = rng.random((batch, n)) < rng.uniform(0, 1)
            qry = rng.random((batch, n)) < rng.uniform(0, 1)
            got = table["batch_any_within"](pos, src, qry, radius, side)
            assert got is not None
            expect = self._oracle_any_within(pos, src, qry, radius)
            np.testing.assert_array_equal(got, expect)

    def test_contacts_randomized(self, table, rng):
        for _ in range(15):
            batch = int(rng.integers(1, 3))
            n = int(rng.integers(2, 30))
            side = float(rng.uniform(1.0, 6.0))
            radius = float(rng.uniform(0.2, side / 2))
            pos = rng.uniform(0, side, size=(batch, n, 2))
            src = rng.random((batch, n)) < 0.6
            qry = rng.random((batch, n)) < 0.6
            got = table["batch_contacts"](pos, src, qry, radius, side)
            assert got is not None
            rep, s_idx, q_idx = got
            pairs = set(zip(rep.tolist(), s_idx.tolist(), q_idx.tolist()))
            expect = set()
            for b in range(batch):
                d = pos[b, :, None, :] - pos[b, None, :, :]
                close = (d ** 2).sum(-1) <= radius * radius
                for s in np.nonzero(src[b])[0]:
                    for q in np.nonzero(qry[b])[0]:
                        if close[s, q]:
                            expect.add((b, int(s), int(q)))
            assert pairs == expect
            assert len(rep) == len(expect)

    def test_adversarial_masks(self, table, rng):
        pos = rng.uniform(0, 5.0, size=(2, 6, 2))
        full = np.ones((2, 6), dtype=bool)
        none = np.zeros((2, 6), dtype=bool)
        # Empty frontier: no sources.
        assert not table["batch_any_within"](pos, none, full, 1.0, 5.0).any()
        # All-frozen replicas: no queries.
        assert not table["batch_any_within"](pos, full, none, 1.0, 5.0).any()
        rep, s_idx, q_idx = table["batch_contacts"](pos, none, full, 1.0, 5.0)
        assert rep.size == 0 and s_idx.size == 0 and q_idx.size == 0

    def test_single_agent(self, table, rng):
        pos = rng.uniform(0, 3.0, size=(1, 1, 2))
        mask = np.ones((1, 1), dtype=bool)
        got = table["batch_any_within"](pos, mask, mask, 0.5, 3.0)
        # The lone agent is within radius zero of itself.
        assert got[0, 0]

    def test_out_of_domain_returns_none(self, table, rng):
        pos32 = rng.uniform(0, 3.0, size=(1, 4, 2)).astype(np.float32)
        mask = np.ones((1, 4), dtype=bool)
        assert table["batch_any_within"](pos32, mask, mask, 0.5, 3.0) is None
        assert table["batch_any_within"](
            rng.uniform(0, 3.0, size=(1, 4, 2)), mask, mask, -1.0, 3.0
        ) is None


@pytest.mark.parametrize("table", [t for _, t in TABLES], ids=TABLE_IDS)
class TestLegKernelParity:
    def _numpy_advance(self, pos, target, budget, idx, eps, speed, metric):
        """The vectorized reference semantics, re-derived independently."""
        delta = target[idx] - pos[idx]
        if metric == "manhattan":
            dist = np.abs(delta).sum(axis=1)
        else:
            dist = np.sqrt((delta ** 2).sum(axis=1))
        b = budget[idx]
        if speed is None:
            move = np.minimum(b, dist)
            spent = move
        else:
            s = speed[idx] if isinstance(speed, np.ndarray) else float(speed)
            move = np.minimum(b * s, dist)
            spent = move / s
        frac = np.where(dist > eps, move / np.where(dist > eps, dist, 1.0), 1.0)
        pos[idx] += delta * frac[:, None]
        budget[idx] = b - spent
        arrived = move >= dist - eps
        done = idx[arrived]
        pos[done] = target[done]
        return done

    @pytest.mark.parametrize("metric", ["manhattan", "euclidean"])
    @pytest.mark.parametrize("speed_kind", ["none", "scalar", "array"])
    def test_advance_legs_randomized(self, table, rng, metric, speed_kind):
        for _ in range(10):
            total = int(rng.integers(1, 25))
            pos = rng.uniform(0, 4.0, size=(total, 2))
            target = rng.uniform(0, 4.0, size=(total, 2))
            budget = rng.uniform(0.0, 2.0, size=total)
            idx = np.nonzero(rng.random(total) < 0.7)[0].astype(np.intp)
            speed = {
                "none": None,
                "scalar": 1.3,
                "array": rng.uniform(0.5, 2.0, size=total),
            }[speed_kind]
            eps = 1e-9
            pos_k, budget_k = pos.copy(), budget.copy()
            done_k = table["advance_legs"](pos_k, target, budget_k, idx, eps, speed, metric)
            assert done_k is not None
            pos_r, budget_r = pos.copy(), budget.copy()
            done_r = self._numpy_advance(pos_r, target, budget_r, idx, eps, speed, metric)
            np.testing.assert_array_equal(np.sort(done_k), np.sort(done_r))
            np.testing.assert_array_equal(pos_k, pos_r)
            np.testing.assert_array_equal(budget_k, budget_r)

    def test_advance_legs_dense_matches_sparse(self, table, rng):
        for _ in range(10):
            total = int(rng.integers(1, 25))
            pos = rng.uniform(0, 4.0, size=(total, 2))
            target = rng.uniform(0, 4.0, size=(total, 2))
            budget = rng.uniform(0.0, 2.0, size=total)
            moving = rng.random(total) < 0.8
            idx = np.nonzero(moving)[0].astype(np.intp)
            pos_d, budget_d = pos.copy(), budget.copy()
            done_d = table["advance_legs_dense"](
                pos_d, target, budget_d, moving, int(moving.sum()), 1e-9, None
            )
            pos_s, budget_s = pos.copy(), budget.copy()
            done_s = table["advance_legs"](pos_s, target, budget_s, idx, 1e-9, None)
            np.testing.assert_array_equal(np.sort(done_d), np.sort(done_s))
            np.testing.assert_array_equal(pos_d, pos_s)
            np.testing.assert_array_equal(budget_d, budget_s)

    def test_empty_index_set(self, table):
        pos = np.zeros((3, 2))
        target = np.ones((3, 2))
        budget = np.ones(3)
        done = table["advance_legs"](
            pos, target, budget, np.empty(0, dtype=np.intp), 1e-9, None
        )
        assert done is not None and done.size == 0
        np.testing.assert_array_equal(pos, np.zeros((3, 2)))


@pytest.mark.parametrize("table", [t for _, t in TABLES], ids=TABLE_IDS)
class TestStructureKernelParity:
    def test_grid_splice_matches_numpy_splice(self, table, rng):
        for _ in range(20):
            n = int(rng.integers(1, 40))
            order = rng.permutation(n).astype(np.intp)
            # Bucket ids may repeat (several points per bucket) and the new
            # ids may collide with surviving ones — exactly the hard case.
            sorted_ids = np.sort(rng.integers(0, 3 * n, size=n)).astype(np.intp)
            removed = rng.random(n) < 0.3
            n_new = int(rng.integers(0, 8))
            new_ids = np.sort(rng.integers(0, 3 * n, size=n_new)).astype(np.intp)
            new_pts = rng.integers(0, n, size=n_new).astype(np.intp)
            got = table["grid_splice"](order, sorted_ids, removed, new_ids, new_pts)
            assert got is not None
            out_order, out_ids = got
            keep = ~removed
            kept_order = order[keep]
            kept_ids = sorted_ids[keep]
            insert_at = np.searchsorted(kept_ids, new_ids, side="left")
            np.testing.assert_array_equal(
                out_order, np.insert(kept_order, insert_at, new_pts)
            )
            np.testing.assert_array_equal(
                out_ids, np.insert(kept_ids, insert_at, new_ids)
            )

    def test_occupancy_delta(self, table, rng):
        counts = rng.integers(0, 5, size=20).astype(np.int64)
        old = rng.integers(0, 20, size=12)
        new = rng.integers(0, 20, size=12)
        expect = counts.copy()
        np.subtract.at(expect, old, 1)
        np.add.at(expect, new, 1)
        assert table["occupancy_delta"](counts, old, new) is True
        np.testing.assert_array_equal(counts, expect)

    def test_union_fixpoint_min_labels(self, table, rng):
        for _ in range(15):
            n = int(rng.integers(1, 50))
            parent = np.arange(n, dtype=np.intp)
            e = int(rng.integers(0, 3 * n + 1))
            u = rng.integers(0, n, size=e)
            v = rng.integers(0, n, size=e)
            assert table["union_fixpoint"](parent, u, v) is True
            # Oracle: connected components, labelled by their minimum member.
            label = np.arange(n)
            changed = True
            while changed:
                changed = False
                for a, b in zip(u, v):
                    lo = min(label[a], label[b])
                    if label[a] != lo or label[b] != lo:
                        label[label == label[a]] = lo
                        label[label == label[b]] = lo
                        changed = True
            np.testing.assert_array_equal(parent, label)
            # Canonical form: every entry points straight at its root.
            np.testing.assert_array_equal(parent[parent], parent)

    def test_zone_counts_matches_cell_classification(self, table, rng):
        for _ in range(20):
            batch = int(rng.integers(1, 4))
            n = int(rng.integers(1, 40))
            m = int(rng.integers(1, 7))
            side = float(rng.uniform(1.0, 9.0))
            ell = side / m
            pos = rng.uniform(0, side, size=(batch, n, 2))
            informed = rng.random((batch, n)) < 0.5
            cz_mask = rng.random((m, m)) < 0.5
            got = table["zone_counts"](pos, informed, ell, m, cz_mask)
            assert got is not None
            cz_total, cz_informed = got
            ij = (pos.reshape(-1, 2) / ell).astype(np.intp)
            np.clip(ij, 0, m - 1, out=ij)
            in_cz = cz_mask[ij[:, 0], ij[:, 1]].reshape(batch, n)
            np.testing.assert_array_equal(cz_total, np.count_nonzero(in_cz, axis=1))
            np.testing.assert_array_equal(
                cz_informed, np.count_nonzero(in_cz & informed, axis=1)
            )
            assert cz_total.dtype == np.intp and cz_informed.dtype == np.intp


# ----------------------------------------------------------------------
# Compiled tier end-to-end: invisible in results, visible in extras
# ----------------------------------------------------------------------
def fingerprints(config, trials=3):
    return [
        (
            r.flooding_time,
            r.completed,
            r.n_steps,
            r.source,
            tuple(np.asarray(r.informed_history).tolist()),
            r.cz_completion_time,
            r.suburb_completion_time,
        )
        for r in run_trials(config, trials)
    ]


class TestEndToEndParity:
    @needs_provider
    @pytest.mark.parametrize(
        "mobility,mobility_options",
        [("mrwp", {}), ("rwp", {}), ("random-walk", {}), ("mrwp-pause", {"pause_time": 2.0})],
    )
    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_tier_is_invisible_in_results(self, mobility, mobility_options, engine):
        base = standard_config(
            70, seed=31, mobility=mobility,
            mobility_options=dict(mobility_options), engine=engine,
        )
        reference = fingerprints(base.with_options(kernels="numpy"))
        compiled = fingerprints(base.with_options(kernels="compiled"))
        assert compiled == reference

    @needs_provider
    @pytest.mark.parametrize("neighbor_options", [{}, {"incremental": False}, {"prune": False}])
    def test_tier_is_invisible_across_neighbor_strategies(self, neighbor_options):
        base = standard_config(
            70, seed=7, engine="batch", neighbor_options=dict(neighbor_options)
        )
        assert fingerprints(base.with_options(kernels="compiled")) == fingerprints(
            base.with_options(kernels="numpy")
        )

    def test_extras_record_resolved_tier(self):
        numpy_run = run_trials(standard_config(50, seed=5, kernels="numpy"), 1)
        assert numpy_run[0].extras["kernel_tier"] == "numpy"
        auto_run = run_trials(standard_config(50, seed=5, engine="batch"), 1)
        assert auto_run[0].extras["kernel_tier"] == kernel_tier_label("auto")

    @needs_provider
    def test_warm_then_no_new_compiles(self):
        warm_kernels()
        before = compile_events()
        config = standard_config(60, seed=13, engine="batch", kernels="compiled")
        run_trials(config, 2)
        assert compile_events() == before
