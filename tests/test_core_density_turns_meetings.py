"""Tests of the density condition, turn statistics, and meeting machinery."""

import math

import numpy as np
import pytest

from repro.core.cells import CellGrid
from repro.core.density import DensityCondition, core_occupancy_of_central_cells
from repro.core.meetings import first_meeting_times_from_zone, meeting_radius
from repro.core.turns import (
    count_turns_in_window,
    longest_inward_run,
    longest_inward_runs_from_frames,
    max_turns_in_window,
)
from repro.core.zones import ZonePartition
from repro.mobility.base import record_trajectory
from repro.mobility.mrwp import ManhattanRandomWaypoint

SIDE = 40.0
N = 2000


def make_zone_setup(radius=6.0, threshold_factor=0.375):
    grid = CellGrid.for_radius(SIDE, radius)
    zones = ZonePartition(grid, N, threshold_factor=threshold_factor)
    return grid, zones


class TestDensityCondition:
    def test_core_occupancy_shape(self, rng):
        grid, zones = make_zone_setup()
        positions = rng.uniform(0, SIDE, (N, 2))
        occ = core_occupancy_of_central_cells(grid, zones, positions)
        assert occ.shape == (zones.n_central_cells,)

    def test_check_with_zero_required(self, rng):
        grid, zones = make_zone_setup()
        condition = DensityCondition(grid, zones, eta=1e-9)
        # Even the emptiest core trivially satisfies eta ~ 0... unless it is
        # exactly empty; place a full uniform cloud so cores are populated.
        positions = rng.uniform(0, SIDE, (50_000, 2))
        assert condition.check(positions)

    def test_min_core_occupancy_counts(self):
        grid, zones = make_zone_setup()
        # Put one agent in the core of every CZ cell.
        ids = zones.central_cell_ids()
        ix, iy = ids // grid.m, ids % grid.m
        centers = grid.cell_center(ix, iy)
        condition = DensityCondition(grid, zones)
        assert condition.min_core_occupancy(centers) == 1

    def test_monitor_series_length(self):
        grid, zones = make_zone_setup()
        model = ManhattanRandomWaypoint(N, SIDE, 0.5, rng=np.random.default_rng(0))
        condition = DensityCondition(grid, zones)
        report = condition.monitor(model, steps=5)
        assert report["min_occupancy"].shape == (6,)
        assert 0.0 <= report["holds_fraction"] <= 1.0

    def test_invalid_eta(self):
        grid, zones = make_zone_setup()
        with pytest.raises(ValueError):
            DensityCondition(grid, zones, eta=0.0)


class TestTurns:
    def test_count_turns_window(self):
        model = ManhattanRandomWaypoint(100, SIDE, 2.0, rng=np.random.default_rng(1))
        counts = count_turns_in_window(model, 20)
        assert counts.shape == (100,)
        assert np.all(counts >= 0)
        assert counts.sum() > 0

    def test_max_turns_consistent(self):
        model = ManhattanRandomWaypoint(100, SIDE, 2.0, rng=np.random.default_rng(2))
        state = model.get_state()
        counts_model = ManhattanRandomWaypoint(
            100, SIDE, 2.0, rng=np.random.default_rng(2), init=state
        )
        assert max_turns_in_window(counts_model, 10) >= 0

    def test_turn_rate_matches_trip_length(self):
        """Turns per step ~ 2 direction changes per trip of mean length 2L/3
        => rate ~ 2 v / (2L/3) = 3v/L."""
        model = ManhattanRandomWaypoint(5000, SIDE, 1.0, rng=np.random.default_rng(3))
        steps = 200
        counts = count_turns_in_window(model, steps)
        rate = counts.mean() / steps
        assert rate == pytest.approx(3.0 / SIDE, rel=0.15)

    def test_inward_run_synthetic(self):
        """Hand-built SW-corner trajectory: east 3 units, then north 2."""
        traj = np.array(
            [[1.0, 1.0], [2.0, 1.0], [3.0, 1.0], [4.0, 1.0], [4.0, 2.0], [4.0, 3.0]]
        )
        assert longest_inward_run(traj, SIDE) == pytest.approx(3.0)

    def test_inward_run_folds_corners(self):
        """Movement toward the center from the NE corner counts as inward."""
        traj = np.array([[39.0, 39.0], [38.0, 39.0], [37.0, 39.0]])
        assert longest_inward_run(traj, SIDE) == pytest.approx(2.0)

    def test_outward_run_not_counted(self):
        traj = np.array([[5.0, 5.0], [4.0, 5.0], [3.0, 5.0]])
        assert longest_inward_run(traj, SIDE) == pytest.approx(0.0)

    def test_frames_vectorized_matches_single(self):
        model = ManhattanRandomWaypoint(20, SIDE, 1.0, rng=np.random.default_rng(4))
        frames = record_trajectory(model, 30)
        bulk = longest_inward_runs_from_frames(frames, SIDE)
        for agent in range(20):
            single = longest_inward_run(frames[:, agent, :], SIDE)
            assert bulk[agent] == pytest.approx(single)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            longest_inward_run(np.zeros((5, 3)), SIDE)
        with pytest.raises(ValueError):
            longest_inward_runs_from_frames(np.zeros((5, 3)), SIDE)


class TestMeetings:
    def test_meeting_radius(self):
        assert meeting_radius(4.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            meeting_radius(-1.0)

    def test_meeting_times_basic(self):
        grid, zones = make_zone_setup()
        model = ManhattanRandomWaypoint(N, SIDE, 1.0, rng=np.random.default_rng(5))
        suburb = np.nonzero(zones.in_suburb(model.positions))[0][:20]
        times = first_meeting_times_from_zone(model, zones, radius=6.0, targets=suburb, window=60)
        assert times.shape == (suburb.size,)
        met = np.isfinite(times)
        assert met.mean() > 0.8  # dense-ish setting: nearly everyone is met

    def test_meeting_time_zero_when_adjacent(self):
        """A target already within 3/4 R of a CZ agent meets at step 0."""
        grid, zones = make_zone_setup()
        model = ManhattanRandomWaypoint(N, SIDE, 1.0, rng=np.random.default_rng(6))
        positions = model.positions
        cz_agents = np.nonzero(zones.in_central_zone(positions))[0]
        # Find any agent within 3/4 * R of a CZ agent (not itself).
        target = None
        for candidate in range(N):
            dists = np.linalg.norm(positions[cz_agents] - positions[candidate], axis=1)
            dists = dists[dists > 0]
            if dists.size and dists.min() <= meeting_radius(6.0):
                target = candidate
                break
        assert target is not None
        times = first_meeting_times_from_zone(
            model, zones, radius=6.0, targets=np.array([target]), window=0
        )
        assert times[0] == 0.0

    def test_no_emissaries_never_meets(self):
        """With an empty Central Zone the meeting time is infinite."""
        grid = CellGrid.for_radius(SIDE, 6.0)
        zones = ZonePartition(grid, N, threshold_factor=1e9)  # everything suburb
        model = ManhattanRandomWaypoint(50, SIDE, 1.0, rng=np.random.default_rng(7))
        times = first_meeting_times_from_zone(
            model, zones, radius=6.0, targets=np.arange(5), window=5
        )
        assert np.isinf(times).all()

    def test_window_validation(self):
        grid, zones = make_zone_setup()
        model = ManhattanRandomWaypoint(50, SIDE, 1.0, rng=np.random.default_rng(8))
        with pytest.raises(ValueError):
            first_meeting_times_from_zone(
                model, zones, radius=6.0, targets=np.arange(3), window=-1
            )
