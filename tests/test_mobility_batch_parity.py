"""Seed-for-seed parity of every batch mobility model vs its scalar twin.

PR 5's core invariant: every model in ``BATCH_MOBILITY_REGISTRY`` advances
``B`` replicas bit-identically to ``B`` independently seeded scalar models
— same initial state (stationary / Palm / uniform sampling included), same
trajectories, same per-replica RNG streams — and the batch engine built on
top of them returns exactly the scalar engine's trial results across
models, inits, backends and engines.  Since PR 9 that includes the transit
family (ferry / composite / timetable): every registered name is
batch-native, and ``ReplicatedBatchMobility`` survives only as the tested
escape hatch for user-supplied scalar models, announcing itself in every
replica's results.
"""

import numpy as np
import pytest

from repro.geometry.neighbors import available_backends
from repro.mobility import (
    BATCH_MOBILITY_REGISTRY,
    MODEL_REGISTRY,
    ManhattanRandomWaypoint,
    ReplicatedBatchMobility,
)
from repro.simulation.batch import build_batch_model, run_protocol_batch
from repro.simulation.config import _MOBILITY_OPTION_KEYS, FloodingConfig, standard_config
from repro.simulation.runner import build_model, run_trials

B = 4
N = 50
SIDE = 9.0
RADIUS = 1.6
SPEED = 0.6

#: (mobility, mobility_options, inits) — every native batch model with its
#: full init vocabulary (and the option corners worth pinning: zero pause,
#: positive pause, real speed ranges).
MODEL_GRID = [
    ("mrwp", {}, ("stationary", "closed-form", "uniform")),
    ("mrwp-pause", {"pause_time": 2.5}, ("stationary", "uniform")),
    ("mrwp-pause", {"pause_time": 0.0}, ("stationary",)),
    ("mrwp-speed", {"v_min": 0.3, "v_max": 1.1}, ("stationary", "uniform")),
    ("rwp", {}, ("stationary", "uniform")),
    ("rwp", {"pause_time": 1.5}, ("stationary",)),
    ("random-walk", {}, ("stationary",)),
    ("random-walk", {"boundary": "clip"}, ("stationary",)),
    ("random-direction", {}, ("stationary",)),
    ("random-direction", {"mean_leg": 2.0}, ("stationary",)),
    # Transit family (PR 9).  The ferry inset is chosen so the ferry
    # spacing is NOT an exact divisor of the radius: evenly spaced
    # collinear ferries otherwise put pairs at float-exact distance R,
    # where different neighbor kernels may legitimately disagree on the
    # inclusive boundary (a measure-zero tie no stochastic model produces).
    ("ferry", {"inset": 1.9}, ("stationary",)),
    ("ferry", {"inset": 1.9, "jitter": 0.5}, ("stationary",)),
    ("composite", {"ferries": 3}, ("stationary", "uniform")),
    ("timetable", {"riders": 40, "dwell": 2.0, "capacity": 3}, ("stationary", "uniform")),
    (
        "timetable",
        {
            "riders": 35,
            "dwell": 1.5,
            "headway": 4.0,
            "capacity": 2,
            "board_radius": 1.0,
            "jitter": 0.5,
        },
        ("stationary",),
    ),
]

MODEL_INIT_CASES = [
    (name, options, init)
    for name, options, inits in MODEL_GRID
    for init in inits
]


def mobility_config(name, options, init="stationary", **overrides):
    fields = dict(
        n=N, side=SIDE, radius=RADIUS, speed=SPEED, max_steps=300,
        mobility=name, mobility_options=dict(options), init=init, seed=13,
    )
    fields.update(overrides)
    return FloodingConfig(**fields)


def model_pair(name, options, init, seed=21):
    """A batch model and its B scalar references, on split generator pairs."""
    config = mobility_config(name, options, init)
    children = np.random.SeedSequence(seed).spawn(B)
    scalar_rngs = [np.random.default_rng(s) for s in children]
    batch_rngs = [np.random.default_rng(s) for s in children]
    scalars = [build_model(config, rng) for rng in scalar_rngs]
    batch = build_batch_model(config, batch_rngs)
    return scalars, batch


def result_fingerprint(results):
    return [
        (
            r.flooding_time,
            r.completed,
            r.n_steps,
            r.source,
            tuple(np.asarray(r.informed_history).tolist()),
            r.cz_completion_time,
            r.suburb_completion_time,
        )
        for r in results
    ]


class TestModelLevelParity:
    """Stepping the batch model == stepping B scalar models, bit for bit."""

    @pytest.mark.parametrize("name,options,init", MODEL_INIT_CASES)
    def test_initial_state_and_trajectory_bit_exact(self, name, options, init):
        scalars, batch = model_pair(name, options, init)
        entry = BATCH_MOBILITY_REGISTRY[name]
        if isinstance(entry, type):
            assert type(batch) is entry
        assert not isinstance(batch, ReplicatedBatchMobility)
        assert np.array_equal(np.stack([m.positions for m in scalars]), batch.positions)
        for _ in range(12):
            expected = np.stack([m.step() for m in scalars])
            assert np.array_equal(batch.step(), expected)

    @pytest.mark.parametrize(
        "name,options",
        [(name, options) for name, options, _ in MODEL_GRID],
    )
    def test_frozen_replicas_keep_state_and_streams(self, name, options):
        """A frozen replica must not move *and* must not consume RNG —
        exactly like a scalar trial that already stopped stepping."""
        scalars, batch = model_pair(name, options, "stationary")
        active = np.array([True, False, True, False])
        frozen_before = batch.positions[~active]
        for _ in range(6):
            for b in np.nonzero(active)[0]:
                scalars[b].step()
            batch.step(active=active)
        assert np.array_equal(batch.positions[~active], frozen_before)
        # Thawing afterwards: the frozen replicas' generators are pristine,
        # so they must now replay their scalar twins' next steps exactly.
        for _ in range(4):
            expected = np.stack([m.step() for m in scalars])
            assert np.array_equal(batch.step(), expected)

    @pytest.mark.parametrize(
        "name,options",
        [
            ("mrwp", {}),
            ("mrwp-pause", {"pause_time": 1.0}),
            ("ferry", {"inset": 1.9}),
            ("timetable", {"riders": 40, "dwell": 1.0, "capacity": 3}),
        ],
    )
    def test_fractional_dt_parity(self, name, options):
        scalars, batch = model_pair(name, options, "stationary")
        for dt in (0.25, 1.75, 0.5, 3.0):
            expected = np.stack([m.step(dt) for m in scalars])
            assert np.array_equal(batch.step(dt), expected)


class TestEngineLevelParity:
    """run_trials: batch engine == scalar engine over the full model grid."""

    @pytest.mark.parametrize("name,options,init", MODEL_INIT_CASES)
    def test_trials_match_across_engines(self, name, options, init):
        config = mobility_config(name, options, init)
        scalar = result_fingerprint(run_trials(config, 3))
        batch = result_fingerprint(run_trials(config.with_options(engine="batch"), 3))
        assert scalar == batch

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize(
        "name", ["mrwp-pause", "mrwp-speed", "random-direction"]
    )
    def test_new_models_match_across_backends(self, name, backend):
        options = {"v_min": 0.3, "v_max": 1.1} if name == "mrwp-speed" else {}
        config = mobility_config(name, options, backend=backend)
        reference = None
        for engine in ("scalar", "batch"):
            got = result_fingerprint(run_trials(config.with_options(engine=engine), 3))
            if reference is None:
                reference = got
            assert got == reference, (name, backend, engine)

    def test_auto_resolves_to_batch_for_native_models(self):
        for name, options, _inits in MODEL_GRID:
            config = mobility_config(name, options, engine="auto")
            assert config.resolved_engine == "batch", name


#: The PR 9 acceptance sweep: {timetable, ferry, composite} — each config
#: must produce bit-identical positions and informed-counts across every
#: backend and engine.
TRANSIT_CASES = [
    ("ferry", {"inset": 1.9}),
    ("composite", {"ferries": 3}),
    ("timetable", {"riders": 40, "dwell": 2.0, "capacity": 3}),
]


class TestTransitFamilyNative:
    """ferry / composite / timetable run natively in the batch engine."""

    @pytest.mark.parametrize("name,options", TRANSIT_CASES)
    def test_transit_models_are_native(self, name, options):
        rngs = [np.random.default_rng(s) for s in np.random.SeedSequence(3).spawn(B)]
        model = build_batch_model(mobility_config(name, options), rngs)
        assert not isinstance(model, ReplicatedBatchMobility)

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("name,options", TRANSIT_CASES)
    def test_bit_identical_across_backends_and_engines(self, name, options, backend):
        """The acceptance sweep: {transit model} x {backend} x {engine}."""
        config = mobility_config(name, options, max_steps=120, backend=backend)
        reference = result_fingerprint(run_trials(config.with_options(engine="scalar"), 3))
        for engine in ("batch", "auto"):
            got = result_fingerprint(run_trials(config.with_options(engine=engine), 3))
            assert got == reference, (name, backend, engine)

    @pytest.mark.parametrize("name,options", TRANSIT_CASES)
    def test_no_fallback_note_and_auto_resolves_to_batch(self, name, options):
        config = mobility_config(name, options, engine="auto")
        assert config.resolved_engine == "batch"
        results = run_trials(config, 2)
        assert all("mobility_execution" not in r.extras for r in results)


class TestReplicatedEscapeHatch:
    """User-supplied scalar models without a batch twin still run correctly
    through ReplicatedBatchMobility — and say so in every replica."""

    NAME = "mrwp-scalar-only"

    @pytest.fixture()
    def scalar_only_model(self, monkeypatch):
        monkeypatch.setitem(MODEL_REGISTRY, self.NAME, ManhattanRandomWaypoint)
        monkeypatch.setitem(_MOBILITY_OPTION_KEYS, self.NAME, frozenset())
        assert self.NAME not in BATCH_MOBILITY_REGISTRY
        return self.NAME

    def test_unregistered_batch_model_is_replicated(self, scalar_only_model):
        rngs = [np.random.default_rng(s) for s in np.random.SeedSequence(3).spawn(B)]
        config = mobility_config(scalar_only_model, {})
        assert isinstance(build_batch_model(config, rngs), ReplicatedBatchMobility)

    def test_escape_hatch_bit_identical_across_engines(self, scalar_only_model):
        config = mobility_config(scalar_only_model, {}, max_steps=120)
        scalar = result_fingerprint(run_trials(config, 3))
        batch = result_fingerprint(run_trials(config.with_options(engine="batch"), 3))
        assert scalar == batch

    def test_fallback_note_stamped_on_every_replica(self, scalar_only_model):
        results = run_trials(mobility_config(scalar_only_model, {}, engine="batch"), 3)
        notes = [r.extras.get("mobility_execution") for r in results]
        assert notes == ["replicated (not vectorized)"] * 3

    def test_native_models_carry_no_fallback_note(self):
        results = run_trials(mobility_config("mrwp-pause", {"pause_time": 1.0}, engine="batch"), 2)
        assert all("mobility_execution" not in r.extras for r in results)

    def test_auto_keeps_escape_hatch_models_on_the_scalar_engine(self, scalar_only_model):
        config = mobility_config(scalar_only_model, {}, engine="auto")
        assert config.resolved_engine == "scalar"


class TestConfigSurface:
    """Config-time validation of the mobility layer's new surface."""

    def test_every_registered_model_builds_from_config(self):
        for name in MODEL_REGISTRY:
            options = {"ferries": 3} if name == "composite" else {}
            config = mobility_config(name, options)
            model = build_model(config, np.random.default_rng(0))
            assert model.positions.shape == (N, 2)

    def test_unknown_mobility_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown mobility model"):
            mobility_config("teleport", {})

    def test_unknown_mobility_option_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown mobility options"):
            mobility_config("mrwp-pause", {"pause": 3.0})

    def test_mrwp_speed_range_validated_at_construction(self):
        with pytest.raises(ValueError, match="v_min"):
            mobility_config("mrwp-speed", {"v_min": 0.9, "v_max": 0.2})
        with pytest.raises(ValueError, match="v_min"):
            mobility_config("mrwp-speed", {"v_min": 0.0, "v_max": 0.5})

    def test_mrwp_speed_defaults_to_constant_config_speed(self):
        config = mobility_config("mrwp-speed", {})
        model = build_model(config, np.random.default_rng(1))
        assert model.v_min == model.v_max == SPEED

    def test_registry_keys_line_up(self):
        # Every registered mobility resolves to a native batch entry — the
        # PR 9 acceptance criterion that retired the replicated fallback
        # for built-in models.
        assert set(BATCH_MOBILITY_REGISTRY) == set(MODEL_REGISTRY)
        # Registering a model requires declaring its option vocabulary too.
        assert set(_MOBILITY_OPTION_KEYS) == set(MODEL_REGISTRY)

    def test_no_init_models_reject_init_at_config_time(self):
        for name in ("ferry", "random-walk", "random-direction"):
            with pytest.raises(ValueError, match="takes no init"):
                mobility_config(name, {}, init="uniform")

    def test_timetable_option_values_validated_at_construction(self):
        with pytest.raises(ValueError, match="riders"):
            mobility_config("timetable", {"riders": N})
        with pytest.raises(ValueError, match="headway"):
            mobility_config("timetable", {"headway": 0.0})
        with pytest.raises(ValueError, match="capacity"):
            mobility_config("timetable", {"capacity": 0})
        with pytest.raises(ValueError, match="dwell"):
            mobility_config("timetable", {"dwell": -1.0})
        with pytest.raises(ValueError, match="board_radius"):
            mobility_config("timetable", {"board_radius": 0.0})
        with pytest.raises(ValueError, match="jitter"):
            mobility_config("ferry", {"jitter": 1.5})
