"""Tests of contact traces and meeting statistics."""

import numpy as np
import pytest

from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.network.contacts import MEETING_RADIUS_FACTOR, ContactTrace, record_contacts
from repro.network.snapshots import SnapshotSeries

SIDE = 10.0


def make_trace(n=40, steps=15, radius=2.0, seed=0):
    model = ManhattanRandomWaypoint(n, SIDE, 0.2, rng=np.random.default_rng(seed))
    series = SnapshotSeries.record(model, steps, radius)
    return record_contacts(series), series


class TestRecordContacts:
    def test_default_radius_is_three_quarters(self):
        _trace, series = make_trace()
        trace = record_contacts(series)
        explicit = record_contacts(series, radius=MEETING_RADIUS_FACTOR * series.radius)
        for a, b in zip(trace.step_pairs, explicit.step_pairs):
            assert np.array_equal(a, b)

    def test_trace_covers_all_steps(self):
        trace, series = make_trace(steps=12)
        assert len(trace.step_pairs) == 13
        assert trace.contact_counts().shape == (13,)

    def test_contacts_are_within_radius(self):
        trace, series = make_trace()
        r = MEETING_RADIUS_FACTOR * series.radius
        for t, pairs in enumerate(trace.step_pairs):
            positions = series.positions_at(t)
            for i, j in pairs.tolist():
                assert np.linalg.norm(positions[i] - positions[j]) <= r + 1e-9


class TestTraceStatistics:
    def test_first_meeting_times(self):
        trace, _ = make_trace()
        agents = list(range(10))
        meetings = trace.first_meeting_times(agents)
        for agent, t in meetings.items():
            # The first contact of this agent anywhere in the trace is t.
            earlier = [
                s
                for s, pairs in enumerate(trace.step_pairs)
                if pairs.size and agent in np.unique(pairs)
            ]
            assert min(earlier) == t

    def test_pair_contact_steps_sorted(self):
        trace, _ = make_trace()
        for steps in trace.pair_contact_steps().values():
            assert steps == sorted(steps)

    def test_durations_and_gaps_consistent(self):
        """Durations of a pair's runs sum to its total contact steps."""
        trace, _ = make_trace(steps=25)
        pair_steps = trace.pair_contact_steps()
        total_steps = sum(len(s) for s in pair_steps.values())
        assert trace.contact_durations().sum() == total_steps

    def test_inter_contact_gaps_exceed_one(self):
        trace, _ = make_trace(steps=25)
        gaps = trace.inter_contact_times()
        if gaps.size:
            assert gaps.min() > 1

    def test_synthetic_trace(self):
        """Hand-built trace: pair (0,1) touches at steps 0,1,2 and 5."""
        trace = ContactTrace(n=3, n_steps=6)
        pairs = [
            np.array([[0, 1]]),
            np.array([[0, 1]]),
            np.array([[0, 1]]),
            np.empty((0, 2), dtype=int),
            np.empty((0, 2), dtype=int),
            np.array([[0, 1]]),
            np.empty((0, 2), dtype=int),
        ]
        trace.step_pairs = pairs
        assert trace.pair_contact_steps() == {(0, 1): [0, 1, 2, 5]}
        assert sorted(trace.contact_durations().tolist()) == [1.0, 3.0]
        assert trace.inter_contact_times().tolist() == [3.0]
        assert trace.first_meeting_times([0, 1, 2]) == {0: 0, 1: 0}
