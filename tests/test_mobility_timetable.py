"""Timetable mobility: value-object validation, transit dynamics, and the
ferry-refactor regression.

The load-bearing test here is :class:`TestFerryRegression`: ``FerryPatrol``
is now a zero-dwell single-route ``TimetableMobility``, and its positions
must match the pre-refactor arc-length implementation (pinned below as
``_LegacyFerryPatrol``) bit for bit at every step, for every route shape,
fleet size, and step size.
"""

import numpy as np
import pytest

from repro.mobility import (
    BatchTimetableMobility,
    FerryPatrol,
    Timetable,
    TimetableMobility,
    grid_shuttle_timetable,
    loop_timetable,
    rectangle_route,
)

SIDE = 10.0
SPEED = 1.0


class _LegacyFerryPatrol:
    """The pre-PR 9 ``FerryPatrol`` arc-length implementation, verbatim.

    Pinned here so the refactored ferry (timetable zero-dwell fast path)
    is provably bit-exact against the historical trajectories.
    """

    def __init__(self, n, side, speed, route=None, inset=None):
        if route is None:
            route = rectangle_route(side, side / 8.0 if inset is None else inset)
        route = np.asarray(route, dtype=np.float64)
        self.route = route
        segments = np.diff(np.vstack([route, route[:1]]), axis=0)
        self._seg_lengths = np.sqrt(np.sum(segments * segments, axis=1))
        self._cum = np.concatenate([[0.0], np.cumsum(self._seg_lengths)])
        self.route_length = float(self._cum[-1])
        self._arc = (np.arange(n) / n) * self.route_length
        self.speed = speed

    def _positions_at_arc(self, arc):
        arc = np.mod(arc, self.route_length)
        seg = np.clip(
            np.searchsorted(self._cum, arc, side="right") - 1,
            0,
            len(self._seg_lengths) - 1,
        )
        offset = arc - self._cum[seg]
        start = self.route[seg]
        nxt = self.route[(seg + 1) % self.route.shape[0]]
        direction = (nxt - start) / self._seg_lengths[seg][:, None]
        return start + direction * offset[:, None]

    @property
    def positions(self):
        return self._positions_at_arc(self._arc)

    def step(self, dt=1.0):
        self._arc = np.mod(self._arc + self.speed * dt, self.route_length)
        return self.positions


class TestTimetableValidation:
    def test_single_route_accepted_as_bare_array(self):
        tt = Timetable(np.array([[1.0, 1.0], [9.0, 1.0], [5.0, 8.0]]))
        assert tt.n_routes == 1
        assert tt.lengths[0] > 0

    def test_single_route_accepted_as_waypoint_list(self):
        tt = Timetable([[1.0, 1.0], [9.0, 1.0]])
        assert tt.n_routes == 1

    def test_multiple_routes(self):
        tt = Timetable([[[1, 1], [9, 1]], [[1, 2], [9, 2], [5, 8]]], dwell=1.0)
        assert tt.n_routes == 2
        assert [len(d) for d in tt.dwell] == [2, 3]

    def test_bad_route_shapes_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            Timetable(np.array([[1.0, 1.0]]))
        with pytest.raises(ValueError, match="shape"):
            Timetable(np.array([[1.0, 1.0, 0.0], [2.0, 2.0, 0.0]]))

    def test_zero_length_segment_rejected(self):
        with pytest.raises(ValueError, match="zero-length"):
            Timetable(np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]]))

    def test_empty_routes_rejected(self):
        with pytest.raises(ValueError, match="at least one route"):
            Timetable([])

    def test_dwell_broadcast_and_per_stop(self):
        route = np.array([[1.0, 1.0], [9.0, 1.0], [5.0, 8.0]])
        assert np.array_equal(Timetable([route], dwell=2.0).dwell[0], [2.0, 2.0, 2.0])
        tt = Timetable([route], dwell=[[1.0, 0.0, 3.0]])
        assert np.array_equal(tt.dwell[0], [1.0, 0.0, 3.0])

    def test_bad_dwell_rejected(self):
        route = np.array([[1.0, 1.0], [9.0, 1.0]])
        with pytest.raises(ValueError, match="non-negative"):
            Timetable([route], dwell=-1.0)
        with pytest.raises(ValueError, match="shape"):
            Timetable([route], dwell=[[1.0, 2.0, 3.0]])

    def test_headway_and_capacity_validated(self):
        route = np.array([[1.0, 1.0], [9.0, 1.0]])
        with pytest.raises(ValueError, match="headway"):
            Timetable([route], headway=0.0)
        with pytest.raises(ValueError, match="capacity"):
            Timetable([route], capacity=0)

    def test_zero_dwell_flag_and_period(self):
        route = np.array([[2.0, 5.0], [8.0, 5.0]])  # out-and-back, length 12
        assert Timetable([route]).zero_dwell
        tt = Timetable([route], dwell=2.0)
        assert not tt.zero_dwell
        assert tt.period(1.0) == pytest.approx(12.0 + 4.0)


class TestBuilders:
    def test_loop_timetable_subsumes_rectangle_route(self):
        tt = loop_timetable(SIDE, inset=2.0, dwell=1.5)
        assert np.array_equal(tt.routes[0], rectangle_route(SIDE, 2.0))
        assert np.array_equal(tt.dwell[0], [1.5] * 4)

    def test_loop_timetable_default_inset(self):
        assert np.array_equal(
            loop_timetable(SIDE).routes[0], rectangle_route(SIDE, SIDE / 8.0)
        )

    def test_grid_shuttle_layout(self):
        tt = grid_shuttle_timetable(SIDE, lines=2, inset=1.0)
        assert tt.n_routes == 4  # 2 horizontal + 2 vertical
        for stops in tt.routes:
            assert stops.shape == (2, 2)
            assert np.all(stops >= 1.0) and np.all(stops <= SIDE - 1.0)

    def test_grid_shuttle_single_line_centered(self):
        tt = grid_shuttle_timetable(SIDE, lines=1, inset=1.0)
        assert tt.n_routes == 2
        assert tt.routes[0][0, 1] == pytest.approx(SIDE / 2.0)

    def test_grid_shuttle_validation(self):
        with pytest.raises(ValueError, match="lines"):
            grid_shuttle_timetable(SIDE, lines=0)
        with pytest.raises(ValueError, match="inset"):
            grid_shuttle_timetable(SIDE, inset=SIDE)


class TestVehicleCycles:
    def test_route_outside_square_rejected(self):
        route = np.array([[1.0, 1.0], [SIDE + 1.0, 1.0]])
        with pytest.raises(ValueError, match="inside the square"):
            TimetableMobility(2, SIDE, SPEED, routes=[route])

    def test_rider_bounds_validated(self):
        with pytest.raises(ValueError, match="riders"):
            TimetableMobility(4, SIDE, SPEED, riders=4)
        with pytest.raises(ValueError, match="riders"):
            TimetableMobility(4, SIDE, SPEED, riders=-1)

    def test_dwell_cycle_rests_at_each_stop(self):
        # One vehicle, square loop of perimeter 16, speed 1, dwell 2: the
        # cycle is 4x (4 moving steps + 2 dwelling steps) = period 24.
        tt = loop_timetable(8.0, inset=2.0, dwell=2.0)
        model = TimetableMobility(1, 8.0, 1.0, timetable=tt)
        assert tt.period(1.0) == pytest.approx(24.0)
        start = model.positions
        dwell_steps = 0
        stop_hits = set()
        for _ in range(24):
            model.step(1.0)
            if model.dwelling_mask[0]:
                dwell_steps += 1
                stop_hits.add(tuple(np.round(model.vehicle_positions[0], 9)))
        assert np.allclose(model.positions, start, atol=1e-9)
        assert dwell_steps == 8  # 2 dwell steps at each of the 4 stops
        assert stop_hits == {tuple(p) for p in tt.routes[0]}

    def test_zero_dwell_never_dwells(self):
        model = TimetableMobility(3, SIDE, SPEED, timetable=loop_timetable(SIDE))
        for _ in range(40):
            model.step(1.0)
            assert not model.dwelling_mask.any()

    def test_headway_staggers_vehicles(self):
        tt = loop_timetable(SIDE, inset=2.0, headway=3.0)
        model = TimetableMobility(2, SIDE, SPEED, timetable=tt)
        p = model.vehicle_positions
        # Second vehicle starts headway*speed = 3 arc units behind the first.
        assert not np.allclose(p[0], p[1])
        legacy_gap = np.linalg.norm(p[1] - np.array([2.0 + 3.0, 2.0]))
        assert p[1][1] == pytest.approx(2.0) and legacy_gap == pytest.approx(0.0)

    def test_vehicles_split_across_routes(self):
        tt = grid_shuttle_timetable(SIDE, lines=2, inset=1.0)
        model = TimetableMobility(6, SIDE, SPEED, timetable=tt)
        # 6 vehicles over 4 routes: route-major 2/2/1/1.
        assert model.n_vehicles == 6
        counts = np.bincount(model._engine.veh_route, minlength=4)
        assert counts.tolist() == [2, 2, 1, 1]

    def test_speed_zero_vehicles_stay_put(self):
        model = TimetableMobility(2, SIDE, 0.0, timetable=loop_timetable(SIDE, dwell=1.0))
        start = model.positions
        for _ in range(5):
            model.step(1.0)
        assert np.array_equal(model.positions, start)


class TestRiders:
    def transit(self, seed=0, **overrides):
        kwargs = dict(
            riders=6,
            timetable=Timetable(
                [np.array([[2.0, 5.0], [8.0, 5.0]])], dwell=2.0, capacity=1
            ),
            board_radius=20.0,  # everyone is always in range
        )
        kwargs.update(overrides)
        return TimetableMobility(8, SIDE, SPEED, rng=np.random.default_rng(seed), **kwargs)

    def test_boarding_alighting_and_capacity(self):
        model = self.transit()
        boarded = alighted = False
        prev = model.riding_mask
        for _ in range(200):
            model.step(1.0)
            now = model.riding_mask
            boarded |= bool(np.any(~prev & now))
            alighted |= bool(np.any(prev & ~now))
            # Capacity respected and loads consistent at every step.
            assert model.vehicle_loads.max() <= 1
            assert model.vehicle_loads.sum() == now.sum()
            prev = now
        assert boarded and alighted

    def test_deterministic_tie_break_lowest_agent_id(self):
        # board_radius covers the whole square, so every walking rider is
        # eligible the moment the single vehicle dwells: capacity 1 must go
        # to the lowest agent id.
        model = self.transit(riders=7)
        for _ in range(200):
            model.step(1.0)
            riding = np.nonzero(model.riding_mask)[0]
            if riding.size:
                assert riding.tolist() == [0]
                break
        else:
            pytest.fail("no rider ever boarded")

    def test_riders_track_their_vehicle(self):
        model = self.transit()
        for _ in range(200):
            model.step(1.0)
            riding = np.nonzero(model.riding_mask)[0]
            if riding.size:
                rider_pos = model.positions[riding[0]]
                # r_vehicle holds flat vehicle indices (0..V-1 for B=1).
                vehicle_pos = model.vehicle_positions[model._engine.r_vehicle[riding[0]]]
                assert np.array_equal(rider_pos, vehicle_pos)

    def test_zero_dwell_service_never_boards(self):
        # Ferries never stop, so nobody can board them.
        model = self.transit(
            timetable=Timetable([np.array([[2.0, 5.0], [8.0, 5.0]])], capacity=1)
        )
        for _ in range(100):
            model.step(1.0)
            assert not model.riding_mask.any()

    def test_same_seed_reproducible(self):
        a, b = self.transit(seed=11), self.transit(seed=11)
        for _ in range(60):
            assert np.array_equal(a.step(1.0), b.step(1.0))


class TestFerryRegression:
    """Refactored FerryPatrol == pre-refactor arc-length implementation."""

    CASES = [
        dict(n=1, route=None, inset=None),
        dict(n=3, route=None, inset=1.9),
        dict(n=5, route=None, inset=0.0),
        dict(n=4, route=np.array([[1.0, 1.0], [8.0, 2.0], [4.0, 7.0]])),
        dict(n=7, route=np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0], [0.0, 10.0]])),
    ]

    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("dt", [1.0, 0.37, 2.5])
    def test_positions_bit_exact_vs_legacy(self, case, dt):
        legacy = _LegacyFerryPatrol(case["n"], SIDE, 0.7, route=case.get("route"), inset=case.get("inset"))
        ferry = FerryPatrol(case["n"], SIDE, 0.7, route=case.get("route"), inset=case.get("inset"))
        assert np.array_equal(ferry.positions, legacy.positions)
        for _ in range(150):
            assert np.array_equal(ferry.step(dt), legacy.step(dt))
        assert np.array_equal(ferry._arc, legacy._arc)

    def test_batch_ferry_bit_exact_vs_legacy(self):
        rngs = [np.random.default_rng(s) for s in np.random.SeedSequence(9).spawn(3)]
        from repro.mobility import BatchFerryPatrol

        batch = BatchFerryPatrol(4, SIDE, 0.7, rngs, inset=1.9)
        legacy = _LegacyFerryPatrol(4, SIDE, 0.7, inset=1.9)
        for _ in range(100):
            expected = legacy.step(1.0)
            got = batch.step(1.0)
            for b in range(3):
                assert np.array_equal(got[b], expected)

    def test_jitter_honors_rng(self):
        # Same seed -> same jittered phases; different seed -> different.
        a = FerryPatrol(4, SIDE, 0.7, rng=np.random.default_rng(5), jitter=0.5)
        b = FerryPatrol(4, SIDE, 0.7, rng=np.random.default_rng(5), jitter=0.5)
        c = FerryPatrol(4, SIDE, 0.7, rng=np.random.default_rng(6), jitter=0.5)
        assert np.array_equal(a.positions, b.positions)
        assert not np.array_equal(a.positions, c.positions)

    def test_no_jitter_ignores_rng_state(self):
        a = FerryPatrol(4, SIDE, 0.7, rng=np.random.default_rng(5))
        b = FerryPatrol(4, SIDE, 0.7, rng=np.random.default_rng(99))
        assert np.array_equal(a.positions, b.positions)

    def test_jitter_validated(self):
        with pytest.raises(ValueError, match="jitter"):
            FerryPatrol(4, SIDE, 0.7, jitter=1.5)


class TestBatchTimetable:
    def test_batch_matches_scalar_with_riders(self):
        children = np.random.SeedSequence(31).spawn(3)
        kwargs = dict(riders=20, dwell=2.0, capacity=3)
        scalars = [
            TimetableMobility(26, SIDE, SPEED, rng=np.random.default_rng(s), **kwargs)
            for s in children
        ]
        batch = BatchTimetableMobility(
            26, SIDE, SPEED, [np.random.default_rng(s) for s in children], **kwargs
        )
        assert np.array_equal(
            batch.positions, np.stack([m.positions for m in scalars])
        )
        for _ in range(80):
            expected = np.stack([m.step(1.0) for m in scalars])
            assert np.array_equal(batch.step(1.0), expected)

    def test_frozen_replicas_do_not_move_or_draw(self):
        def build():
            rngs = [np.random.default_rng(s) for s in np.random.SeedSequence(7).spawn(3)]
            return BatchTimetableMobility(
                20, SIDE, SPEED, rngs, riders=15, dwell=2.0, capacity=2
            )

        frozen = build()
        reference = build()
        active = np.array([True, False, True])
        for _ in range(40):
            frozen.step(1.0, active=active)
            reference.step(1.0)
        pristine = build()
        assert np.array_equal(frozen.positions[1], pristine.positions[1])
        for b in (0, 2):
            assert np.array_equal(frozen.positions[b], reference.positions[b])
