"""Integration tests: cross-validation of independent implementations.

The flooding *protocol* driver and the evolving-graph *temporal BFS* are
two separate code paths computing the same quantity; the neighbor-engine
backends are interchangeable; the paper's structural bounds must hold on
real runs.  These tests wire whole subsystems together.
"""

import math

import numpy as np
import pytest

from repro.core import theory
from repro.geometry.neighbors import available_backends
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.network.evolving import temporal_bfs
from repro.network.snapshots import SnapshotSeries
from repro.protocols.flooding import FloodingProtocol
from repro.simulation.config import FloodingConfig, standard_config
from repro.simulation.runner import run_flooding

SIDE = 20.0
N = 300


class TestFloodingEqualsTemporalBfs:
    """Replaying recorded snapshots through the protocol must give exactly
    the per-agent informed times of the temporal BFS."""

    @pytest.mark.parametrize("multi_hop", [False, True])
    def test_equivalence(self, multi_hop):
        model = ManhattanRandomWaypoint(N, SIDE, 0.4, rng=np.random.default_rng(3))
        series = SnapshotSeries.record(model, 60, radius=2.2)
        source = 5

        bfs_times = temporal_bfs(series, source, multi_hop=multi_hop)

        protocol = FloodingProtocol(N, SIDE, 2.2, source, multi_hop=multi_hop)
        for t in range(1, series.n_steps + 1):
            protocol.step(series.positions_at(t))
        protocol_times = protocol.informed_at

        finite = np.isfinite(bfs_times)
        assert np.array_equal(finite, np.isfinite(protocol_times))
        assert np.allclose(bfs_times[finite], protocol_times[finite])


class TestBackendEquivalence:
    def test_flooding_identical_across_backends(self):
        model = ManhattanRandomWaypoint(N, SIDE, 0.4, rng=np.random.default_rng(4))
        series = SnapshotSeries.record(model, 40, radius=2.0)
        results = {}
        for backend in available_backends():
            protocol = FloodingProtocol(N, SIDE, 2.0, 0, backend=backend)
            for t in range(1, series.n_steps + 1):
                protocol.step(series.positions_at(t))
            results[backend] = protocol.informed_at.copy()
        reference = results.popitem()[1]
        for times in results.values():
            finite = np.isfinite(reference)
            assert np.array_equal(finite, np.isfinite(times))
            assert np.allclose(reference[finite], times[finite])


class TestPaperStructuralBounds:
    def test_flooding_respects_geometric_lower_bound(self):
        """Information travels at most R + 2v per step: the measured time
        must exceed distance/(R + 2v) for the farthest initial agent."""
        config = FloodingConfig(
            n=N, side=SIDE, radius=2.0, speed=0.3, max_steps=2000, source=0, seed=5
        )
        # Build by hand to capture initial positions.
        from repro.simulation.runner import build_model, build_protocol

        root = np.random.SeedSequence(config.seed)
        mob_ss, proto_ss, _src = root.spawn(3)
        model = build_model(config, np.random.default_rng(mob_ss))
        positions0 = model.positions
        protocol = build_protocol(config, 0, np.random.default_rng(proto_ss))
        steps = 0
        while not protocol.is_complete() and steps < config.max_steps:
            protocol.step(model.step())
            steps += 1
        assert protocol.is_complete()
        farthest = float(np.max(np.linalg.norm(positions0 - positions0[0], axis=1)))
        lower = theory.geometric_lower_bound(farthest, config.radius, config.speed)
        assert steps >= math.floor(lower)

    def test_informed_times_one_hop_feasible(self):
        """Every newly informed agent had an informed neighbor that step."""
        model = ManhattanRandomWaypoint(N, SIDE, 0.4, rng=np.random.default_rng(6))
        series = SnapshotSeries.record(model, 50, radius=2.0)
        protocol = FloodingProtocol(N, SIDE, 2.0, 0)
        for t in range(1, series.n_steps + 1):
            protocol.step(series.positions_at(t))
        times = protocol.informed_at
        for t in range(1, series.n_steps + 1):
            newly = np.nonzero(times == t)[0]
            earlier = np.nonzero(times < t)[0]
            if newly.size == 0:
                continue
            positions = series.positions_at(t)
            dists = np.linalg.norm(
                positions[newly][:, None] - positions[earlier][None, :], axis=2
            )
            assert np.all(dists.min(axis=1) <= 2.0 + 1e-9)

    def test_multi_hop_never_slower(self):
        base = FloodingConfig(n=N, side=SIDE, radius=1.4, speed=0.3, max_steps=2000, seed=7)
        single = run_flooding(base)
        multi = run_flooding(base.with_options(multi_hop=True))
        assert multi.flooding_time <= single.flooding_time

    def test_larger_radius_never_slower_same_mobility(self):
        """With identical seeds (same trajectories), growing R cannot hurt."""
        base = FloodingConfig(n=N, side=SIDE, radius=1.5, speed=0.3, max_steps=2000, seed=8)
        small = run_flooding(base)
        large = run_flooding(base.with_options(radius=3.0))
        assert large.flooding_time <= small.flooding_time

    def test_cor12_regime_end_to_end(self):
        """Above the large-R threshold: no suburb, flooding under 18 L/R."""
        n = 500
        side = math.sqrt(n)
        radius = 1.1 * theory.large_radius_threshold(n, side)
        config = FloodingConfig(
            n=n, side=side, radius=radius, speed=theory.speed_assumption_max(radius),
            max_steps=1000, seed=9,
        )
        result = run_flooding(config)
        assert result.completed
        assert result.flooding_time <= theory.cz_flooding_bound(side, radius)


class TestSourcePlacementCases:
    """Theorem 3 proves both source cases; both must complete."""

    @pytest.mark.parametrize("source_mode", ["central", "suburb", "uniform"])
    def test_completes_from_any_source(self, source_mode):
        config = standard_config(
            800, radius_factor=1.4, speed_fraction=0.25, source=source_mode,
            max_steps=5000, seed=10,
        )
        result = run_flooding(config)
        assert result.completed

    def test_suburb_source_slower_or_equal_on_average(self):
        central = standard_config(
            800, radius_factor=1.3, source="central", max_steps=5000, seed=11
        )
        suburb = standard_config(
            800, radius_factor=1.3, source="suburb", max_steps=5000, seed=11
        )
        from repro.simulation.runner import run_trials

        c_times = [r.flooding_time for r in run_trials(central, 4)]
        s_times = [r.flooding_time for r in run_trials(suburb, 4)]
        assert np.mean(s_times) >= np.mean(c_times) * 0.7
