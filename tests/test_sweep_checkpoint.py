"""Checkpoint/resume: fault injection, bit-exact resume, loud failure modes.

The PR 6 acceptance gate: a sweep killed mid-flight — a raising observer,
a crashing parent, a SIGKILL'd pool worker — must resume from its
checkpoint to **byte-identical** results vs an uninterrupted run, across
engines and ``jobs`` values.  The second half of the file attacks the
checkpoint files themselves: every field round-trips, and corruption,
truncation, schema bumps, and config edits are refused loudly instead of
silently resuming wrong state.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.simulation.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    SweepCheckpoint,
    config_fingerprint,
    decode_result,
    encode_result,
)
from repro.simulation.config import FloodingConfig, standard_config
from repro.simulation.results import FloodingResult
from repro.simulation.runner import run_trials
from repro.simulation.sweep import SweepPlan, SweepPoint, StoppingRule, run_sweep

BASE = standard_config(140, radius_factor=1.1, max_steps=600, seed=5)


def fingerprint(results):
    """The full observable outcome of a trial list."""
    return [
        (
            r.flooding_time,
            r.completed,
            r.stalled,
            r.n_steps,
            r.source,
            tuple(np.asarray(r.informed_history).tolist()),
            r.cz_completion_time,
            r.suburb_completion_time,
            r.source_in_central_zone,
        )
        for r in results
    ]


def small_plan():
    plan = SweepPlan()
    plan.add(BASE, 3, key="base")
    plan.add(BASE.with_options(radius=BASE.radius * 1.5), 2, key="wide")
    plan.add(BASE.with_options(seed=11), 4, key="reseeded")
    return plan


def table(points):
    """What an experiment would render: per-point fingerprints + summaries."""
    return [
        (p.key, p.n_trials, p.engine, fingerprint(p.results), p.summary)
        for p in points
    ]


class _WriteBomb(RuntimeError):
    """Injected mid-sweep failure (distinguishable from real errors)."""


def _arm_write_bomb(monkeypatch, detonate_after: int):
    """Make checkpoint writes raise after K successful group flushes.

    Patching the store's ``write_group`` injects the fault in the *parent*
    scheduler loop — after results were computed and some were persisted —
    which makes the crash point deterministic regardless of engine or
    ``jobs`` fan-out (pool workers never see the patch, and don't need to).
    """
    writes = {"n": 0}
    original = SweepCheckpoint.write_group

    def bombed(self, index, fp, results):
        if writes["n"] >= detonate_after:
            raise _WriteBomb(f"injected failure after {detonate_after} writes")
        writes["n"] += 1
        return original(self, index, fp, results)

    monkeypatch.setattr(SweepCheckpoint, "write_group", bombed)
    return writes


class TestKillAndResume:
    """Crash the sweep mid-flight; resume must be byte-identical."""

    @pytest.mark.parametrize("engine", ["scalar", "batch", "auto"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_crash_after_first_flush_resumes_bit_exact(
        self, tmp_path, monkeypatch, engine, jobs
    ):
        # Small batches so several checkpoint flushes happen per run, and
        # the bomb goes off with genuinely partial state on disk.  The
        # invariant: interrupted + resumed == the same run uninterrupted.
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
        expected = table(run_sweep(small_plan(), engine=engine, jobs=jobs, stopping=rule))
        ck = str(tmp_path / "ck")

        _arm_write_bomb(monkeypatch, detonate_after=2)
        with pytest.raises(_WriteBomb):
            run_sweep(
                small_plan(), engine=engine, jobs=jobs, stopping=rule, checkpoint=ck
            )
        monkeypatch.undo()

        resumed = run_sweep(
            small_plan(), engine=engine, jobs=jobs, stopping=rule,
            checkpoint=ck, resume=True,
        )
        assert table(resumed) == expected, (engine, jobs)

    def test_fixed_budget_checkpoint_matches_fast_path(self, tmp_path, monkeypatch):
        """No stopping rule at all: the checkpointed sequential run (and a
        crash + resume of it) reproduces the single-pass tables exactly."""
        expected = table(run_sweep(small_plan()))
        ck = str(tmp_path / "ck")
        _arm_write_bomb(monkeypatch, detonate_after=2)
        with pytest.raises(_WriteBomb):
            run_sweep(small_plan(), checkpoint=ck)
        monkeypatch.undo()
        resumed = run_sweep(small_plan(), checkpoint=ck, resume=True)
        assert table(resumed) == expected

    @pytest.mark.parametrize("detonate_after", [0, 1, 3])
    def test_every_crash_point_resumes_bit_exact(
        self, tmp_path, monkeypatch, detonate_after
    ):
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
        expected = table(run_sweep(small_plan(), stopping=rule))
        ck = str(tmp_path / "ck")
        _arm_write_bomb(monkeypatch, detonate_after=detonate_after)
        with pytest.raises(_WriteBomb):
            run_sweep(small_plan(), stopping=rule, checkpoint=ck)
        monkeypatch.undo()
        resumed = run_sweep(small_plan(), stopping=rule, checkpoint=ck, resume=True)
        assert table(resumed) == expected, detonate_after

    def test_double_resume_is_idempotent(self, tmp_path, monkeypatch):
        ck = str(tmp_path / "ck")
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
        _arm_write_bomb(monkeypatch, detonate_after=2)
        with pytest.raises(_WriteBomb):
            run_sweep(small_plan(), stopping=rule, checkpoint=ck)
        monkeypatch.undo()
        first = run_sweep(small_plan(), stopping=rule, checkpoint=ck, resume=True)
        # Everything is on disk now; a second resume recomputes nothing
        # and reproduces the tables from the files alone.
        second = run_sweep(small_plan(), stopping=rule, checkpoint=ck, resume=True)
        assert table(second) == table(first)

    def test_budget_capped_run_resumes_to_completion(self, tmp_path):
        ck = str(tmp_path / "ck")
        plan = SweepPlan()
        plan.add(BASE, 5, key="x", stopping=StoppingRule(ci_width=1e-12, batch=1, min_trials=3))
        partial = run_sweep(plan, checkpoint=ck, trial_budget=4)
        assert partial[0].n_trials == 4  # 3 funded minimum + 1 budgeted batch
        (full,) = run_sweep(plan, checkpoint=ck, resume=True)
        assert full.n_trials == 5
        assert fingerprint(full.results) == fingerprint(run_trials(BASE, 5))


def _raising_factory(config):
    """Observer factory whose observer dies mid-trial (picklable)."""
    return [_RaisingObserver()]


class _RaisingObserver:
    def observe(self, t, positions, protocol, newly):
        raise _WriteBomb("observer raised mid-trial")


class TestRaisingObserverLeg:
    def test_raising_observer_point_fails_but_checkpoint_survives(self, tmp_path):
        """A crash in a *scalar observer point* must not poison the other
        groups' checkpoints: non-observer groups that flushed before the
        crash resume bit-exactly; the observer point recomputes."""
        ck = str(tmp_path / "ck")
        plan = SweepPlan()
        plan.add(BASE, 2, key="plain")
        plan.add(BASE.with_options(seed=17), 1, key="boom", observer_factory=_raising_factory)
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
        with pytest.raises(_WriteBomb):
            run_sweep(plan, stopping=rule, checkpoint=ck)

        good = SweepPlan()
        good.add(BASE, 2, key="plain")
        good.add(BASE.with_options(seed=17), 1, key="ok")
        resumed = run_sweep(good, stopping=rule, checkpoint=ck, resume=True)
        expected = run_sweep(good, stopping=rule)
        assert table(resumed) == table(expected)

    def test_observer_groups_never_hit_the_store(self, tmp_path, monkeypatch):
        """Observer results carry live objects — the store must skip them
        (they recompute on resume) rather than crash on serialization."""
        from repro.simulation.metrics import InformedRecorder

        def recorder_factory(config):
            return [InformedRecorder()]

        ck = str(tmp_path / "ck")
        plan = SweepPlan()
        plan.add(BASE, 2, key="obs", observer_factory=recorder_factory)
        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
        (point,) = run_sweep(plan, stopping=rule, checkpoint=ck)
        assert len(point.observers()) == 2
        # Only the manifest exists: no group file was written.
        assert os.listdir(ck) == ["manifest.json"]


_KILL_SCRIPT = textwrap.dedent(
    """
    import os, signal, sys
    sys.path.insert(0, {src!r})
    from repro.simulation.checkpoint import SweepCheckpoint
    from repro.simulation.config import standard_config
    from repro.simulation.sweep import SweepPlan, StoppingRule, run_sweep

    BASE = standard_config(140, radius_factor=1.1, max_steps=600, seed=5)
    plan = SweepPlan()
    plan.add(BASE, 3, key="base")
    plan.add(BASE.with_options(radius=BASE.radius * 1.5), 2, key="wide")
    plan.add(BASE.with_options(seed=11), 4, key="reseeded")

    # SIGKILL the whole process group (parent + jobs=2 pool workers) after
    # the second checkpoint flush — an uncatchable kill mid-sweep.
    writes = 0
    original = SweepCheckpoint.write_group
    def killing(self, index, fp, results):
        global writes
        original(self, index, fp, results)
        writes += 1
        if writes >= 2:
            os.kill(os.getpid(), signal.SIGKILL)
    SweepCheckpoint.write_group = killing

    rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
    run_sweep(plan, engine={engine!r}, jobs=2, stopping=rule, checkpoint={ck!r})
    """
)


class TestSigkillLeg:
    """A jobs=2 sweep SIGKILLed mid-run: resume from whatever hit disk."""

    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_sigkilled_parallel_sweep_resumes_bit_exact(self, tmp_path, engine):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        ck = str(tmp_path / "ck")
        script = _KILL_SCRIPT.format(src=os.path.abspath(src), ck=ck, engine=engine)
        # Output goes to files, not pipes: the SIGKILL orphans the pool
        # workers, which would hold a pipe open and deadlock capture.
        errpath = tmp_path / "stderr.txt"
        with open(errpath, "wb") as err:
            proc = subprocess.Popen(
                [sys.executable, "-c", script],
                stdout=subprocess.DEVNULL,
                stderr=err,
                start_new_session=True,  # contain stray pool workers
            )
            try:
                returncode = proc.wait(timeout=120)
            finally:
                try:  # reap the orphaned jobs=2 workers
                    os.killpg(proc.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
        assert returncode == -signal.SIGKILL, errpath.read_text()
        assert os.path.exists(os.path.join(ck, "manifest.json"))
        # At least one group flushed before the kill: the resume genuinely
        # restores state rather than recomputing everything.
        assert any(name.startswith("group_") for name in os.listdir(ck))

        rule = StoppingRule(ci_width=1e-12, batch=1, min_trials=1)
        resumed = run_sweep(
            small_plan(), engine=engine, jobs=2, stopping=rule,
            checkpoint=ck, resume=True,
        )
        expected = run_sweep(small_plan(), engine=engine, jobs=2, stopping=rule)
        assert table(resumed) == table(expected)


class TestFingerprint:
    """Satellite: dedup hashing canonicalizes dict-valued config fields."""

    def test_neighbor_options_key_order_is_canonical(self):
        a = BASE.with_options(neighbor_options={"incremental": False, "prune": False})
        b = BASE.with_options(neighbor_options={"prune": False, "incremental": False})
        assert a == b  # dataclass equality was always order-insensitive
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_mobility_options_key_order_is_canonical(self):
        a = BASE.with_options(
            mobility="mrwp-speed", mobility_options={"v_min": 0.1, "v_max": 0.5}
        )
        b = BASE.with_options(
            mobility="mrwp-speed", mobility_options={"v_max": 0.5, "v_min": 0.1}
        )
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_different_configs_differ(self):
        assert config_fingerprint(BASE) != config_fingerprint(
            BASE.with_options(seed=BASE.seed + 1)
        )
        assert config_fingerprint(BASE) != config_fingerprint(
            BASE.with_options(neighbor_options={"prune": False})
        )

    def test_reordered_dict_points_share_trials(self, monkeypatch):
        """The regression: logically identical configs execute once."""
        sweep_mod = sys.modules["repro.simulation.sweep"]
        calls = []
        original = sweep_mod._run_sweep_job

        def counting(args):
            calls.append(args)
            return original(args)

        monkeypatch.setattr(sweep_mod, "_run_sweep_job", counting)
        plan = SweepPlan()
        plan.add(
            BASE.with_options(neighbor_options={"incremental": True, "prune": True}),
            3, key="a",
        )
        plan.add(
            BASE.with_options(neighbor_options={"prune": True, "incremental": True}),
            2, key="b",
        )
        points = run_sweep(plan, engine="batch")
        assert len(calls) == 1  # one deduplicated batch job serves both
        assert fingerprint(points[1].results) == fingerprint(points[0].results)[:2]


class TestResultCodec:
    """Every FloodingResult field round-trips through the JSON codec."""

    def _roundtrip(self, result, config):
        blob = json.dumps(encode_result(result), allow_nan=True)
        return decode_result(json.loads(blob), config)

    def test_completed_trial_roundtrips(self):
        (original,) = run_trials(BASE, 1)
        restored = self._roundtrip(original, BASE)
        assert fingerprint([restored]) == fingerprint([original])
        assert restored.final_coverage == original.final_coverage
        assert restored.informed_history.dtype == original.informed_history.dtype
        assert restored.extras["config"] is BASE

    def test_infinite_flooding_time_roundtrips(self):
        hopeless = BASE.with_options(max_steps=1)
        (original,) = run_trials(hopeless, 1)
        assert original.flooding_time == float("inf")
        restored = self._roundtrip(original, hopeless)
        assert restored.flooding_time == float("inf")
        assert restored.completed is False

    def test_protocol_extras_roundtrip(self):
        config = BASE.with_options(n=100, protocol="sir", max_steps=200)
        (original,) = run_trials(config, 1)
        restored = self._roundtrip(original, config)
        extras_o = {k: v for k, v in original.extras.items() if k != "config"}
        extras_r = {k: v for k, v in restored.extras.items() if k != "config"}
        assert extras_r == extras_o

    def test_observer_results_are_refused(self):
        from repro.simulation.metrics import InformedRecorder

        (original,) = run_trials(BASE, 1)
        original.extras["observers"] = [InformedRecorder()]
        with pytest.raises(CheckpointError, match="observer"):
            encode_result(original)

    def test_unserializable_extras_fail_loudly(self):
        (original,) = run_trials(BASE, 1)
        original.extras["weird"] = object()
        with pytest.raises(CheckpointError, match="weird"):
            encode_result(original)

    def test_missing_field_fails_loudly(self):
        (original,) = run_trials(BASE, 1)
        data = encode_result(original)
        del data["informed_history"]
        with pytest.raises(CheckpointError, match="informed_history"):
            decode_result(data, BASE)


class TestStoreRobustness:
    """Corrupt / truncated / mismatched checkpoints are refused loudly."""

    def _populated(self, tmp_path):
        ck = str(tmp_path / "ck")
        run_sweep(small_plan(), checkpoint=ck)
        return ck

    def test_resume_without_checkpoint_dir_raises(self, tmp_path):
        with pytest.raises(ValueError, match="resume"):
            run_sweep(small_plan(), resume=True)

    def test_resume_from_empty_dir_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to resume"):
            run_sweep(small_plan(), checkpoint=str(tmp_path / "void"), resume=True)

    def test_fresh_run_refuses_existing_checkpoint(self, tmp_path):
        ck = self._populated(tmp_path)
        with pytest.raises(CheckpointError, match="resume"):
            run_sweep(small_plan(), checkpoint=ck)

    def test_truncated_group_file_is_refused(self, tmp_path):
        ck = self._populated(tmp_path)
        path = os.path.join(ck, "group_0000.json")
        blob = open(path).read()
        open(path, "w").write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="corrupt|truncated"):
            run_sweep(small_plan(), checkpoint=ck, resume=True)

    def test_truncated_manifest_is_refused(self, tmp_path):
        ck = self._populated(tmp_path)
        path = os.path.join(ck, "manifest.json")
        open(path, "w").write("{\"schema_version\": 1, ")
        with pytest.raises(CheckpointError, match="corrupt|truncated"):
            run_sweep(small_plan(), checkpoint=ck, resume=True)

    def test_schema_version_bump_is_refused(self, tmp_path):
        ck = self._populated(tmp_path)
        path = os.path.join(ck, "group_0000.json")
        data = json.load(open(path))
        data["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        json.dump(data, open(path, "w"))
        with pytest.raises(CheckpointError, match="schema version"):
            run_sweep(small_plan(), checkpoint=ck, resume=True)

    def test_config_hash_mismatch_is_refused(self, tmp_path):
        """The config was edited between runs: trials must not mix."""
        ck = self._populated(tmp_path)
        edited = SweepPlan()
        edited.add(BASE.with_options(speed=BASE.speed * 2), 3, key="base")
        edited.add(BASE.with_options(radius=BASE.radius * 1.5), 2, key="wide")
        edited.add(BASE.with_options(seed=11), 4, key="reseeded")
        with pytest.raises(CheckpointError, match="does not match"):
            run_sweep(edited, checkpoint=ck, resume=True)

    def test_group_file_from_other_config_is_refused(self, tmp_path):
        ck = self._populated(tmp_path)
        # Same plan shape, but group 0's payload swapped with group 2's —
        # the manifest matches, the per-file config hash must not.
        a = os.path.join(ck, "group_0000.json")
        c = os.path.join(ck, "group_0002.json")
        blob_a, blob_c = open(a).read(), open(c).read()
        open(a, "w").write(blob_c)
        open(c, "w").write(blob_a)
        with pytest.raises(CheckpointError, match="different configuration"):
            run_sweep(small_plan(), checkpoint=ck, resume=True)

    def test_trial_count_payload_mismatch_is_refused(self, tmp_path):
        ck = self._populated(tmp_path)
        path = os.path.join(ck, "group_0000.json")
        data = json.load(open(path))
        data["n_trials"] = data["n_trials"] + 1
        json.dump(data, open(path, "w"))
        with pytest.raises(CheckpointError, match="trial count"):
            run_sweep(small_plan(), checkpoint=ck, resume=True)

    def test_non_checkpoint_manifest_is_refused(self, tmp_path):
        directory = tmp_path / "other"
        directory.mkdir()
        (directory / "manifest.json").write_text(
            json.dumps({"schema_version": CHECKPOINT_SCHEMA_VERSION, "kind": "other"})
        )
        with pytest.raises(CheckpointError, match="wrong directory"):
            run_sweep(small_plan(), checkpoint=str(directory), resume=True)

    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        ck = self._populated(tmp_path)
        assert not [name for name in os.listdir(ck) if name.endswith(".tmp")]


class TestExperimentResume:
    """The user-facing path: experiment --checkpoint / --resume."""

    def test_thm3_radius_checkpoint_resume_identical_tables(self, tmp_path):
        from repro.experiments.registry import run_experiment

        ck = str(tmp_path / "ck")
        expected = run_experiment("thm3_radius", scale="quick", seed=0)
        first = run_experiment("thm3_radius", scale="quick", seed=0, checkpoint=ck)
        resumed = run_experiment(
            "thm3_radius", scale="quick", seed=0, checkpoint=ck, resume=True
        )
        assert first.to_text() == expected.to_text()
        assert resumed.to_text() == expected.to_text()

    def test_non_scheduler_experiment_refuses_checkpoint(self):
        from repro.experiments.registry import run_experiment

        with pytest.raises(ValueError, match="checkpoint"):
            run_experiment("lemma6_rows", checkpoint="/tmp/nope")
