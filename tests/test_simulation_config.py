"""Tests of configuration and RNG-stream management."""

import math

import numpy as np
import pytest

from repro.simulation.config import FloodingConfig, standard_config
from repro.simulation.rng import make_rng, spawn_rngs, spawn_seeds


class TestFloodingConfig:
    def test_valid_roundtrip(self):
        config = FloodingConfig(n=100, side=10.0, radius=1.0, speed=0.1)
        assert config.n == 100
        assert config.source == "uniform"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n": 1},
            {"side": 0.0},
            {"radius": 0.0},
            {"speed": -1.0},
            {"max_steps": 0},
            {"source": "middle"},
            {"source": 100},
            {"source": -1},
        ],
    )
    def test_invalid_rejected(self, overrides):
        base = dict(n=100, side=10.0, radius=1.0, speed=0.1)
        base.update(overrides)
        with pytest.raises(ValueError):
            FloodingConfig(**base)

    def test_with_options(self):
        config = FloodingConfig(n=100, side=10.0, radius=1.0, speed=0.1)
        other = config.with_options(radius=2.0, seed=9)
        assert other.radius == 2.0
        assert other.seed == 9
        assert config.radius == 1.0  # original untouched (frozen)

    def test_explicit_int_source_ok(self):
        config = FloodingConfig(n=100, side=10.0, radius=1.0, speed=0.1, source=5)
        assert config.source == 5

    def test_upper_bound_positive(self):
        config = FloodingConfig(n=100, side=10.0, radius=1.0, speed=0.1)
        assert config.upper_bound() > 0

    def test_describe_mentions_params(self):
        config = FloodingConfig(n=100, side=10.0, radius=1.0, speed=0.1)
        text = config.describe()
        assert "n=100" in text
        assert "flooding" in text


class TestStandardConfig:
    def test_canonical_scaling(self):
        config = standard_config(2500, radius_factor=2.0, speed_fraction=0.25)
        assert config.side == pytest.approx(50.0)
        assert config.radius == pytest.approx(2.0 * math.sqrt(math.log(2500)))
        assert config.speed == pytest.approx(0.25 * config.radius)

    def test_overrides_forwarded(self):
        config = standard_config(1000, source="central", seed=7)
        assert config.source == "central"
        assert config.seed == 7

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            standard_config(1)


class TestRngStreams:
    def test_make_rng_deterministic(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)

    def test_spawn_rngs_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(10**9) != b.integers(10**9)

    def test_spawn_reproducible(self):
        first = [r.integers(10**9) for r in spawn_rngs(42, 3)]
        second = [r.integers(10**9) for r in spawn_rngs(42, 3)]
        assert first == second

    def test_spawn_seeds_are_sequences(self):
        seeds = spawn_seeds(1, 4)
        assert len(seeds) == 4
        assert all(isinstance(s, np.random.SeedSequence) for s in seeds)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
