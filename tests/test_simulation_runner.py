"""Tests of the run/trial/sweep drivers and result containers."""

import math

import numpy as np
import pytest

from repro.core.flooding import select_source
from repro.simulation.config import FloodingConfig, standard_config
from repro.simulation.results import FloodingResult, summarize
from repro.simulation.runner import build_model, build_protocol, run_flooding, run_trials, sweep

QUICK = dict(n=300, side=15.0, radius=2.5, speed=0.5, max_steps=500, seed=1)


class TestSelectSource:
    def test_explicit_index(self, rng):
        positions = rng.uniform(0, 10, (20, 2))
        assert select_source(positions, 10.0, 7, rng) == 7

    def test_explicit_index_out_of_range(self, rng):
        positions = rng.uniform(0, 10, (20, 2))
        with pytest.raises(ValueError):
            select_source(positions, 10.0, 20, rng)

    def test_central_picks_closest_to_center(self, rng):
        positions = np.array([[1.0, 1.0], [5.1, 5.0], [9.0, 2.0]])
        assert select_source(positions, 10.0, "central", rng) == 1

    def test_suburb_picks_closest_to_corner(self, rng):
        positions = np.array([[1.0, 1.0], [5.0, 5.0], [9.9, 9.8]])
        assert select_source(positions, 10.0, "suburb", rng) == 2

    def test_uniform_in_range(self, rng):
        positions = rng.uniform(0, 10, (20, 2))
        assert 0 <= select_source(positions, 10.0, "uniform", rng) < 20

    def test_unknown_mode(self, rng):
        positions = rng.uniform(0, 10, (20, 2))
        with pytest.raises(ValueError):
            select_source(positions, 10.0, "edge", rng)


class TestBuilders:
    def test_build_all_models(self):
        for name in ("mrwp", "mrwp-pause", "rwp", "random-walk", "random-direction"):
            config = FloodingConfig(mobility=name, **QUICK)
            model = build_model(config, np.random.default_rng(0))
            assert model.n == QUICK["n"]

    def test_mobility_options_forwarded(self):
        config = FloodingConfig(
            mobility="mrwp-pause", mobility_options={"pause_time": 5.0}, **QUICK
        )
        model = build_model(config, np.random.default_rng(0))
        assert model.pause_time == 5.0

    def test_flooding_under_pause_mobility(self):
        config = FloodingConfig(
            mobility="mrwp-pause", mobility_options={"pause_time": 3.0}, **QUICK
        )
        result = run_flooding(config)
        assert result.completed

    def test_unknown_model(self):
        config = FloodingConfig(**QUICK)
        object.__setattr__(config, "mobility", "teleport")
        with pytest.raises(ValueError):
            build_model(config, np.random.default_rng(0))

    def test_build_all_protocols(self):
        for name, options in [
            ("flooding", {}),
            ("gossip", {"fanout": 2}),
            ("parsimonious", {"active_window": 3}),
            ("probabilistic", {"p": 0.5}),
            ("sir", {"recovery_prob": 0.1}),
        ]:
            config = FloodingConfig(protocol=name, protocol_options=options, **QUICK)
            protocol = build_protocol(config, 0, np.random.default_rng(0))
            assert protocol.name in (name, "flooding")

    def test_multi_hop_forwarded(self):
        config = FloodingConfig(multi_hop=True, **QUICK)
        protocol = build_protocol(config, 0, np.random.default_rng(0))
        assert protocol.multi_hop


class TestRunFlooding:
    def test_complete_run(self):
        result = run_flooding(FloodingConfig(**QUICK))
        assert result.completed
        assert math.isfinite(result.flooding_time)
        assert result.informed_history[0] == 1
        assert result.informed_history[-1] == QUICK["n"]
        assert result.final_coverage == 1.0

    def test_determinism(self):
        a = run_flooding(FloodingConfig(**QUICK))
        b = run_flooding(FloodingConfig(**QUICK))
        assert a.flooding_time == b.flooding_time
        assert a.source == b.source
        assert np.array_equal(a.informed_history, b.informed_history)

    def test_history_monotone(self):
        result = run_flooding(FloodingConfig(**QUICK))
        assert np.all(np.diff(result.informed_history) >= 0)

    def test_zone_metrics_present(self):
        result = run_flooding(FloodingConfig(**QUICK))
        assert result.cz_completion_time is not None
        assert result.suburb_completion_time is not None
        assert isinstance(result.source_in_central_zone, bool)

    def test_zone_tracking_disabled(self):
        config = FloodingConfig(**QUICK).with_options(track_zones=False)
        result = run_flooding(config)
        assert result.cz_completion_time is None

    def test_horizon_exhaustion(self):
        config = FloodingConfig(**{**QUICK, "max_steps": 1, "radius": 0.9, "n": 500})
        result = run_flooding(config)
        if not result.completed:
            assert math.isinf(result.flooding_time)
            assert result.n_steps == 1

    def test_coverage_helpers(self):
        result = run_flooding(FloodingConfig(**QUICK))
        assert result.coverage_at(0) == pytest.approx(1.0 / QUICK["n"])
        assert result.time_to_coverage(1.0) == result.flooding_time
        assert result.time_to_coverage(0.5) <= result.flooding_time


class TestTrialsAndSweep:
    def test_run_trials_independent_but_reproducible(self):
        config = FloodingConfig(**QUICK)
        first = run_trials(config, 3)
        second = run_trials(config, 3)
        assert [r.flooding_time for r in first] == [r.flooding_time for r in second]
        # Different trials usually differ (different seeds).
        sources = {r.source for r in first}
        assert len(sources) >= 2 or len(first) < 3

    def test_run_trials_validation(self):
        with pytest.raises(ValueError):
            run_trials(FloodingConfig(**QUICK), 0)

    def test_sweep_structure(self):
        config = FloodingConfig(**QUICK)
        results = sweep(config, "radius", [2.0, 3.0], n_trials=2)
        assert len(results) == 2
        for value, summary, trials in results:
            assert value in (2.0, 3.0)
            assert summary.n_trials == 2
            assert len(trials) == 2

    def test_sweep_radius_monotone_tendency(self):
        config = FloodingConfig(**QUICK)
        results = sweep(config, "radius", [2.0, 4.0], n_trials=3)
        assert results[1][1].mean <= results[0][1].mean * 1.3


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_infinities_excluded(self):
        summary = summarize([1.0, math.inf, 3.0])
        assert summary.n_trials == 3
        assert summary.n_finite == 2
        assert summary.mean == pytest.approx(2.0)

    def test_all_infinite(self):
        summary = summarize([math.inf, math.inf])
        assert summary.n_finite == 0
        assert math.isnan(summary.mean)
        assert "no finite" in summary.format()

    def test_format_contains_mean(self):
        text = summarize([2.0, 2.0, 2.0]).format("steps")
        assert "2.0" in text
        assert "steps" in text

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 5.0
