"""Tests of the closed-form bounds in repro.core.theory."""

import math

import pytest

from repro.core import theory


class TestAssumptionThresholds:
    def test_radius_assumption_paper_constant(self):
        n, side = 10_000, 100.0
        expected = 200 * side * math.sqrt(math.log(n) / n)
        assert theory.radius_assumption_threshold(n, side) == pytest.approx(expected)

    def test_speed_assumption(self):
        assert theory.speed_assumption_max(9.7) == pytest.approx(
            9.7 / (3 * (1 + math.sqrt(5)))
        )

    def test_large_radius_threshold(self):
        n, side = 1000, 31.6
        expected = (1 + math.sqrt(5)) / 2 * side * (3 * math.log(n) / n) ** (1 / 3)
        assert theory.large_radius_threshold(n, side) == pytest.approx(expected)

    def test_check_assumptions_paper_regime(self):
        """At huge n with the paper's constants, everything checks out."""
        n = 10**12
        side = math.sqrt(n)
        radius = 1.01 * theory.radius_assumption_threshold(n, side)
        speed = 0.99 * theory.speed_assumption_max(radius)
        result = theory.check_assumptions(n, side, radius, speed)
        assert result.radius_ok
        assert result.speed_ok
        assert result.radius_not_trivial
        assert result.all_ok

    def test_check_assumptions_violations(self):
        result = theory.check_assumptions(1000, 31.6, radius=0.5, speed=10.0)
        assert not result.radius_ok
        assert not result.speed_ok
        assert not result.all_ok


class TestBounds:
    def test_suburb_diameter_scaling(self):
        """S ~ L^3 log n / (R^2 n): doubling R quarters S."""
        s1 = theory.suburb_diameter(1000, 31.6, 2.0)
        s2 = theory.suburb_diameter(1000, 31.6, 4.0)
        assert s1 / s2 == pytest.approx(4.0)

    def test_cz_flooding_bound(self):
        assert theory.cz_flooding_bound(100.0, 5.0) == pytest.approx(360.0)

    def test_upper_bound_terms(self):
        n, side, radius, speed = 1000, 31.6, 3.0, 0.5
        bound = theory.flooding_upper_bound(n, side, radius, speed)
        cz = 18 * side / radius
        suburb = 594 * theory.suburb_diameter(n, side, radius) / speed
        assert bound == pytest.approx(cz + suburb)

    def test_upper_bound_zero_speed_infinite(self):
        assert math.isinf(theory.flooding_upper_bound(1000, 31.6, 3.0, 0.0))

    def test_lower_bound_active_regime(self):
        n, side = 1000, 31.6
        d = side / n ** (1 / 3)
        radius = 0.5 * d
        speed = 0.1
        expected = (2 * d - radius) / (2 * speed)
        assert theory.flooding_lower_bound(n, side, radius, speed) == pytest.approx(expected)

    def test_lower_bound_inactive_when_radius_large(self):
        assert theory.flooding_lower_bound(1000, 31.6, 20.0, 0.1) == 0.0

    def test_geometric_lower_bound(self):
        assert theory.geometric_lower_bound(10.0, 2.0, 0.5) == pytest.approx(10.0 / 3.0)
        assert theory.geometric_lower_bound(0.0, 0.0, 0.0) == 0.0
        assert math.isinf(theory.geometric_lower_bound(1.0, 0.0, 0.0))


class TestLemmaQuantities:
    def test_turn_bound_matches_formula(self):
        n, side, speed = 1000, 31.6, 0.5
        tau = side / (8 * speed)
        expected = 4 * math.log(n) / math.log(side / (speed * tau))
        assert theory.turn_count_bound(n, side, speed, tau) == pytest.approx(expected)

    def test_turn_bound_range_validation(self):
        n, side, speed = 1000, 31.6, 0.5
        with pytest.raises(ValueError):
            theory.turn_count_bound(n, side, speed, side / speed)  # tau > L/(4v)
        with pytest.raises(ValueError):
            theory.turn_count_bound(n, side, speed, side / (10 * n * speed))

    def test_good_segment_bound(self):
        n, side, speed = 1000, 31.6, 0.5
        tau = side / (8 * speed)
        expected = speed * tau * math.log(side / (speed * tau)) / (40 * math.log(n))
        assert theory.good_segment_bound(n, side, speed, tau) == pytest.approx(expected)

    def test_meeting_window(self):
        n, side, radius, speed = 1000, 31.6, 3.0, 0.5
        expected = 590 * theory.suburb_diameter(n, side, radius) / speed
        assert theory.meeting_window(n, side, radius, speed) == pytest.approx(expected)
        assert math.isinf(theory.meeting_window(n, side, radius, 0.0))

    def test_optimal_speed_range(self):
        n, side, radius = 10**10, 10**5, 50.0
        v_min, v_max = theory.optimal_speed_range(n, side, radius)
        assert v_max == radius
        assert v_min == pytest.approx(
            theory.suburb_diameter(n, side, radius) * radius / side
        )


class TestValidation:
    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            theory.radius_assumption_threshold(1, 10.0)
        with pytest.raises(ValueError):
            theory.speed_assumption_max(0.0)
        with pytest.raises(ValueError):
            theory.suburb_diameter(100, 10.0, 0.0)
        with pytest.raises(ValueError):
            theory.cz_flooding_bound(10.0, 0.0)
        with pytest.raises(ValueError):
            theory.good_segment_bound(100, 10.0, 0.0, 1.0)
