"""Tests of the push-pull and crash-fault protocols."""

import numpy as np
import pytest

from repro.protocols.faulty import CrashFaultFlooding
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.pushpull import PushPullGossip

SIDE = 10.0
N = 40


def cluster_positions(n=N):
    rng = np.random.default_rng(0)
    return 5.0 + rng.uniform(-0.1, 0.1, size=(n, 2))


class TestPushPull:
    def test_pull_works_without_informed_contactor(self):
        """Two agents: uninformed one pulls from the informed one."""
        positions = np.array([[0.0, 0.0], [0.5, 0.0]])
        protocol = PushPullGossip(2, SIDE, 1.0, 0, rng=np.random.default_rng(1))
        newly = protocol.step(positions)
        assert newly.tolist() == [1]

    def test_completes_in_clique(self):
        protocol = PushPullGossip(N, SIDE, 1.0, 0, rng=np.random.default_rng(2))
        positions = cluster_positions()
        for _ in range(100):
            protocol.step(positions)
            if protocol.is_complete():
                break
        assert protocol.is_complete()

    def test_no_contacts_no_spread(self):
        positions = np.array([[0.0, 0.0], [9.0, 9.0]])
        protocol = PushPullGossip(2, SIDE, 1.0, 0, rng=np.random.default_rng(3))
        assert protocol.step(positions).size == 0

    def test_faster_than_push_only_gossip(self):
        """Push-pull beats fanout-1 push gossip in a clique on average."""
        from repro.protocols.gossip import GossipProtocol

        positions = cluster_positions()
        pp_steps = []
        push_steps = []
        for seed in range(5):
            pp = PushPullGossip(N, SIDE, 1.0, 0, rng=np.random.default_rng(seed))
            push = GossipProtocol(N, SIDE, 1.0, 0, rng=np.random.default_rng(seed), fanout=1)
            count = 0
            while not pp.is_complete() and count < 500:
                pp.step(positions)
                count += 1
            pp_steps.append(count)
            count = 0
            while not push.is_complete() and count < 500:
                push.step(positions)
                count += 1
            push_steps.append(count)
        assert np.mean(pp_steps) <= np.mean(push_steps)


class TestCrashFaultFlooding:
    def test_zero_crash_equals_flooding(self, rng):
        positions = rng.uniform(0, SIDE, (N, 2))
        flood = FloodingProtocol(N, SIDE, 1.5, 0)
        crash = CrashFaultFlooding(N, SIDE, 1.5, 0, rng=np.random.default_rng(4), crash_prob=0.0)
        for _ in range(5):
            flood.step(positions)
            crash.step(positions)
            assert np.array_equal(flood.informed, crash.informed)

    def test_crashed_agents_stop_relaying(self):
        """With certain crash after the first step, the chain stops."""
        positions = np.stack([np.arange(4, dtype=float), np.zeros(4)], axis=1)
        protocol = CrashFaultFlooding(4, SIDE, 1.0, 0, rng=np.random.default_rng(5), crash_prob=1.0)
        protocol.step(positions)  # agent 1 informed; then everyone crashes
        assert protocol.informed[1]
        newly = protocol.step(positions)
        assert newly.size == 0
        assert not protocol.can_progress()

    def test_completion_over_survivors(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [9.0, 9.0]])
        protocol = CrashFaultFlooding(3, SIDE, 1.0, 0, rng=np.random.default_rng(6), crash_prob=0.0)
        protocol.step(positions)
        assert not protocol.is_complete()  # agent 2 unreachable and alive
        protocol.crashed[2] = True
        assert protocol.is_complete()  # crashed agents leave the requirement

    def test_crash_monotone(self):
        protocol = CrashFaultFlooding(N, SIDE, 1.0, 0, rng=np.random.default_rng(7), crash_prob=0.3)
        positions = cluster_positions()
        prev = protocol.crashed.copy()
        for _ in range(10):
            protocol.step(positions)
            assert np.all(protocol.crashed[prev])
            prev = protocol.crashed.copy()

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashFaultFlooding(N, SIDE, 1.0, 0, crash_prob=1.5)
        with pytest.raises(ValueError):
            CrashFaultFlooding(N, SIDE, 1.0, 0, crash_prob=-0.1)
