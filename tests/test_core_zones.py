"""Tests of the Central Zone / Suburb partition (Definition 4, Lemmas 6, 15)."""

import math

import numpy as np
import pytest

from repro.core.cells import CellGrid
from repro.core.zones import ZonePartition, density_threshold, suburb_diameter_bound


def make_zones(n=10_000, radius_factor=1.5, threshold_factor=3.0 / 8.0):
    side = math.sqrt(n)
    radius = radius_factor * math.sqrt(math.log(n))
    grid = CellGrid.for_radius(side, radius)
    return ZonePartition(grid, n, threshold_factor=threshold_factor)


class TestThresholds:
    def test_density_threshold_formula(self):
        assert density_threshold(1000) == pytest.approx(3 / 8 * math.log(1000) / 1000)

    def test_density_threshold_factor(self):
        assert density_threshold(1000, factor=1.0) == pytest.approx(math.log(1000) / 1000)

    def test_suburb_diameter_formula(self):
        s = suburb_diameter_bound(1000, 10.0, 0.5)
        assert s == pytest.approx(3 * 1000.0 * math.log(1000) / (2 * 0.25 * 1000))

    def test_validation(self):
        with pytest.raises(ValueError):
            density_threshold(1)
        with pytest.raises(ValueError):
            suburb_diameter_bound(100, -1.0, 0.5)


class TestPartitionStructure:
    def test_masks_partition_cells(self):
        zones = make_zones()
        assert zones.n_central_cells + zones.n_suburb_cells == zones.grid.n_cells

    def test_cz_mask_matches_definition4(self):
        zones = make_zones()
        masses = zones.grid.all_cell_masses()
        assert np.array_equal(zones.cz_mask, masses >= zones.threshold)

    def test_suburb_in_corners(self):
        """Suburb cells hug the corners: every suburb cell's corner distance
        is below every CZ cell's corner distance along the diagonal."""
        zones = make_zones()
        m = zones.grid.m
        # The four corner cells are suburb; the center cell is CZ.
        assert zones.suburb_mask[0, 0]
        assert zones.suburb_mask[m - 1, m - 1]
        assert zones.cz_mask[m // 2, m // 2]

    def test_symmetry(self):
        zones = make_zones()
        mask = zones.cz_mask
        assert np.array_equal(mask, mask[::-1, :])
        assert np.array_equal(mask, mask[:, ::-1])
        assert np.array_equal(mask, mask.T)

    def test_large_radius_all_central(self):
        zones = make_zones(n=1000, radius_factor=6.0)
        assert zones.central_zone_is_everything()
        assert zones.suburb_corner_extent() == 0.0


class TestPointClassification:
    def test_in_central_zone_matches_cells(self):
        zones = make_zones()
        rng = np.random.default_rng(0)
        points = rng.uniform(0, zones.grid.side, (500, 2))
        mask = zones.in_central_zone(points)
        ij = zones.grid.cell_indices(points)
        assert np.array_equal(mask, zones.cz_mask[ij[:, 0], ij[:, 1]])
        assert np.array_equal(zones.in_suburb(points), ~mask)

    def test_center_point_is_central(self):
        zones = make_zones()
        center = np.array([[zones.grid.side / 2, zones.grid.side / 2]])
        assert zones.in_central_zone(center)[0]

    def test_corner_point_is_suburb(self):
        zones = make_zones()
        corner = np.array([[0.01, 0.01]])
        assert zones.in_suburb(corner)[0]


class TestLemma15AndExtendedSuburb:
    def test_extent_below_bound(self):
        zones = make_zones()
        assert zones.suburb_corner_extent() <= zones.suburb_bound

    def test_extended_suburb_contains_suburb(self):
        zones = make_zones()
        rng = np.random.default_rng(1)
        points = rng.uniform(0, zones.grid.side, (300, 2))
        suburb = zones.in_suburb(points)
        extended = zones.in_extended_suburb(points)
        assert np.all(extended[suburb])

    def test_extended_suburb_margin_zero(self):
        """With margin 0 the extended suburb equals the suburb cells."""
        zones = make_zones()
        rng = np.random.default_rng(2)
        points = rng.uniform(0, zones.grid.side, (300, 2))
        extended = zones.in_extended_suburb(points, margin=0.0)
        assert np.array_equal(extended, zones.in_suburb(points))

    def test_center_not_in_extended_suburb_with_small_margin(self):
        zones = make_zones()
        center = np.array([[zones.grid.side / 2, zones.grid.side / 2]])
        assert not zones.in_extended_suburb(center, margin=zones.grid.ell)[0]


class TestLemma6:
    def test_full_rows_bound_above_critical_factor(self):
        """Above the calibrated critical factor (~sqrt5) Lemma 6 holds."""
        zones = make_zones(n=10_000, radius_factor=2.5)
        full_rows, full_cols = zones.count_full_rows_cols()
        assert min(full_rows, full_cols) >= zones.lemma6_bound()

    def test_full_rows_symmetric(self):
        zones = make_zones(n=10_000, radius_factor=2.5)
        full_rows, full_cols = zones.count_full_rows_cols()
        assert full_rows == full_cols

    def test_central_cell_ids_match_mask(self):
        zones = make_zones()
        ids = zones.central_cell_ids()
        assert len(ids) == zones.n_central_cells
        assert np.all(zones.cz_mask.ravel()[ids])
