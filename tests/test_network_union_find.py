"""Tests of the union-find structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.union_find import UnionFind, components_from_edges


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.n_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 2

    def test_component_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(2) == 3
        assert uf.component_size(5) == 1

    def test_add_edges(self):
        uf = UnionFind(5)
        uf.add_edges(np.array([[0, 1], [2, 3], [3, 4]]))
        assert uf.n_components == 2

    def test_add_edges_validates_shape(self):
        uf = UnionFind(5)
        with pytest.raises(ValueError):
            uf.add_edges(np.array([0, 1, 2]))

    def test_add_empty_edges(self):
        uf = UnionFind(3)
        uf.add_edges(np.empty((0, 2), dtype=int))
        assert uf.n_components == 3

    def test_labels_consistency(self):
        uf = UnionFind(6)
        uf.add_edges(np.array([[0, 1], [1, 2], [4, 5]]))
        labels = uf.labels()
        assert labels[0] == labels[1] == labels[2]
        assert labels[4] == labels[5]
        assert labels[3] not in (labels[0], labels[4])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(
        n=st.integers(min_value=1, max_value=30),
        edges=st.lists(
            st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_networkx(self, n, edges):
        """Component structure agrees with networkx on random graphs."""
        import networkx as nx

        edges = [(a % n, b % n) for a, b in edges]
        uf = UnionFind(n)
        for a, b in edges:
            uf.union(a, b)
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        assert uf.n_components == nx.number_connected_components(graph)


class TestComponentsFromEdges:
    def test_labels_are_canonical(self):
        labels = components_from_edges(5, np.array([[0, 4], [1, 2]]))
        assert labels[0] == labels[4]
        assert labels[1] == labels[2]
        assert len({labels[0], labels[1], labels[3]}) == 3
        # Labels are dense 0..k-1.
        assert set(labels.tolist()) == set(range(labels.max() + 1))

    def test_no_edges(self):
        labels = components_from_edges(3, np.empty((0, 2), dtype=int))
        assert sorted(labels.tolist()) == [0, 1, 2]
