"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "lemma15_suburb", "--scale", "full"])
        assert args.experiment == "lemma15_suburb"
        assert args.scale == "full"

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])

    def test_experiment_alias_parses(self):
        args = build_parser().parse_args(
            ["experiment", "thm3_radius", "--engine", "auto", "--jobs", "2"]
        )
        assert args.command == "experiment"
        assert args.experiment == "thm3_radius"
        assert args.engine == "auto"
        assert args.jobs == 2

    def test_engine_defaults_unset(self):
        args = build_parser().parse_args(["run", "thm3_radius"])
        assert args.engine is None
        assert args.jobs == 1

    def test_all_and_report_take_engine_jobs(self):
        args = build_parser().parse_args(["all", "--engine", "scalar", "--jobs", "3"])
        assert args.engine == "scalar" and args.jobs == 3
        args = build_parser().parse_args(["report", "--engine", "auto"])
        assert args.engine == "auto"

    def test_bench_experiments_suite_parses(self):
        args = build_parser().parse_args(["bench", "--suite", "experiments"])
        assert args.suite == "experiments"

    def test_flood_parses(self):
        args = build_parser().parse_args(["flood", "--n", "500", "--seed", "3"])
        assert args.n == 500
        assert args.seed == 3


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1_spatial" in out
        assert "thm18_lower" in out

    def test_run_deterministic_experiment(self, capsys):
        code = main(["run", "lemma15_suburb"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Lemma 15" in out
        assert "PASS" in out

    def test_run_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(["run", "lemma15_suburb", "--csv", str(csv_path)])
        capsys.readouterr()
        assert code == 0
        assert csv_path.exists()

    def test_experiment_alias_runs_with_engine(self, capsys):
        code = main(["experiment", "thm10_growth", "--engine", "auto", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 10" in out

    def test_engine_on_non_scheduler_experiment_errors(self, capsys):
        with pytest.raises(SystemExit, match="engine"):
            main(["run", "fig1_spatial", "--engine", "auto"])

    def test_flood_command(self, capsys):
        code = main(
            ["flood", "--n", "400", "--radius-factor", "2.0", "--max-steps", "2000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "flooding time" in out
        assert "Theorem 3 bound" in out

    def test_flood_with_source_index(self, capsys):
        code = main(["flood", "--n", "400", "--source", "7", "--max-steps", "2000"])
        capsys.readouterr()
        assert code == 0


class TestBenchCommand:
    def test_bench_smoke_writes_stable_schema(self, capsys, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            [
                "bench", "--smoke", "--repeats", "1",
                "--out", str(out), "--label", "unit",
                "--baseline", "pr1_batch=1.0",
            ]
        )
        text = capsys.readouterr().out
        assert code == 0
        assert "parity" in text
        report = json.loads(out.read_text())
        assert report["schema_version"] == 1
        assert report["label"] == "unit"
        assert report["smoke"] is True
        assert report["parity"]["ok"] is True
        assert report["baselines"] == {"pr1_batch": 1.0}
        assert "batch_vs_pr1_batch" in report["speedups"]
        assert "batch_vs_legacy" in report["speedups"]
        kernel_names = {k["name"] for k in report["kernels"]}
        assert any(name.startswith("grid_index_") for name in kernel_names)
        assert any(name.startswith("batch_any_within_") for name in kernel_names)
        strategies = {row["name"] for row in report["end_to_end"]}
        assert strategies == {"batch", "batch_legacy", "scalar"}
        for kernel in report["kernels"]:
            assert kernel["seconds"] > 0
            assert kernel["per_call"] > 0

    def test_bench_rejects_malformed_baseline(self):
        with pytest.raises(SystemExit):
            main(["bench", "--smoke", "--baseline", "nonsense"])
