"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "lemma15_suburb", "--scale", "full"])
        assert args.experiment == "lemma15_suburb"
        assert args.scale == "full"

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])

    def test_flood_parses(self):
        args = build_parser().parse_args(["flood", "--n", "500", "--seed", "3"])
        assert args.n == 500
        assert args.seed == 3


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1_spatial" in out
        assert "thm18_lower" in out

    def test_run_deterministic_experiment(self, capsys):
        code = main(["run", "lemma15_suburb"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Lemma 15" in out
        assert "PASS" in out

    def test_run_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(["run", "lemma15_suburb", "--csv", str(csv_path)])
        capsys.readouterr()
        assert code == 0
        assert csv_path.exists()

    def test_flood_command(self, capsys):
        code = main(
            ["flood", "--n", "400", "--radius-factor", "2.0", "--max-steps", "2000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "flooding time" in out
        assert "Theorem 3 bound" in out

    def test_flood_with_source_index(self, capsys):
        code = main(["flood", "--n", "400", "--source", "7", "--max-steps", "2000"])
        capsys.readouterr()
        assert code == 0
