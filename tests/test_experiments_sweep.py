"""Sweep-scheduler experiments: engine/jobs invariance and framework threading.

The migration acceptance gate: for every experiment moved onto
:func:`repro.simulation.sweep.run_sweep`, the scalar-engine run *is* the
pre-migration point-by-point computation (identical seed schedule), so
``engine="auto" == engine="scalar"`` means the migrated table equals the
unmigrated one — checked here on the full rendered report.
"""

import pytest

from repro.experiments.registry import all_ids, get_spec

#: Every experiment migrated onto the sweep scheduler in PR 4 (plus the
#: PR 3 batch-engine experiments keep their own engine knob).
SWEEP_EXPERIMENTS = [
    "thm3_scaling",
    "thm3_radius",
    "thm3_speed",
    "regime_map",
    "mobility_ablation",
    "suburb_vs_cz",
    "pause_extension",
    "init_bias",
    "meeting_suburb",
    "thm10_growth",
]

#: Cheap members re-run under process fan-out (jobs=2).
JOBS_EXPERIMENTS = ["thm3_radius", "mobility_ablation", "thm10_growth"]


class TestEngineParity:
    @pytest.mark.parametrize("experiment_id", SWEEP_EXPERIMENTS)
    def test_auto_equals_scalar(self, experiment_id):
        spec = get_spec(experiment_id)
        auto = spec.run(scale="quick", seed=0, engine="auto")
        scalar = spec.run(scale="quick", seed=0, engine="scalar")
        assert auto.to_text() == scalar.to_text()

    @pytest.mark.parametrize("experiment_id", JOBS_EXPERIMENTS)
    def test_jobs_invariant(self, experiment_id):
        spec = get_spec(experiment_id)
        serial = spec.run(scale="quick", seed=0, engine="auto", jobs=1)
        fanned = spec.run(scale="quick", seed=0, engine="auto", jobs=2)
        assert serial.to_text() == fanned.to_text()


class TestFrameworkThreading:
    def test_sweep_experiments_advertise_support(self):
        for experiment_id in SWEEP_EXPERIMENTS:
            spec = get_spec(experiment_id)
            assert spec.accepts_engine and spec.accepts_jobs, experiment_id

    def test_non_scheduler_experiment_rejects_engine(self):
        spec = get_spec("fig1_spatial")
        assert not spec.accepts_engine
        with pytest.raises(ValueError, match="engine"):
            spec.run(scale="quick", seed=0, engine="auto")
        with pytest.raises(ValueError, match="fan-out"):
            spec.run(scale="quick", seed=0, jobs=2)

    def test_support_flags_resolve_for_every_experiment(self):
        # The signature inspection must not blow up on any registered
        # runner; unrequested engine/jobs are legal everywhere.
        for experiment_id in all_ids():
            spec = get_spec(experiment_id)
            assert isinstance(spec.accepts_engine, bool)
            assert isinstance(spec.accepts_jobs, bool)

    def test_report_survives_unsatisfiable_engine(self):
        # engine="batch" cannot run thm10_growth's observer point; the
        # whole-suite report must record the failure, not crash.
        from repro.viz.report import generate_report

        text = generate_report(
            scale="quick", experiment_ids=["thm10_growth"], engine="batch"
        )
        assert "not run:" in text and "FAIL" in text

    def test_pr3_experiments_keep_engine_defaults(self):
        # protocol_baselines defaults to engine="batch"; an unrequested
        # engine (None) must not clobber that default.
        spec = get_spec("protocol_baselines")
        assert spec.accepts_engine and not spec.accepts_jobs
