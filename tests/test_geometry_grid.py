"""Unit tests for the bucket-grid spatial index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.grid import GridIndex
from repro.geometry.neighbors import BruteForceNeighborEngine


def brute_any_within(sources, queries, r):
    return BruteForceNeighborEngine(10.0).any_within(sources, queries, r)


class TestGridIndexBasics:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GridIndex(0.0, 1.0)
        with pytest.raises(ValueError):
            GridIndex(10.0, 0.0)

    def test_empty_index(self):
        index = GridIndex(10.0, 1.0)
        index.build(np.empty((0, 2)))
        assert index.size == 0
        assert not index.any_within(np.array([[5.0, 5.0]]), 1.0)[0]
        assert index.pairs_within(1.0).shape == (0, 2)

    def test_single_point_hit_and_miss(self):
        index = GridIndex(10.0, 1.0)
        index.build(np.array([[5.0, 5.0]]))
        assert index.any_within(np.array([[5.5, 5.0]]), 1.0)[0]
        assert not index.any_within(np.array([[7.0, 5.0]]), 1.0)[0]

    def test_inclusive_boundary(self):
        """Distance exactly R counts (paper: 'at distance at most R')."""
        index = GridIndex(10.0, 1.0)
        index.build(np.array([[5.0, 5.0]]))
        assert index.any_within(np.array([[6.0, 5.0]]), 1.0)[0]

    def test_points_on_far_boundary(self):
        """Points at exactly side don't fall off the grid."""
        index = GridIndex(10.0, 1.0)
        index.build(np.array([[10.0, 10.0]]))
        assert index.any_within(np.array([[9.5, 10.0]]), 1.0)[0]


class TestGridAgainstBruteForce:
    @pytest.mark.parametrize("cell_size", [0.5, 1.0, 3.0])
    def test_any_within_matches(self, rng, cell_size):
        sources = rng.uniform(0, 10, (80, 2))
        queries = rng.uniform(0, 10, (60, 2))
        radius = 1.0
        index = GridIndex(10.0, cell_size)
        index.build(sources)
        got = index.any_within(queries, radius)
        expected = brute_any_within(sources, queries, radius)
        assert np.array_equal(got, expected)

    def test_count_within_matches(self, rng):
        sources = rng.uniform(0, 10, (100, 2))
        queries = rng.uniform(0, 10, (40, 2))
        radius = 1.7
        index = GridIndex(10.0, 1.0)
        index.build(sources)
        got = index.count_within(queries, radius)
        expected = BruteForceNeighborEngine(10.0).count_within(sources, queries, radius)
        assert np.array_equal(got, expected)

    def test_pairs_within_matches(self, rng):
        points = rng.uniform(0, 10, (60, 2))
        radius = 1.3
        index = GridIndex(10.0, 1.0)
        index.build(points)
        got = {tuple(p) for p in index.pairs_within(radius).tolist()}
        expected = {
            tuple(p)
            for p in BruteForceNeighborEngine(10.0).pairs_within(points, radius).tolist()
        }
        assert got == expected

    def test_query_radius_matches(self, rng):
        sources = rng.uniform(0, 10, (50, 2))
        queries = rng.uniform(0, 10, (10, 2))
        radius = 2.0
        index = GridIndex(10.0, 1.0)
        index.build(sources)
        lists = index.query_radius(queries, radius)
        dists = np.sqrt(((queries[:, None, :] - sources[None, :, :]) ** 2).sum(-1))
        for i in range(10):
            expected = set(np.nonzero(dists[i] <= radius)[0].tolist())
            assert set(lists[i].tolist()) == expected

    @given(
        n_src=st.integers(min_value=0, max_value=40),
        n_q=st.integers(min_value=1, max_value=20),
        radius=st.floats(min_value=0.05, max_value=5.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_within_property(self, n_src, n_q, radius, seed):
        """Grid result equals brute force for arbitrary configurations."""
        rng = np.random.default_rng(seed)
        sources = rng.uniform(0, 10, (n_src, 2))
        queries = rng.uniform(0, 10, (n_q, 2))
        index = GridIndex(10.0, max(radius, 0.2))
        index.build(sources)
        got = index.any_within(queries, radius)
        expected = brute_any_within(sources, queries, radius)
        assert np.array_equal(got, expected)

    def test_radius_larger_than_cell(self, rng):
        """Queries with radius above cell_size scan a wider block, stay exact."""
        sources = rng.uniform(0, 10, (50, 2))
        queries = rng.uniform(0, 10, (20, 2))
        index = GridIndex(10.0, 0.5)
        index.build(sources)
        radius = 2.5  # 5 cells wide
        got = index.any_within(queries, radius)
        expected = brute_any_within(sources, queries, radius)
        assert np.array_equal(got, expected)
