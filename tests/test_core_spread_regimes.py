"""Tests of the Theorem-10 spread machinery and the regime classifier."""

import math

import numpy as np
import pytest

from repro.core import theory
from repro.core.cells import CellGrid
from repro.core.regimes import REGIME_SYMBOLS, REGIMES, classify_regime, regime_map
from repro.core.spread import (
    InformedCellTracker,
    claim11_completion_steps,
    growth_deficits,
)
from repro.core.zones import ZonePartition
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.protocols.flooding import FloodingProtocol
from repro.simulation.engine import Simulation

SIDE = 40.0
N = 1500


class TestInformedCellTracker:
    def make(self, radius=7.0):
        grid = CellGrid.for_radius(SIDE, radius)
        zones = ZonePartition(grid, N)
        return grid, zones, InformedCellTracker(grid, zones)

    def test_counts_informed_cells(self, rng):
        grid, zones, tracker = self.make()
        positions = rng.uniform(0, SIDE, (N, 2))
        nobody = np.zeros(N, dtype=bool)
        everybody = np.ones(N, dtype=bool)
        # With everyone informed, every CZ cell is informed.
        assert tracker.informed_cell_count(positions, everybody) == zones.n_central_cells
        # With nobody informed, only CZ cells empty of agents count.
        count_empty = tracker.informed_cell_count(positions, nobody)
        occupied = grid.occupancy(positions).ravel()[zones.central_cell_ids()]
        assert count_empty == int(np.count_nonzero(occupied == 0))

    def test_observer_records_series(self):
        grid, zones, tracker = self.make()
        model = ManhattanRandomWaypoint(N, SIDE, 0.7, rng=np.random.default_rng(0))
        protocol = FloodingProtocol(N, SIDE, 7.0, 0)
        simulation = Simulation(model, protocol, observers=[tracker])
        steps = simulation.run(500)
        q = tracker.q_series()
        assert q.shape == (steps + 1,)
        assert q[-1] == zones.n_central_cells  # complete run saturates Q


class TestGrowthDeficits:
    def test_positive_when_recurrence_holds(self):
        q = np.array([1, 3, 6, 10, 16, 16])
        deficits = growth_deficits(q, total_cells=16)
        assert np.all(deficits >= 0)

    def test_detects_violation(self):
        q = np.array([4, 4])  # no growth at an interior point
        deficits = growth_deficits(q, total_cells=16)
        assert deficits.size == 1
        assert deficits[0] < 0

    def test_skips_empty_and_complete(self):
        q = np.array([0, 0, 16, 16])
        assert growth_deficits(q, total_cells=16).size == 0

    def test_short_series(self):
        assert growth_deficits(np.array([1]), 16).size == 0


class TestClaim11:
    def test_bound_formula(self):
        assert claim11_completion_steps(100) == 50

    def test_recurrence_completes_within_bound(self):
        """Iterating the worst-case recurrence from q=1 hits the target
        within 5 sqrt(q_bar) — Claim 11 verified computationally."""
        for total in (4, 25, 100, 1234):
            q = 1
            steps = 0
            while q < total:
                q = q + math.ceil(math.sqrt(min(q, total - q)))
                steps += 1
                assert steps <= claim11_completion_steps(total)

    def test_validation(self):
        with pytest.raises(ValueError):
            claim11_completion_steps(0)


class TestClassifyRegime:
    N_BIG = 10**14

    def side(self):
        return math.sqrt(self.N_BIG)

    def test_trivial(self):
        side = self.side()
        assert classify_regime(self.N_BIG, side, 1.5 * side, 0.0) == "trivial"

    def test_no_suburb(self):
        side = self.side()
        radius = 1.01 * theory.large_radius_threshold(self.N_BIG, side)
        assert classify_regime(self.N_BIG, side, radius, 0.0) == "no-suburb"

    def test_below_assumption(self):
        side = self.side()
        assert classify_regime(self.N_BIG, side, 1e-3, 1e-4) == "below-assumption"

    def test_fast_mobility(self):
        side = self.side()
        base = math.sqrt(math.log(self.N_BIG))
        radius = 3.0 * base
        assert classify_regime(self.N_BIG, side, radius, radius) == "fast-mobility"

    def test_cz_vs_suburb_split(self):
        """With a large enough radius factor the paper-constant optimal
        window opens: fast v -> cz-dominated, very slow v -> suburb-dominated.

        Asymptotically the window condition ``S R / L <= R / 9.7`` needs the
        radius factor c (R = c sqrt(log n)) to satisfy c^2 >= ~73 / ...;
        c = 10 suffices.
        """
        side = self.side()
        base = math.sqrt(math.log(self.N_BIG))
        radius = 10.0 * base
        v_max = theory.speed_assumption_max(radius)
        assert classify_regime(self.N_BIG, side, radius, v_max) == "cz-dominated"
        assert classify_regime(self.N_BIG, side, radius, 1e-9) == "suburb-dominated"

    def test_all_labels_known(self):
        assert set(REGIME_SYMBOLS) == set(REGIMES)

    def test_validation(self):
        with pytest.raises(ValueError):
            classify_regime(1000, 10.0, 0.0, 0.1)


class TestRegimeMap:
    def test_map_shape_and_symbols(self):
        n = 10**14
        side = math.sqrt(n)
        base = math.sqrt(math.log(n))
        grid = regime_map(n, side, (0.5 * base, side), (0.01, 0.3), resolution=8)
        assert grid["labels"].shape == (8, 8)
        assert all(label in REGIMES for label in grid["labels"].ravel())
        assert grid["ascii"].count("\n") >= 8

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            regime_map(1000, 31.6, (1.0, 2.0), (0.01, 0.3), resolution=1)
