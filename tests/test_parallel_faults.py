"""Crash-surviving worker pools: the PR 7 fault matrix for parallel.py.

A worker process that dies (``os._exit`` — indistinguishable from an OOM
kill or segfault from the parent's side) used to break the whole round via
:class:`~concurrent.futures.process.BrokenProcessPool`.  These tests
SIGKILL-inject through fork-inherited job payloads and assert the new
contract: completed jobs keep their results, crashed jobs are retried solo
on the deterministic backoff schedule, transient crashers recover
bit-exactly, and persistent crashers are quarantined as poison jobs with
an actionable error naming the job — plus the ``sweep_parallel`` engine
dispatch regression (each variant must run through *its own* resolved
engine, not the base config's).
"""

import os

import pytest

from repro.simulation.config import standard_config
from repro.simulation.parallel import (
    DEFAULT_MAX_RETRIES,
    PoisonJobError,
    WorkerPool,
    backoff_delays,
    run_trials_parallel,
    sweep_parallel,
)
from repro.simulation.runner import run_trials


# ----------------------------------------------------------------------
# Crash-injection runners (top-level: picklable by the process pool; the
# pool forks, so the attempt ledger directory rides in the job payload)
# ----------------------------------------------------------------------
def _record_attempt(crash_dir: str, tag) -> int:
    """Cross-process attempt counter: O_EXCL-numbered marker files."""
    for k in range(10_000):
        try:
            fd = os.open(
                os.path.join(crash_dir, f"attempt_{tag}_{k}"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            continue
        os.close(fd)
        return k + 1
    raise RuntimeError("attempt ledger overflow")


def _flaky_job(job):
    """Doubles the value; dies abruptly for the first ``crashes`` attempts."""
    value, crash_dir, crashes = job
    if crash_dir is not None and _record_attempt(crash_dir, value) <= crashes:
        os._exit(1)  # abrupt worker death: the pool sees BrokenProcessPool
    return value * 2


def _raising_job(job):
    value = job[0]
    if value == 13:
        raise ValueError("deterministic failure, not an infrastructure fault")
    return value * 2


def _sleepy_job(job):
    value, hang = job
    if hang:
        import time

        time.sleep(300)
    return value * 2


class TestBackoffSchedule:
    """The retry schedule is a pure function of the attempt index."""

    def test_capped_exponential(self):
        assert backoff_delays(5, base=0.05, cap=1.0) == [0.05, 0.1, 0.2, 0.4, 0.8]
        assert backoff_delays(7, base=0.5, cap=2.0) == [0.5, 1.0, 2.0, 2.0, 2.0, 2.0, 2.0]

    def test_zero_retries_is_empty(self):
        assert backoff_delays(0) == []

    def test_deterministic(self):
        assert backoff_delays(4) == backoff_delays(4)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            backoff_delays(-1)
        with pytest.raises(ValueError, match="positive"):
            backoff_delays(3, base=0.0)
        with pytest.raises(ValueError, match="positive"):
            backoff_delays(3, cap=-1.0)

    def test_pool_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            WorkerPool(2, max_retries=-1)
        with pytest.raises(ValueError, match="job_timeout"):
            WorkerPool(2, job_timeout=0.0)


class TestCrashRecovery:
    """One dead worker loses only its job; transient crashers recover."""

    def test_transient_crash_retried_to_success(self, tmp_path):
        crash_dir = str(tmp_path)
        # Job 2 dies twice (once in the parallel round, once solo), then
        # succeeds on the second solo attempt.
        jobs = [(0, None, 0), (1, None, 0), (2, crash_dir, 2), (3, None, 0)]
        slept = []
        with WorkerPool(2, max_retries=3, sleep=slept.append) as pool:
            results = pool.map(_flaky_job, jobs)
        assert results == [0, 2, 4, 6]  # in job order, fault history invisible
        # Exactly one solo retry was backed off: the deterministic schedule.
        assert slept == backoff_delays(3)[:1]

    def test_innocent_bystanders_never_consume_retries(self, tmp_path):
        crash_dir = str(tmp_path)
        jobs = [(v, None, 0) for v in range(6)] + [(9, crash_dir, 1)]
        slept = []
        with WorkerPool(2, max_retries=0, sleep=slept.append) as pool:
            results = pool.map(_flaky_job, jobs)
        # max_retries=0 still allows the first solo re-run: the parallel
        # round's crash names no job, so every unfinished job (the crasher,
        # which succeeds on attempt 2, and any innocents the break caught
        # mid-flight) gets one clean solo pass.
        assert results == [0, 2, 4, 6, 8, 10, 18]
        assert slept == []

    def test_serial_path_untouched_by_fault_machinery(self, tmp_path):
        # max_workers=1 runs in-process: no pool, no retries, a crash would
        # be the caller crashing (here: no crash, plain results).
        with WorkerPool(1) as pool:
            assert pool.map(_flaky_job, [(2, None, 0), (5, None, 0)]) == [4, 10]

    def test_ordinary_exceptions_propagate_unretried(self, tmp_path):
        jobs = [(v,) for v in (1, 13, 7)]
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="deterministic failure"):
                pool.map(_raising_job, jobs)


class TestPoisonQuarantine:
    """Persistent crashers are quarantined loudly; survivors keep results."""

    def test_poison_job_quarantined_with_label_and_completed(self, tmp_path):
        crash_dir = str(tmp_path)
        jobs = [(0, None, 0), (1, crash_dir, 99), (2, None, 0)]
        labels = ["point a", "point b (the poisonous one)", "point c"]
        slept = []
        with WorkerPool(2, max_retries=1, sleep=slept.append) as pool:
            with pytest.raises(PoisonJobError) as excinfo:
                pool.map(_flaky_job, jobs, labels=labels)
        error = excinfo.value
        assert "point b (the poisonous one)" in str(error)
        assert "fresh worker pools" in str(error)
        # Every innocent finished and its result is salvageable.
        assert error.completed[0] == 0
        assert error.completed[2] == 4
        assert 1 not in error.completed
        # (index, label, attempts): max_retries + 1 solo attempts.
        assert error.jobs == [(1, "point b (the poisonous one)", 2)]
        assert slept == backoff_delays(1)  # one backoff before the verdict

    def test_job_timeout_treated_as_crash(self, tmp_path):
        jobs = [(0, False), (1, True), (2, False)]
        with WorkerPool(2, max_retries=0, job_timeout=1.0) as pool:
            with pytest.raises(PoisonJobError) as excinfo:
                pool.map(_sleepy_job, jobs)
        error = excinfo.value
        assert error.completed[0] == 0
        assert error.completed[2] == 4
        assert [index for index, _, _ in error.jobs] == [1]

    def test_run_trials_parallel_threads_retry_knobs(self, tmp_path):
        config = standard_config(60, radius_factor=1.2, max_steps=50, seed=3)
        results = run_trials_parallel(
            config, 3, max_workers=2, max_retries=1, job_timeout=600.0
        )
        assert [r.flooding_time for r in results] == [
            r.flooding_time for r in run_trials(config, 3)
        ]


class TestSweepParallelEngineDispatch:
    """Regression: each variant runs through its OWN resolved engine.

    The bug: ``sweep_parallel`` branched once on the *base* config's
    ``resolved_engine``, so a sweep crossing an ``engine="auto"``
    resolution boundary shipped every variant through the base config's
    engine.  Every *built-in* mobility is batch-native since PR 9, so the
    boundary is recreated the way a user-supplied scalar-only model would:
    by removing ``ferry`` from ``BATCH_MOBILITY_REGISTRY`` for the test
    (``max_workers=1`` keeps dispatch in-process, so both the registry
    patch and the counting monkeypatches are visible to every call).
    """

    @staticmethod
    def _scalar_only_ferry(monkeypatch):
        from repro.mobility import BATCH_MOBILITY_REGISTRY

        monkeypatch.delitem(BATCH_MOBILITY_REGISTRY, "ferry")

    @staticmethod
    def _counting(monkeypatch):
        import repro.simulation.batch as batch_mod
        import repro.simulation.parallel as parallel_mod

        batch_calls, scalar_calls = [], []
        real_batch = batch_mod.run_protocol_batch
        real_scalar = parallel_mod.run_flooding

        def counting_batch(config, seqs, **kwargs):
            batch_calls.append(config.mobility)
            return real_batch(config, seqs, **kwargs)

        def counting_scalar(config, **kwargs):
            scalar_calls.append(config.mobility)
            return real_scalar(config, **kwargs)

        monkeypatch.setattr(batch_mod, "run_protocol_batch", counting_batch)
        monkeypatch.setattr(parallel_mod, "run_flooding", counting_scalar)
        return batch_calls, scalar_calls

    def test_mobility_sweep_crossing_auto_boundary(self, monkeypatch):
        self._scalar_only_ferry(monkeypatch)
        batch_calls, scalar_calls = self._counting(monkeypatch)
        base = standard_config(
            60, radius_factor=1.2, max_steps=40, seed=7, engine="auto", mobility="mrwp"
        )
        out = sweep_parallel(base, "mobility", ["mrwp", "ferry"], n_trials=2, max_workers=1)
        assert set(batch_calls) == {"mrwp"}  # the native-batch variant only
        assert set(scalar_calls) == {"ferry"}  # ferry resolves to scalar
        # And the results are the per-variant serial truth.
        for value, _, results in out:
            variant = base.with_options(mobility=value)
            expected = run_trials(variant, 2)
            assert [r.flooding_time for r in results] == [
                r.flooding_time for r in expected
            ]

    def test_scalar_base_sweeping_into_batch_variants(self, monkeypatch):
        self._scalar_only_ferry(monkeypatch)
        batch_calls, scalar_calls = self._counting(monkeypatch)
        base = standard_config(
            60, radius_factor=1.2, max_steps=40, seed=7, engine="auto", mobility="ferry"
        )
        sweep_parallel(base, "mobility", ["ferry", "rwp"], n_trials=2, max_workers=1)
        assert set(scalar_calls) == {"ferry"}
        assert set(batch_calls) == {"rwp"}  # pre-fix: everything ran scalar
