"""Empirical density estimation and distribution distances.

Validation of Theorems 1 and 2 compares sampled agent positions and
destinations against the closed forms.  The tools here are 2-D histogram
densities, total-variation distance on a common binning, Kolmogorov-Smirnov
statistics on marginals, and chi-square goodness-of-fit — all dependency-
free.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "histogram_density",
    "analytic_cell_probabilities",
    "total_variation",
    "ks_statistic",
    "ks_critical_value",
    "chi_square_statistic",
]


def histogram_density(points, side: float, bins: int) -> np.ndarray:
    """Normalized 2-D histogram density of points on ``[0, side]^2``.

    Returns:
        ``(bins, bins)`` array integrating to 1 over the square (i.e. cell
        value * cell area sums to 1).  Index ``[i, j]`` covers
        ``x`` bin ``i``, ``y`` bin ``j``.
    """
    points = np.asarray(points, dtype=np.float64)
    if bins < 1:
        raise ValueError(f"bins must be positive, got {bins}")
    edges = np.linspace(0.0, side, bins + 1)
    hist, _, _ = np.histogram2d(points[:, 0], points[:, 1], bins=[edges, edges])
    total = hist.sum()
    if total == 0:
        raise ValueError("no points fall inside the square")
    cell_area = (side / bins) ** 2
    return hist / (total * cell_area)


def analytic_cell_probabilities(pdf, side: float, bins: int, resolution: int = 4) -> np.ndarray:
    """Cell probabilities of an analytic pdf on the same binning.

    Integrates ``pdf(x, y)`` over each histogram cell by midpoint quadrature
    with ``resolution^2`` sub-samples per cell.

    Args:
        pdf: callable ``pdf(x, y) -> density`` broadcasting over arrays.

    Returns:
        ``(bins, bins)`` array of probabilities summing to ~1.
    """
    if bins < 1 or resolution < 1:
        raise ValueError("bins and resolution must be positive")
    h = side / (bins * resolution)
    centers = (np.arange(bins * resolution) + 0.5) * h
    xg, yg = np.meshgrid(centers, centers, indexing="ij")
    fine = pdf(xg, yg) * h * h
    # Aggregate fine cells into histogram cells.
    coarse = fine.reshape(bins, resolution, bins, resolution).sum(axis=(1, 3))
    return coarse


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two discrete distributions.

    Inputs are normalized defensively; shapes must match.
    """
    p = np.asarray(p, dtype=np.float64).ravel()
    q = np.asarray(q, dtype=np.float64).ravel()
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    p = p / p.sum()
    q = q / q.sum()
    return 0.5 * float(np.abs(p - q).sum())


def ks_statistic(sample, cdf) -> float:
    """One-sample Kolmogorov-Smirnov statistic against an analytic CDF.

    Args:
        sample: 1-D sample.
        cdf: vectorized CDF callable.
    """
    sample = np.sort(np.asarray(list(sample), dtype=np.float64))
    n = sample.size
    if n == 0:
        raise ValueError("sample must be non-empty")
    theoretical = np.asarray(cdf(sample), dtype=np.float64)
    upper = np.arange(1, n + 1) / n - theoretical
    lower = theoretical - np.arange(0, n) / n
    return float(max(upper.max(), lower.max()))


def chi_square_statistic(observed_counts, expected_probabilities) -> tuple:
    """Pearson chi-square statistic and degrees of freedom.

    Bins with expected count below 5 are merged into a tail bin, per the
    usual validity rule.

    Returns:
        ``(statistic, dof)``.
    """
    observed = np.asarray(observed_counts, dtype=np.float64).ravel()
    probs = np.asarray(expected_probabilities, dtype=np.float64).ravel()
    if observed.shape != probs.shape:
        raise ValueError(f"shape mismatch: {observed.shape} vs {probs.shape}")
    total = observed.sum()
    expected = probs / probs.sum() * total
    order = np.argsort(expected)
    observed = observed[order]
    expected = expected[order]
    # Merge small-expectation bins from the left.
    merged_obs = []
    merged_exp = []
    acc_o = 0.0
    acc_e = 0.0
    for o, e in zip(observed, expected):
        acc_o += o
        acc_e += e
        if acc_e >= 5.0:
            merged_obs.append(acc_o)
            merged_exp.append(acc_e)
            acc_o = 0.0
            acc_e = 0.0
    if acc_e > 0 and merged_exp:
        merged_obs[-1] += acc_o
        merged_exp[-1] += acc_e
    elif acc_e > 0:
        merged_obs.append(acc_o)
        merged_exp.append(acc_e)
    merged_obs = np.asarray(merged_obs)
    merged_exp = np.asarray(merged_exp)
    stat = float(np.sum((merged_obs - merged_exp) ** 2 / merged_exp))
    dof = max(1, merged_obs.size - 1)
    return stat, dof


def ks_critical_value(n: int, alpha: float = 0.01) -> float:
    """Asymptotic KS critical value ``c(alpha) / sqrt(n)``."""
    c = math.sqrt(-0.5 * math.log(alpha / 2.0))
    return c / math.sqrt(n)
