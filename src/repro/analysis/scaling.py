"""Scaling-law fits.

The Theorem-3 experiments check *shapes*: flooding time ~ ``a + b / v`` in
the speed sweep, power laws in the ``n`` sweep.  These are ordinary
least-squares fits in the appropriate transform, with ``R^2`` reported so
the experiment tables carry goodness-of-fit evidence.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fit_power_law", "fit_affine_inverse", "r_squared", "PowerLawFit", "AffineInverseFit"]

from dataclasses import dataclass


def r_squared(y: np.ndarray, y_hat: np.ndarray) -> float:
    """Coefficient of determination."""
    y = np.asarray(y, dtype=np.float64)
    y_hat = np.asarray(y_hat, dtype=np.float64)
    ss_res = float(np.sum((y - y_hat) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass(frozen=True)
class PowerLawFit:
    """``y = amplitude * x^exponent`` fitted in log-log space."""

    exponent: float
    amplitude: float
    r2: float

    def predict(self, x) -> np.ndarray:
        return self.amplitude * np.asarray(x, dtype=np.float64) ** self.exponent


def fit_power_law(x, y) -> PowerLawFit:
    """Least-squares power-law fit (requires positive data)."""
    x = np.asarray(list(x), dtype=np.float64)
    y = np.asarray(list(y), dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    lx = np.log(x)
    ly = np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    fit = PowerLawFit(exponent=float(slope), amplitude=float(np.exp(intercept)), r2=0.0)
    r2 = r_squared(ly, np.log(fit.predict(x)))
    return PowerLawFit(exponent=fit.exponent, amplitude=fit.amplitude, r2=r2)


@dataclass(frozen=True)
class AffineInverseFit:
    """``y = constant + slope / x`` — Theorem 3's speed-sweep shape
    ``T = Theta(L/R) + Theta(S) / v``."""

    constant: float
    slope: float
    r2: float

    def predict(self, x) -> np.ndarray:
        return self.constant + self.slope / np.asarray(x, dtype=np.float64)


def fit_affine_inverse(x, y) -> AffineInverseFit:
    """Least-squares fit of ``y = c + s / x``."""
    x = np.asarray(list(x), dtype=np.float64)
    y = np.asarray(list(y), dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if np.any(x == 0):
        raise ValueError("x must be non-zero")
    design = np.stack([np.ones_like(x), 1.0 / x], axis=1)
    coeffs, _res, _rank, _sv = np.linalg.lstsq(design, y, rcond=None)
    fit = AffineInverseFit(constant=float(coeffs[0]), slope=float(coeffs[1]), r2=0.0)
    return AffineInverseFit(fit.constant, fit.slope, r_squared(y, fit.predict(x)))
