"""Analysis toolkit: statistics, empirical densities, scaling fits."""

from repro.analysis.empirical import (
    analytic_cell_probabilities,
    chi_square_statistic,
    histogram_density,
    ks_critical_value,
    ks_statistic,
    total_variation,
)
from repro.analysis.scaling import (
    AffineInverseFit,
    PowerLawFit,
    fit_affine_inverse,
    fit_power_law,
    r_squared,
)
from repro.analysis.stats import (
    bootstrap_ci,
    empirical_quantiles,
    fraction_satisfying,
    geometric_mean,
)
from repro.analysis.trips import (
    axis_gap_cdf,
    axis_gap_pdf,
    collect_trip_lengths,
    mean_axis_gap,
    trip_length_cdf,
    trip_length_pdf,
)
from repro.analysis.validation import (
    destination_cross_errors,
    destination_quadrant_errors,
    spatial_distribution_tv,
)

__all__ = [
    "histogram_density",
    "analytic_cell_probabilities",
    "total_variation",
    "ks_statistic",
    "ks_critical_value",
    "chi_square_statistic",
    "fit_power_law",
    "fit_affine_inverse",
    "r_squared",
    "PowerLawFit",
    "AffineInverseFit",
    "bootstrap_ci",
    "empirical_quantiles",
    "fraction_satisfying",
    "geometric_mean",
    "spatial_distribution_tv",
    "destination_quadrant_errors",
    "destination_cross_errors",
    "axis_gap_pdf",
    "axis_gap_cdf",
    "mean_axis_gap",
    "trip_length_pdf",
    "trip_length_cdf",
    "collect_trip_lengths",
]
