"""Mixing-to-stationarity profiles.

How fast does the MRWP process forget a biased start?  The profile tracks
the TV distance between the empirical spatial law and Theorem 1 over time;
the *mixing time* estimate is the first step at which the distance settles
into the sampling-noise floor.  This quantifies the warm-up a cold-start
simulation would need — and therefore what perfect simulation saves (the
``init_bias`` experiment's machinery, reusable on any mobility model with a
known stationary density).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.empirical import (
    analytic_cell_probabilities,
    histogram_density,
    total_variation,
)

__all__ = ["tv_profile", "estimate_mixing_time", "noise_floor"]


def noise_floor(pdf, side: float, bins: int, n_samples: int) -> float:
    """Expected TV distance of an exact sampler at this sample size/binning."""
    cells = analytic_cell_probabilities(pdf, side, bins).ravel()
    return float(
        0.5 * np.sum(np.sqrt(2.0 * cells * (1.0 - cells) / (np.pi * n_samples)))
    )


def tv_profile(model, pdf, steps: int, bins: int = 10, every: int = 1) -> dict:
    """TV distance to an analytic stationary pdf along a run.

    Args:
        model: a mobility model (advanced in place).
        pdf: the stationary density ``pdf(x, y)`` to compare against.
        steps: number of steps to run.
        bins: histogram resolution per side.
        every: record every ``every`` steps (step 0 always recorded).

    Returns:
        dict with ``steps`` (recorded step indices), ``tv`` (distances) and
        ``floor`` (the sampler noise floor for this configuration).
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    if every < 1:
        raise ValueError(f"every must be positive, got {every}")
    side = model.side
    analytic = analytic_cell_probabilities(pdf, side, bins)
    cell_area = (side / bins) ** 2

    def _tv(positions):
        empirical = histogram_density(positions, side, bins) * cell_area
        return total_variation(empirical, analytic)

    recorded_steps = [0]
    tv = [_tv(model.positions)]
    for t in range(1, steps + 1):
        positions = model.step()
        if t % every == 0 or t == steps:
            recorded_steps.append(t)
            tv.append(_tv(positions))
    return {
        "steps": np.asarray(recorded_steps),
        "tv": np.asarray(tv),
        "floor": noise_floor(pdf, side, bins, model.n),
    }


def estimate_mixing_time(profile: dict, slack: float = 1.5) -> float:
    """First recorded step at which TV enters ``slack * floor`` for good.

    Returns ``numpy.inf`` when the profile never settles within the slack
    (run longer, or the start is pathologically far).
    """
    if slack <= 1.0:
        raise ValueError(f"slack must exceed 1, got {slack}")
    threshold = slack * profile["floor"]
    below = profile["tv"] <= threshold
    # "For good": the last excursion above the threshold decides.
    above_idx = np.nonzero(~below)[0]
    if above_idx.size == 0:
        return float(profile["steps"][0])
    if above_idx[-1] == len(below) - 1:
        return float("inf")
    return float(profile["steps"][above_idx[-1] + 1])
