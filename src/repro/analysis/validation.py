"""End-to-end validation of the stationary distributions (Theorems 1-2).

These functions power the ``thm1_spatial`` / ``thm2_destination``
experiments and the statistical test suite: they run the samplers (or the
MRWP process itself) and compare against the closed forms, returning
distances and pass/fail indications at explicit tolerances.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.empirical import (
    analytic_cell_probabilities,
    histogram_density,
    total_variation,
)
from repro.mobility.distributions import (
    cross_probability,
    quadrant_masses,
    spatial_pdf,
)

__all__ = [
    "spatial_distribution_tv",
    "destination_quadrant_errors",
    "destination_cross_errors",
]


def spatial_distribution_tv(positions, side: float, bins: int = 20) -> float:
    """Total-variation distance between sampled positions and Theorem 1.

    The comparison is on the ``bins x bins`` discretization: the empirical
    histogram probabilities against the exact integral of the closed-form
    pdf over the same cells.
    """
    density = histogram_density(positions, side, bins)
    cell_area = (side / bins) ** 2
    empirical = density * cell_area
    analytic = analytic_cell_probabilities(lambda x, y: spatial_pdf(x, y, side), side, bins)
    return total_variation(empirical, analytic)


def destination_quadrant_errors(position, destinations, side: float) -> dict:
    """Empirical vs analytic quadrant masses of the destination law at a position.

    Args:
        position: the conditioning position ``(x0, y0)``.
        destinations: sampled destinations of agents at that position.

    Returns:
        dict with ``empirical`` and ``analytic`` arrays (order SW, SE, NW,
        NE — the off-cross part only) and ``max_error``.
    """
    destinations = np.asarray(destinations, dtype=np.float64)
    x0, y0 = float(position[0]), float(position[1])
    x = destinations[:, 0]
    y = destinations[:, 1]
    tol = 1e-12 * max(side, 1.0)
    on_cross = (np.abs(x - x0) <= tol) | (np.abs(y - y0) <= tol)
    n = destinations.shape[0]
    emp = np.array(
        [
            np.count_nonzero((x < x0) & (y < y0) & ~on_cross),
            np.count_nonzero((x > x0) & (y < y0) & ~on_cross),
            np.count_nonzero((x < x0) & (y > y0) & ~on_cross),
            np.count_nonzero((x > x0) & (y > y0) & ~on_cross),
        ],
        dtype=np.float64,
    ) / n
    analytic = quadrant_masses(x0, y0, side)
    return {
        "empirical": emp,
        "analytic": analytic,
        "max_error": float(np.max(np.abs(emp - analytic))),
    }


def destination_cross_errors(position, destinations, side: float) -> dict:
    """Empirical vs analytic cross-segment masses (Eqs. 4-5) at a position.

    Returns:
        dict with ``empirical`` and ``analytic`` arrays (order S, N, W, E),
        ``total_empirical`` (should approach 1/2) and ``max_error``.
    """
    destinations = np.asarray(destinations, dtype=np.float64)
    x0, y0 = float(position[0]), float(position[1])
    x = destinations[:, 0]
    y = destinations[:, 1]
    tol = 1e-12 * max(side, 1.0)
    on_vertical = np.abs(x - x0) <= tol
    on_horizontal = np.abs(y - y0) <= tol
    n = destinations.shape[0]
    emp = np.array(
        [
            np.count_nonzero(on_vertical & (y < y0)),
            np.count_nonzero(on_vertical & (y > y0)),
            np.count_nonzero(on_horizontal & (x < x0)),
            np.count_nonzero(on_horizontal & (x > x0)),
        ],
        dtype=np.float64,
    ) / n
    analytic = cross_probability(x0, y0, side)
    return {
        "empirical": emp,
        "analytic": analytic,
        "total_empirical": float(emp.sum()),
        "max_error": float(np.max(np.abs(emp - analytic))),
    }
