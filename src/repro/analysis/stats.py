"""Statistical helpers: bootstrap intervals and robust summaries.

The paper's statements are "with high probability"; empirically we replace
them with Monte-Carlo estimates over independent trials plus bootstrap
confidence intervals (no distributional assumptions — flooding times are
skewed).
"""

from __future__ import annotations

import numpy as np

__all__ = ["bootstrap_ci", "empirical_quantiles", "fraction_satisfying", "geometric_mean"]


def bootstrap_ci(
    values,
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: np.random.Generator = None,
) -> tuple:
    """Percentile-bootstrap confidence interval for a statistic.

    Args:
        values: 1-D sample.
        statistic: callable reducing an array to a scalar (default mean).
        confidence: interval coverage.
        n_resamples: bootstrap resamples.
        rng: generator (seeded by default for reproducibility).

    Returns:
        ``(low, high)``.
    """
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("values must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = rng if rng is not None else np.random.default_rng(0)
    idx = rng.integers(0, values.size, size=(n_resamples, values.size))
    samples = values[idx]
    stats = np.apply_along_axis(statistic, 1, samples)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(stats, alpha)), float(np.quantile(stats, 1.0 - alpha)))


def empirical_quantiles(values, qs=(0.05, 0.25, 0.5, 0.75, 0.95)) -> dict:
    """Named quantiles of a sample (ignores non-finite entries)."""
    values = np.asarray(list(values), dtype=np.float64)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return {q: float("nan") for q in qs}
    return {q: float(np.quantile(finite, q)) for q in qs}


def fraction_satisfying(values, predicate) -> float:
    """Fraction of sample entries for which ``predicate`` holds.

    The empirical counterpart of a w.h.p. statement: e.g.
    ``fraction_satisfying(turn_counts, lambda h: h <= bound)``.
    """
    values = list(values)
    if not values:
        raise ValueError("values must be non-empty")
    hits = sum(1 for value in values if predicate(value))
    return hits / len(values)


def geometric_mean(values) -> float:
    """Geometric mean of positive values (ratios across parameter sweeps)."""
    values = np.asarray(list(values), dtype=np.float64)
    if np.any(values <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))
