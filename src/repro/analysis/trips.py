"""Trip-length statistics of the MRWP process.

A trip's Manhattan length is ``D = |X1 - X0| + |Y1 - Y0|`` with all four
coordinates i.i.d. uniform on ``[0, L]``.  Each axis gap ``|U - V|`` has the
triangular density ``2 (L - g) / L^2``; ``D`` is the sum of two independent
such gaps, whose convolution has the closed piecewise-cubic form implemented
here.  Validating the *process-level* leg/trip lengths against these forms
is another independent check of the MRWP implementation, complementary to
the positional Theorems 1-2.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.mrwp import ManhattanRandomWaypoint

__all__ = [
    "axis_gap_pdf",
    "axis_gap_cdf",
    "trip_length_pdf",
    "trip_length_cdf",
    "mean_axis_gap",
    "collect_trip_lengths",
    "collect_trip_lengths_with_stats",
]


def _validate(side: float) -> float:
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return float(side)


def axis_gap_pdf(g, side: float):
    """pdf of ``|U - V|``, U, V ~ Uniform[0, L]: ``2 (L - g) / L^2``."""
    side = _validate(side)
    g = np.asarray(g, dtype=np.float64)
    inside = (g >= 0) & (g <= side)
    return np.where(inside, 2.0 * (side - g) / side**2, 0.0)


def axis_gap_cdf(g, side: float):
    """CDF of the axis gap: ``g (2L - g) / L^2`` on ``[0, L]``."""
    side = _validate(side)
    g = np.clip(np.asarray(g, dtype=np.float64), 0.0, side)
    return g * (2.0 * side - g) / side**2


def mean_axis_gap(side: float) -> float:
    """E|U - V| = L/3 (each axis contributes L/3 to the 2L/3 mean trip)."""
    return _validate(side) / 3.0


def trip_length_pdf(d, side: float):
    """pdf of the Manhattan trip length ``D`` (convolution of two gaps).

    For ``t = d / L``:

    * ``0 <= t <= 1``:  ``f(d) L = 4t - 6t^2 + (8/3) t^3 ... `` — derived
      below by direct convolution of ``2(1-g)`` densities;
    * ``1 <= t <= 2``:  the symmetric tail polynomial.

    The implementation integrates the convolution exactly:

    ``f_D(d) = ∫ f_gap(u) f_gap(d - u) du`` over the admissible ``u`` range.
    """
    side = _validate(side)
    d = np.asarray(d, dtype=np.float64)
    t = d / side
    # Convolution of f(g) = 2(1 - g) on [0, 1] with itself, in units of L:
    #   0 <= t <= 1:  4 ∫_0^t (1-u)(1-t+u) du = 4t - 4t^2 + (2/3) t^3
    #   1 <= t <= 2:  4 ∫_{t-1}^1 (1-u)(1-t+u) du = (2/3) (2-t)^3
    # (continuous at t = 1 where both equal 2/3; verified against the
    # numeric convolution in the tests).
    low = 4.0 * t - 4.0 * t**2 + (2.0 / 3.0) * t**3
    high = (2.0 / 3.0) * (2.0 - t) ** 3
    value = np.where(t <= 1.0, low, high)
    inside = (t >= 0.0) & (t <= 2.0)
    return np.where(inside, value / side, 0.0)


def trip_length_cdf(d, side: float):
    """CDF of the Manhattan trip length (exact piecewise quartic)."""
    side = _validate(side)
    d = np.asarray(d, dtype=np.float64)
    t = np.clip(d / side, 0.0, 2.0)
    low = 2.0 * t**2 - (4.0 / 3.0) * t**3 + (1.0 / 6.0) * t**4
    high = 1.0 - (1.0 / 6.0) * (2.0 - t) ** 4
    return np.where(t <= 1.0, low, high)


def collect_trip_lengths(
    n_agents: int,
    side: float,
    speed: float,
    steps: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Observe completed MRWP trips and return their Manhattan lengths.

    Convenience wrapper over :func:`collect_trip_lengths_with_stats`.
    """
    lengths, _stats = collect_trip_lengths_with_stats(n_agents, side, speed, steps, rng)
    return lengths


def collect_trip_lengths_with_stats(
    n_agents: int,
    side: float,
    speed: float,
    steps: int,
    rng: np.random.Generator,
) -> tuple:
    """Observe completed MRWP trips; return ``(lengths, stats)``.

    Runs the process, detecting arrivals via the model's arrival counters
    and recording the Manhattan distance between consecutive destinations
    — each trip counted once when started, so the sample follows the exact
    trip-length law with two quantified exceptions reported in ``stats``:

    * each agent's first recorded trip is *skipped* (its start is the
      Palm-initialized trip's length-biased destination);
    * steps in which an agent completes 2+ trips are skipped (only the
      chain's endpoints are observable), censoring a ``dropped_fraction``
      of trips that are all short — consumers must widen KS tolerances by
      this fraction.

    Returns:
        ``(lengths, stats)`` with ``stats`` holding ``total_arrivals``,
        ``recorded``, ``skipped_first``, ``dropped_multi`` and
        ``dropped_fraction``.
    """
    model = ManhattanRandomWaypoint(n_agents, side, speed, rng=rng)
    prev_dest = model.destinations
    prev_arrivals = model.arrival_counts.copy()
    seen_first = np.zeros(n_agents, dtype=bool)
    lengths = []
    skipped_first = 0
    dropped_multi = 0
    for _ in range(steps):
        model.step()
        arrived = model.arrival_counts > prev_arrivals
        if np.any(arrived):
            new_dest = model.destinations
            jumps = model.arrival_counts - prev_arrivals
            single = arrived & (jumps == 1)
            usable = single & seen_first
            skipped_first += int(np.count_nonzero(single & ~seen_first))
            dropped_multi += int(jumps[jumps > 1].sum())
            lengths.append(
                np.abs(new_dest[usable] - prev_dest[usable]).sum(axis=1)
            )
            seen_first |= arrived
            prev_dest = new_dest
            prev_arrivals = model.arrival_counts.copy()
    lengths = np.concatenate(lengths) if lengths else np.empty(0)
    total = int(model.arrival_counts.sum())
    stats = {
        "total_arrivals": total,
        "recorded": int(lengths.size),
        "skipped_first": skipped_first,
        "dropped_multi": dropped_multi,
        "dropped_fraction": dropped_multi / total if total else 0.0,
    }
    return lengths, stats
