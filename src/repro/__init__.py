"""repro — reproduction of "Fast Flooding over Manhattan" (PODC 2010).

A simulation and analysis library for MANET flooding under the Manhattan
Random Way-Point mobility model: the MRWP process with perfect stationary
simulation, the paper's closed-form distributions and bounds, the flooding
protocol and baselines, and the experiment harness regenerating the paper's
figure and validating every lemma and theorem empirically.

Quickstart::

    from repro import standard_config, run_flooding

    config = standard_config(n=2000, seed=7)
    result = run_flooding(config)
    print(result.flooding_time, "steps; bound", config.upper_bound())

See README.md for the full tour and DESIGN.md for the paper -> code map.
"""

from repro.core import theory
from repro.core.cells import CellGrid
from repro.core.zones import ZonePartition
from repro.mobility import (
    ManhattanRandomWaypoint,
    ManhattanRandomWaypointWithPause,
    RandomDirection,
    RandomSpeedManhattanWaypoint,
    RandomWalk,
    RandomWaypoint,
)
from repro.network import DiskGraph, SnapshotSeries, temporal_bfs
from repro.protocols import (
    FloodingProtocol,
    GossipProtocol,
    ParsimoniousFlooding,
    ProbabilisticFlooding,
    SIREpidemic,
)
from repro.simulation import (
    FloodingConfig,
    FloodingResult,
    run_flooding,
    run_trials,
    standard_config,
    summarize,
    sweep,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "theory",
    "CellGrid",
    "ZonePartition",
    "ManhattanRandomWaypoint",
    "ManhattanRandomWaypointWithPause",
    "RandomSpeedManhattanWaypoint",
    "RandomWaypoint",
    "RandomWalk",
    "RandomDirection",
    "DiskGraph",
    "SnapshotSeries",
    "temporal_bfs",
    "FloodingProtocol",
    "GossipProtocol",
    "ParsimoniousFlooding",
    "ProbabilisticFlooding",
    "SIREpidemic",
    "FloodingConfig",
    "FloodingResult",
    "standard_config",
    "run_flooding",
    "run_trials",
    "sweep",
    "summarize",
]
