"""repro — reproduction of "Fast Flooding over Manhattan" (PODC 2010).

A simulation and analysis library for MANET flooding under the Manhattan
Random Way-Point mobility model: the MRWP process with perfect stationary
simulation, the paper's closed-form distributions and bounds, the flooding
protocol and baselines, and the experiment harness regenerating the paper's
figure and validating every lemma and theorem empirically.

Two execution engines share one seed schedule: the scalar
:class:`~repro.simulation.engine.Simulation` (the reference, one trial at a
time) and the vectorized :class:`~repro.simulation.batch.BatchSimulation`
(``engine="batch"``), which advances every trial of a multi-trial run in
lock-step over a ``(B, n, 2)`` position tensor and reproduces the scalar
results trial-for-trial at fixed seeds.

Quickstart::

    from repro import standard_config, run_flooding, run_trials

    config = standard_config(n=2000, seed=7)
    result = run_flooding(config)
    print(result.flooding_time, "steps; bound", config.upper_bound())

    # Many trials, one vectorized pass (same results as engine="scalar"):
    results = run_trials(config.with_options(engine="batch"), 32)

See README.md for the full tour, DESIGN.md for the paper -> code map and
the batch-engine design, and EXPERIMENTS.md for the per-experiment
reproduction recipes.
"""

from repro.core import theory
from repro.core.cells import CellGrid
from repro.core.zones import ZonePartition
from repro.mobility import (
    BATCH_MOBILITY_REGISTRY,
    MODEL_REGISTRY,
    ManhattanRandomWaypoint,
    ManhattanRandomWaypointWithPause,
    RandomDirection,
    RandomSpeedManhattanWaypoint,
    RandomWalk,
    RandomWaypoint,
)
from repro.network import DiskGraph, SnapshotSeries, temporal_bfs
from repro.protocols import (
    BATCH_PROTOCOL_REGISTRY,
    PROTOCOL_REGISTRY,
    FloodingProtocol,
    GossipProtocol,
    ParsimoniousFlooding,
    ProbabilisticFlooding,
    SIREpidemic,
)
from repro.simulation import (
    BatchSimulation,
    FloodingConfig,
    FloodingResult,
    SweepPlan,
    SweepPoint,
    SweepPointResult,
    run_flooding,
    run_flooding_batch,
    run_protocol_batch,
    run_sweep,
    run_trials,
    standard_config,
    summarize,
    sweep,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "theory",
    "CellGrid",
    "ZonePartition",
    "ManhattanRandomWaypoint",
    "ManhattanRandomWaypointWithPause",
    "RandomSpeedManhattanWaypoint",
    "RandomWaypoint",
    "RandomWalk",
    "RandomDirection",
    "DiskGraph",
    "SnapshotSeries",
    "temporal_bfs",
    "FloodingProtocol",
    "GossipProtocol",
    "ParsimoniousFlooding",
    "ProbabilisticFlooding",
    "SIREpidemic",
    "FloodingConfig",
    "FloodingResult",
    "BatchSimulation",
    "standard_config",
    "run_flooding",
    "run_flooding_batch",
    "run_protocol_batch",
    "PROTOCOL_REGISTRY",
    "BATCH_PROTOCOL_REGISTRY",
    "MODEL_REGISTRY",
    "BATCH_MOBILITY_REGISTRY",
    "run_trials",
    "sweep",
    "SweepPlan",
    "SweepPoint",
    "SweepPointResult",
    "run_sweep",
    "summarize",
]
