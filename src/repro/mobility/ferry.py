"""Message-ferry mobility (paper ref [30], Zhao-Ammar-Zegura) and composition.

A *message ferry* is a dedicated agent moving along a fixed patrol route to
carry data across sparse regions — the engineering answer to the problem the
paper solves probabilistically (information crossing the disconnected
Suburb).  :class:`FerryPatrol` provides deterministic loop-following agents
and :class:`CompositeMobility` glues them onto a background MRWP population,
so the delay-tolerant-routing example can compare "wait for Lemma-16
meetings" against "add ferries".

Since PR 9 the ferry is a thin specialization of the timetable family
(:mod:`repro.mobility.timetable`): a zero-dwell single-route
:class:`~repro.mobility.timetable.TimetableMobility` with no riders.  The
zero-dwell engine path reproduces the historical arc-length arithmetic bit
for bit (asserted by a pinned regression test), and both models now have
native batch twins — :class:`BatchFerryPatrol` and
:class:`BatchCompositeMobility` — so nothing in this module needs the
``ReplicatedBatchMobility`` fallback any more.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import BatchMobilityModel, MobilityModel
from repro.mobility.timetable import (
    BatchTimetableMobility,
    Timetable,
    TimetableMobility,
    _route_positions_at_arc,
    rectangle_route,
)

__all__ = [
    "FerryPatrol",
    "BatchFerryPatrol",
    "CompositeMobility",
    "BatchCompositeMobility",
    "composite_with_ferries",
    "batch_composite_with_ferries",
    "rectangle_route",
]


class FerryPatrol(TimetableMobility):
    """Deterministic agents looping along a closed polyline at constant speed.

    A zero-dwell, single-route, rider-free timetable: vehicles never stop,
    so their trajectory is the historical constant-speed arc advance
    (bit-exact with the pre-timetable implementation).

    Args:
        n: number of ferries, spaced evenly along the route.
        side: region side (route points must lie inside).
        speed: ferry speed.
        route: ``(k, 2)`` way-points of the closed loop (the segment from
            the last point back to the first is implied); defaults to
            :func:`rectangle_route` at distance ``inset`` from the walls.
        rng: randomness source, consumed only when ``jitter > 0``.
        inset: wall distance of the default rectangular route (only used
            when ``route`` is omitted); defaults to ``side / 8``.
        jitter: optional phase jitter — each ferry's starting arc is
            offset by a uniform draw of up to ``jitter`` ferry spacings
            (default 0: deterministic even spacing, no rng consumed).
    """

    def __init__(
        self, n: int, side: float, speed: float, route: np.ndarray = None,
        rng=None, inset: float = None, jitter: float = 0.0,
    ):
        if route is None:
            route = rectangle_route(side, side / 8.0 if inset is None else inset)
        timetable = Timetable([np.asarray(route, dtype=np.float64)])
        super().__init__(
            n, side, speed, rng=rng, timetable=timetable, jitter=jitter,
        )
        # Legacy surface, preserved for tests and downstream callers.
        self.route = timetable.routes[0]
        self._seg_lengths = timetable.seg_lengths[0]
        self._cum = timetable.cum[0]
        self.route_length = timetable.lengths[0]

    @property
    def _arc(self) -> np.ndarray:
        return self._engine.veh_arc

    def _positions_at_arc(self, arc: np.ndarray) -> np.ndarray:
        return _route_positions_at_arc(
            self.route, self._seg_lengths, self._cum, self.route_length, arc
        )


class BatchFerryPatrol(BatchTimetableMobility):
    """Batch twin of :class:`FerryPatrol` — ``B`` replicas in lock-step.

    Ferries are deterministic (``jitter=0``), so every replica carries the
    identical patrol; the class exists so ``mobility="ferry"`` resolves to
    a native batch model (and composes into
    :class:`BatchCompositeMobility`) instead of the replicated fallback.
    """

    def __init__(
        self, n: int, side: float, speed: float, rngs,
        route: np.ndarray = None, inset: float = None, jitter: float = 0.0,
    ):
        if route is None:
            route = rectangle_route(side, side / 8.0 if inset is None else inset)
        timetable = Timetable([np.asarray(route, dtype=np.float64)])
        super().__init__(
            n, side, speed, rngs, timetable=timetable, jitter=jitter,
        )
        self.route = timetable.routes[0]
        self.route_length = timetable.lengths[0]

    @property
    def _arc(self) -> np.ndarray:
        return self._engine.veh_arc


class CompositeMobility(MobilityModel):
    """Concatenation of several mobility models into one agent population.

    Agent indices are assigned block-wise in the order the models are given
    (e.g. MRWP agents ``0..n-1`` followed by ferries ``n..n+f-1``).
    """

    def __init__(self, models):
        models = list(models)
        if not models:
            raise ValueError("at least one model is required")
        side = models[0].side
        for model in models[1:]:
            if abs(model.side - side) > 1e-9:
                raise ValueError("all composed models must share the same side length")
        total = sum(model.n for model in models)
        super().__init__(total, side, max(model.speed for model in models))
        self.models = models

    @property
    def positions(self) -> np.ndarray:
        return np.concatenate([model.positions for model in self.models], axis=0)

    def step(self, dt: float = 1.0) -> np.ndarray:
        for model in self.models:
            model.step(dt)
        self.time += dt
        return self.positions

    def block_slices(self) -> list:
        """Index slice of each composed model's agents, in composition order."""
        out = []
        start = 0
        for model in self.models:
            out.append(slice(start, start + model.n))
            start += model.n
        return out


class BatchCompositeMobility(BatchMobilityModel):
    """Block-wise concatenation of native batch models, advanced in lock-step.

    The batch twin of :class:`CompositeMobility`: each member keeps its own
    ``(B, n_i, 2)`` state and the composite maintains an assembled
    ``(B, sum n_i, 2)`` buffer with the same block order as the scalar
    composition, so per-replica agent indices line up exactly.  All members
    must share the batch size and (within the scalar tolerance) the side.
    """

    def __init__(self, models):
        models = list(models)
        if not models:
            raise ValueError("at least one model is required")
        batch_size = models[0].batch_size
        side = models[0].side
        for model in models[1:]:
            if model.batch_size != batch_size:
                raise ValueError("all composed models must share the batch size")
            if abs(model.side - side) > 1e-9:
                raise ValueError("all composed models must share the same side length")
        total = sum(model.n for model in models)
        super().__init__(
            total, side, max(model.speed for model in models), models[0].rngs
        )
        self.models = models
        self._pos = np.empty((batch_size * total, 2), dtype=np.float64)
        self._gather()

    def block_slices(self) -> list:
        """Per-replica index slice of each member, in composition order."""
        out = []
        start = 0
        for model in self.models:
            out.append(slice(start, start + model.n))
            start += model.n
        return out

    def _gather(self) -> None:
        buf = self._pos.reshape(self.batch_size, self.n, 2)
        for model, block in zip(self.models, self.block_slices()):
            buf[:, block, :] = model.positions_view

    def step(self, dt: float = 1.0, active=None, copy: bool = True) -> np.ndarray:
        active = self._active_mask(active)
        for model in self.models:
            model.step(dt, active=active, copy=False)
        self.time += dt
        self._gather()
        return self.positions if copy else self.positions_view


def composite_with_ferries(
    n: int,
    side: float,
    speed: float,
    rng: np.random.Generator = None,
    ferries: int = 1,
    inset: float = None,
    init="stationary",
) -> CompositeMobility:
    """An MRWP background population with a ferry patrol block appended.

    The config-shaped constructor behind ``mobility="composite"``: the
    delay-tolerant-routing composition (MRWP agents ``0..n-ferries-1``,
    ferries after) as a single registered model, so experiments can select
    it by name.  Ferries are deterministic, so all randomness (and hence
    seed-for-seed reproducibility across engines) lives in the MRWP block.

    Args:
        n: total agents, ferries included.
        side, speed, rng: as for :class:`~repro.mobility.base.MobilityModel`
            (both blocks share the speed).
        ferries: ferry count (at least 1, leaving at least 2 MRWP agents).
        inset: wall distance of the rectangular patrol route
            (default ``side / 8``).
        init: MRWP-block initialization mode.
    """
    from repro.mobility.mrwp import ManhattanRandomWaypoint

    ferries = int(ferries)
    if not 1 <= ferries <= n - 2:
        raise ValueError(
            f"ferries must be in [1, n - 2] (need an MRWP background), got {ferries}"
        )
    background = ManhattanRandomWaypoint(n - ferries, side, speed, rng=rng, init=init)
    patrol = FerryPatrol(ferries, side, speed, inset=inset)
    return CompositeMobility([background, patrol])


def batch_composite_with_ferries(
    n: int,
    side: float,
    speed: float,
    rngs,
    ferries: int = 1,
    inset: float = None,
    init="stationary",
) -> BatchCompositeMobility:
    """Batch twin of :func:`composite_with_ferries`, same block layout.

    Member construction order matches the scalar factory (MRWP background
    first, ferries after), so per-replica draw order — and therefore every
    position — is seed-for-seed identical to the scalar model.
    """
    from repro.mobility.mrwp import BatchManhattanRandomWaypoint

    ferries = int(ferries)
    if not 1 <= ferries <= n - 2:
        raise ValueError(
            f"ferries must be in [1, n - 2] (need an MRWP background), got {ferries}"
        )
    background = BatchManhattanRandomWaypoint(n - ferries, side, speed, rngs, init=init)
    patrol = BatchFerryPatrol(ferries, side, speed, rngs)
    return BatchCompositeMobility([background, patrol])
