"""Message-ferry mobility (paper ref [30], Zhao-Ammar-Zegura) and composition.

A *message ferry* is a dedicated agent moving along a fixed patrol route to
carry data across sparse regions — the engineering answer to the problem the
paper solves probabilistically (information crossing the disconnected
Suburb).  :class:`FerryPatrol` provides deterministic loop-following agents
and :class:`CompositeMobility` glues them onto a background MRWP population,
so the delay-tolerant-routing example can compare "wait for Lemma-16
meetings" against "add ferries".
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel

__all__ = [
    "FerryPatrol",
    "CompositeMobility",
    "composite_with_ferries",
    "rectangle_route",
]


def rectangle_route(side: float, inset: float) -> np.ndarray:
    """A rectangular loop at distance ``inset`` from the square's walls.

    A common ferry route: it passes near all four Suburb corners.
    """
    if not 0 <= inset < side / 2:
        raise ValueError(f"inset must be in [0, side/2), got {inset}")
    lo = inset
    hi = side - inset
    return np.array([[lo, lo], [hi, lo], [hi, hi], [lo, hi]], dtype=np.float64)


class FerryPatrol(MobilityModel):
    """Deterministic agents looping along a closed polyline at constant speed.

    Args:
        n: number of ferries, spaced evenly along the route.
        side: region side (route points must lie inside).
        speed: ferry speed.
        route: ``(k, 2)`` way-points of the closed loop (the segment from
            the last point back to the first is implied); defaults to
            :func:`rectangle_route` at distance ``inset`` from the walls.
        inset: wall distance of the default rectangular route (only used
            when ``route`` is omitted); defaults to ``side / 8``.
    """

    def __init__(
        self, n: int, side: float, speed: float, route: np.ndarray = None,
        rng=None, inset: float = None,
    ):
        super().__init__(n, side, speed, rng)
        if route is None:
            route = rectangle_route(side, side / 8.0 if inset is None else inset)
        route = np.asarray(route, dtype=np.float64)
        if route.ndim != 2 or route.shape[1] != 2 or route.shape[0] < 2:
            raise ValueError(f"route must have shape (k>=2, 2), got {route.shape}")
        if np.any(route < 0) or np.any(route > side):
            raise ValueError("route way-points must lie inside the square")
        self.route = route
        segments = np.diff(np.vstack([route, route[:1]]), axis=0)
        self._seg_lengths = np.sqrt(np.sum(segments * segments, axis=1))
        if np.any(self._seg_lengths <= 0):
            raise ValueError("route contains zero-length segments")
        self._cum = np.concatenate([[0.0], np.cumsum(self._seg_lengths)])
        self.route_length = float(self._cum[-1])
        # Even spacing along the loop.
        self._arc = (np.arange(self.n) / self.n) * self.route_length

    def _positions_at_arc(self, arc: np.ndarray) -> np.ndarray:
        arc = np.mod(arc, self.route_length)
        seg = np.clip(np.searchsorted(self._cum, arc, side="right") - 1, 0, len(self._seg_lengths) - 1)
        offset = arc - self._cum[seg]
        start = self.route[seg]
        nxt = self.route[(seg + 1) % self.route.shape[0]]
        direction = (nxt - start) / self._seg_lengths[seg][:, None]
        return start + direction * offset[:, None]

    @property
    def positions(self) -> np.ndarray:
        return self._positions_at_arc(self._arc)

    def step(self, dt: float = 1.0) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self._arc = np.mod(self._arc + self.speed * dt, self.route_length)
        self.time += dt
        return self.positions


class CompositeMobility(MobilityModel):
    """Concatenation of several mobility models into one agent population.

    Agent indices are assigned block-wise in the order the models are given
    (e.g. MRWP agents ``0..n-1`` followed by ferries ``n..n+f-1``).
    """

    def __init__(self, models):
        models = list(models)
        if not models:
            raise ValueError("at least one model is required")
        side = models[0].side
        for model in models[1:]:
            if abs(model.side - side) > 1e-9:
                raise ValueError("all composed models must share the same side length")
        total = sum(model.n for model in models)
        super().__init__(total, side, max(model.speed for model in models))
        self.models = models

    @property
    def positions(self) -> np.ndarray:
        return np.concatenate([model.positions for model in self.models], axis=0)

    def step(self, dt: float = 1.0) -> np.ndarray:
        for model in self.models:
            model.step(dt)
        self.time += dt
        return self.positions

    def block_slices(self) -> list:
        """Index slice of each composed model's agents, in composition order."""
        out = []
        start = 0
        for model in self.models:
            out.append(slice(start, start + model.n))
            start += model.n
        return out


def composite_with_ferries(
    n: int,
    side: float,
    speed: float,
    rng: np.random.Generator = None,
    ferries: int = 1,
    inset: float = None,
    init="stationary",
) -> CompositeMobility:
    """An MRWP background population with a ferry patrol block appended.

    The config-shaped constructor behind ``mobility="composite"``: the
    delay-tolerant-routing composition (MRWP agents ``0..n-ferries-1``,
    ferries after) as a single registered model, so experiments can select
    it by name.  Ferries are deterministic, so all randomness (and hence
    seed-for-seed reproducibility under the replicated batch adapter)
    lives in the MRWP block.

    Args:
        n: total agents, ferries included.
        side, speed, rng: as for :class:`~repro.mobility.base.MobilityModel`
            (both blocks share the speed).
        ferries: ferry count (at least 1, leaving at least 2 MRWP agents).
        inset: wall distance of the rectangular patrol route
            (default ``side / 8``).
        init: MRWP-block initialization mode.
    """
    from repro.mobility.mrwp import ManhattanRandomWaypoint

    ferries = int(ferries)
    if not 1 <= ferries <= n - 2:
        raise ValueError(
            f"ferries must be in [1, n - 2] (need an MRWP background), got {ferries}"
        )
    background = ManhattanRandomWaypoint(n - ferries, side, speed, rng=rng, init=init)
    patrol = FerryPatrol(ferries, side, speed, inset=inset)
    return CompositeMobility([background, patrol])
