"""Closed-form stationary distributions of the MRWP model.

These are the analytical results the paper builds on:

* **Theorem 1** (from ref [13]): the stationary *spatial* pdf

  .. math:: f(x, y) = \\frac{3}{L^3}(x + y) - \\frac{3}{L^4}(x^2 + y^2)
            = \\frac{3}{L^4}\\bigl(x(L-x) + y(L-y)\\bigr)

* **Theorem 2** (from ref [12]): the stationary *destination* pdf
  conditioned on the agent position ``(x0, y0)`` — constant on each of the
  four open quadrants around the position and singular (an atom of total
  mass 1/2) on the axis-parallel *cross* through the position;

* **Equations 4–5**: the cross-segment probabilities
  ``phi^S = phi^N = y0 (L - y0) / (4 L (x0+y0) - 4 (x0^2+y0^2))`` and
  ``phi^W = phi^E = x0 (L - x0) / (...)``;

* **Observation 5**: the closed-form probability mass of an axis-aligned
  square cell, used to define the Central Zone (Definition 4).

All functions broadcast over numpy arrays.  The quadrant naming convention
is relative to the conditioning position: ``SW`` means destination with
``x < x0 and y < y0``, etc.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "spatial_pdf",
    "spatial_pdf_max",
    "spatial_pdf_min",
    "spatial_marginal_pdf",
    "spatial_marginal_cdf",
    "cell_mass",
    "region_mass",
    "destination_pdf",
    "quadrant_masses",
    "cross_probability",
    "cross_probability_total",
    "mean_trip_length",
    "QUADRANTS",
    "SEGMENTS",
]

#: Quadrant labels, in the fixed order used by array-returning functions.
QUADRANTS = ("SW", "SE", "NW", "NE")
#: Cross-segment labels (destinations on the axis-parallel cross).
SEGMENTS = ("S", "N", "W", "E")


def _validate_side(side: float) -> float:
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return float(side)


def spatial_pdf(x, y, side: float):
    """Stationary spatial pdf ``f(x, y)`` of Theorem 1.

    Zero outside ``[0, side]^2``.  Broadcasts over array inputs.
    """
    side = _validate_side(side)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    inside = (x >= 0) & (x <= side) & (y >= 0) & (y <= side)
    value = 3.0 / side**4 * (x * (side - x) + y * (side - y))
    return np.where(inside, value, 0.0)


def spatial_pdf_max(side: float) -> float:
    """Maximum of the spatial pdf, attained at the center ``(L/2, L/2)``."""
    side = _validate_side(side)
    return 3.0 / (2.0 * side * side)


def spatial_pdf_min(side: float) -> float:
    """Minimum of the spatial pdf over the square (0, at the corners)."""
    _validate_side(side)
    return 0.0


def spatial_marginal_pdf(x, side: float):
    """Marginal pdf of one coordinate: ``f_X(x) = 3 x (L-x)/L^3 + 1/(2L)``.

    Obtained by integrating Theorem 1's pdf over the other coordinate.
    """
    side = _validate_side(side)
    x = np.asarray(x, dtype=np.float64)
    inside = (x >= 0) & (x <= side)
    value = 3.0 * x * (side - x) / side**3 + 0.5 / side
    return np.where(inside, value, 0.0)


def spatial_marginal_cdf(x, side: float):
    """CDF of the coordinate marginal (integral of :func:`spatial_marginal_pdf`)."""
    side = _validate_side(side)
    x = np.clip(np.asarray(x, dtype=np.float64), 0.0, side)
    return (3.0 * x * x / 2.0 * side - x**3) / side**3 + x / (2.0 * side)


def cell_mass(x0, y0, cell_side, side: float):
    """Probability mass of the cell ``[x0, x0+l] x [y0, y0+l]`` (Observation 5).

    Args:
        x0, y0: the cell's south-west corner (broadcastable arrays).
        cell_side: the cell side length ``l``.
        side: the square side ``L``.

    The closed form is
    ``(3 l^2 / L^4) ( l/3 (3L - 2l) + x0 (L - l - x0) + y0 (L - l - y0) )``.
    """
    side = _validate_side(side)
    if np.any(np.asarray(cell_side) <= 0):
        raise ValueError("cell_side must be positive")
    x0 = np.asarray(x0, dtype=np.float64)
    y0 = np.asarray(y0, dtype=np.float64)
    ell = np.asarray(cell_side, dtype=np.float64)
    return (
        3.0 * ell * ell / side**4
        * (ell / 3.0 * (3.0 * side - 2.0 * ell) + x0 * (side - ell - x0) + y0 * (side - ell - y0))
    )


def region_mass(x_lo, y_lo, x_hi, y_hi, side: float):
    """Probability mass of an arbitrary axis-aligned rectangle under Theorem 1.

    Exact integral of the spatial pdf, used for lower-bound constructions
    (Theorem 18's corner squares) and for validation.
    """
    side = _validate_side(side)

    def _g_integral(lo, hi):
        # integral of t (L - t) dt over [lo, hi]
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        return side * (hi**2 - lo**2) / 2.0 - (hi**3 - lo**3) / 3.0

    x_lo = np.asarray(x_lo, dtype=np.float64)
    x_hi = np.asarray(x_hi, dtype=np.float64)
    y_lo = np.asarray(y_lo, dtype=np.float64)
    y_hi = np.asarray(y_hi, dtype=np.float64)
    width = x_hi - x_lo
    height = y_hi - y_lo
    return 3.0 / side**4 * (height * _g_integral(x_lo, x_hi) + width * _g_integral(y_lo, y_hi))


def _denominator(x0, y0, side: float):
    """Common denominator ``4 L (x0+y0) - 4 (x0^2+y0^2)`` of Theorem 2 / Eqs 4-5."""
    return 4.0 * (x0 * (side - x0) + y0 * (side - y0))


def destination_pdf(x0, y0, x, y, side: float):
    """Stationary destination pdf ``f_{(x0,y0)}(x, y)`` of Theorem 2.

    Returns the constant quadrant density for off-cross destinations and
    ``numpy.inf`` on the cross (where the distribution has atoms; their
    masses are given by :func:`cross_probability`).
    """
    side = _validate_side(side)
    x0 = np.asarray(x0, dtype=np.float64)
    y0 = np.asarray(y0, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    denom = _denominator(x0, y0, side)

    sw = (x < x0) & (y < y0)
    ne = (x > x0) & (y > y0)
    nw = (x < x0) & (y > y0)
    se = (x > x0) & (y < y0)

    value = np.full(np.broadcast(x0, y0, x, y).shape, np.inf, dtype=np.float64)
    numerator = np.where(
        sw,
        2.0 * side - x0 - y0,
        np.where(ne, x0 + y0, np.where(nw, side - x0 + y0, np.where(se, side + x0 - y0, np.nan))),
    )
    off_cross = sw | ne | nw | se
    # Theorem 2's quadrant density is numerator / (4 L G) with
    # G = x0(L-x0) + y0(L-y0); here denom == 4 G.
    with np.errstate(invalid="ignore", divide="ignore"):
        quad = numerator / (side * denom)
    return np.where(off_cross, quad, value)


def quadrant_masses(x0, y0, side: float) -> np.ndarray:
    """Total destination probability of each open quadrant around ``(x0, y0)``.

    Returns:
        array with last axis of length 4 ordered as :data:`QUADRANTS`
        (``SW, SE, NW, NE``).  The four masses sum to ``1/2``; the other
        half of the probability sits on the cross (Section 2).
    """
    side = _validate_side(side)
    x0 = np.asarray(x0, dtype=np.float64)
    y0 = np.asarray(y0, dtype=np.float64)
    denom = _denominator(x0, y0, side)
    with np.errstate(invalid="ignore", divide="ignore"):
        sw = (2.0 * side - x0 - y0) * x0 * y0 / (side * denom)
        se = (side + x0 - y0) * (side - x0) * y0 / (side * denom)
        nw = (side - x0 + y0) * x0 * (side - y0) / (side * denom)
        ne = (x0 + y0) * (side - x0) * (side - y0) / (side * denom)
    return np.stack(np.broadcast_arrays(sw, se, nw, ne), axis=-1)


def cross_probability(x0, y0, side: float) -> np.ndarray:
    """Atom masses ``phi^S, phi^N, phi^W, phi^E`` of Equations 4-5.

    Returns:
        array with last axis of length 4 ordered as :data:`SEGMENTS`
        (``S, N, W, E``): the probability that the destination lies on each
        of the four axis-parallel segments outgoing from ``(x0, y0)``.
    """
    side = _validate_side(side)
    x0 = np.asarray(x0, dtype=np.float64)
    y0 = np.asarray(y0, dtype=np.float64)
    denom = _denominator(x0, y0, side)
    with np.errstate(invalid="ignore", divide="ignore"):
        vertical = y0 * (side - y0) / denom  # phi^S == phi^N
        horizontal = x0 * (side - x0) / denom  # phi^W == phi^E
    return np.stack(np.broadcast_arrays(vertical, vertical, horizontal, horizontal), axis=-1)


def cross_probability_total(x0, y0, side: float):
    """Total destination probability of the cross — identically ``1/2``.

    Kept as an explicit function because the paper highlights the fact (a
    region of zero area carrying half the probability) and the test suite
    asserts it.
    """
    return np.sum(cross_probability(x0, y0, side), axis=-1)


def mean_trip_length(side: float) -> float:
    """Expected Manhattan length of a trip between two uniform points: ``2L/3``."""
    side = _validate_side(side)
    return 2.0 * side / 3.0
