"""Classic (straight-line) Random Way-Point mobility — paper refs [5, 6, 22].

The baseline the MRWP variant is derived from: agents pick uniform
destinations and travel the *Euclidean* segment to them at speed ``v``,
optionally pausing at each way-point.  Its stationary spatial distribution
is also non-uniform (dense center) but differs from MRWP's closed form;
the mobility-ablation experiment contrasts flooding under the two.

Stationary initialization (pause time zero) uses the same Palm-calculus
construction as MRWP: trip endpoints length-biased by the Euclidean length
(rejection sampling against ``dist / (L * sqrt(2))``), observation point
uniform along the segment.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import BatchMobilityModel, MobilityModel
from repro.mobility.kinematics import advance_legs, countdown_pauses, redraw_destinations

__all__ = ["RandomWaypoint", "BatchRandomWaypoint"]

_MAX_LEGS_PER_STEP = 100_000


def _sample_length_biased_segments(n: int, side: float, rng: np.random.Generator) -> tuple:
    """Endpoint pairs on the square with density proportional to Euclidean length."""
    starts = np.empty((n, 2), dtype=np.float64)
    ends = np.empty((n, 2), dtype=np.float64)
    bound = side * np.sqrt(2.0)
    filled = 0
    while filled < n:
        want = n - filled
        batch = max(64, int(2.5 * want))
        a = rng.uniform(0.0, side, size=(batch, 2))
        b = rng.uniform(0.0, side, size=(batch, 2))
        dist = np.sqrt(np.sum((a - b) ** 2, axis=1))
        accept = rng.uniform(size=batch) * bound <= dist
        a = a[accept][:want]
        b = b[accept][:want]
        starts[filled:filled + a.shape[0]] = a
        ends[filled:filled + a.shape[0]] = b
        filled += a.shape[0]
    return starts, ends


class RandomWaypoint(MobilityModel):
    """Straight-line RWP over ``[0, side]^2``.

    Args:
        n, side, speed, rng: see :class:`~repro.mobility.base.MobilityModel`.
        pause_time: time units an agent rests at each way-point before
            starting the next trip (default 0 — the paper's regime).
        init: ``"stationary"`` (Palm perfect simulation; exact only for
            ``pause_time == 0``) or ``"uniform"`` (cold start).
    """

    def __init__(
        self,
        n: int,
        side: float,
        speed: float,
        rng: np.random.Generator = None,
        pause_time: float = 0.0,
        init: str = "stationary",
    ):
        super().__init__(n, side, speed, rng)
        if pause_time < 0:
            raise ValueError(f"pause_time must be non-negative, got {pause_time}")
        self.pause_time = float(pause_time)
        if init == "stationary":
            starts, dests = _sample_length_biased_segments(self.n, self.side, self.rng)
            frac = self.rng.uniform(size=self.n)
            self._pos = starts + frac[:, None] * (dests - starts)
            self._dest = dests
        elif init == "uniform":
            self._pos = self.rng.uniform(0.0, self.side, size=(self.n, 2))
            self._dest = self.rng.uniform(0.0, self.side, size=(self.n, 2))
        else:
            raise ValueError(f"init must be 'stationary' or 'uniform', got {init!r}")
        self._pause_left = np.zeros(self.n, dtype=np.float64)
        self.arrival_counts = np.zeros(self.n, dtype=np.int64)
        self._eps = 1e-9 * max(self.side, 1.0)

    @property
    def positions(self) -> np.ndarray:
        return self._pos.copy()

    @property
    def destinations(self) -> np.ndarray:
        """Copy of the agents' current destinations."""
        return self._dest.copy()

    def step(self, dt: float = 1.0) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        time_budget = np.full(self.n, float(dt))
        _advance_rwp(
            self._pos, self._dest, self._pause_left, self.arrival_counts, time_budget,
            self.side, self.speed, self.pause_time, self._eps, [self.rng], self.n,
        )
        self.time += dt
        return self.positions


class BatchRandomWaypoint(BatchMobilityModel):
    """Straight-line RWP for ``B`` replicas in lock-step.

    Same layout and RNG discipline as
    :class:`~repro.mobility.mrwp.BatchManhattanRandomWaypoint`: flat
    ``(B * n, 2)`` state, vectorized carry-over arithmetic, and arrival
    redraws grouped by replica in the scalar model's draw order.

    Args:
        n, side, speed, rngs: see :class:`~repro.mobility.base.BatchMobilityModel`.
        pause_time: per-way-point rest time (scalar semantics, per replica).
        init: ``"stationary"`` or ``"uniform"``, applied per replica.
    """

    def __init__(
        self,
        n: int,
        side: float,
        speed: float,
        rngs,
        pause_time: float = 0.0,
        init: str = "stationary",
    ):
        super().__init__(n, side, speed, rngs)
        if pause_time < 0:
            raise ValueError(f"pause_time must be non-negative, got {pause_time}")
        self.pause_time = float(pause_time)
        total = self.batch_size * self.n
        self._pos = np.empty((total, 2), dtype=np.float64)
        self._dest = np.empty((total, 2), dtype=np.float64)
        for b, rng in enumerate(self.rngs):
            lo, hi = b * self.n, (b + 1) * self.n
            if init == "stationary":
                starts, dests = _sample_length_biased_segments(self.n, self.side, rng)
                frac = rng.uniform(size=self.n)
                self._pos[lo:hi] = starts + frac[:, None] * (dests - starts)
                self._dest[lo:hi] = dests
            elif init == "uniform":
                self._pos[lo:hi] = rng.uniform(0.0, self.side, size=(self.n, 2))
                self._dest[lo:hi] = rng.uniform(0.0, self.side, size=(self.n, 2))
            else:
                raise ValueError(f"init must be 'stationary' or 'uniform', got {init!r}")
        self._pause_left = np.zeros(total, dtype=np.float64)
        self.arrival_counts = np.zeros(total, dtype=np.int64)
        self._eps = 1e-9 * max(self.side, 1.0)

    def step(self, dt: float = 1.0, active=None, copy: bool = True) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        active = self._active_mask(active)
        time_budget = np.where(np.repeat(active, self.n), float(dt), 0.0)
        _advance_rwp(
            self._pos, self._dest, self._pause_left, self.arrival_counts, time_budget,
            self.side, self.speed, self.pause_time, self._eps, self.rngs, self.n,
        )
        self.time += dt
        return self.positions if copy else self.positions_view


def _advance_rwp(
    pos, dest, pause_left, arrival_counts, time_budget,
    side, speed, pause_time, eps, rngs, n,
):
    """Spend ``time_budget`` through the straight-line RWP carry-over loop.

    The single driver behind the scalar and batch models: pause burn, one
    Euclidean leg per trip, arrival redraws grouped by replica.  Frozen
    replicas enter with zero budget and their generators see no draws.
    """
    for _ in range(_MAX_LEGS_PER_STEP):
        # Spend pause time first (RWP redraws on arrival, not on pause end).
        countdown_pauses(pause_left, time_budget)
        if speed <= 0:
            break
        idx = np.nonzero((pause_left <= 0) & (time_budget * speed > eps))[0]
        if idx.size == 0:
            break
        done = advance_legs(pos, dest, time_budget, idx, eps, speed=speed, metric="euclidean")
        if done.size == 0:
            break
        redraw_destinations(dest, done, side, rngs, n)
        pause_left[done] = pause_time
        arrival_counts[done] += 1
    else:  # pragma: no cover - defensive
        raise RuntimeError("carry-over loop did not converge")
