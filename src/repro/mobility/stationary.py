"""Perfect simulation of the MRWP stationary phase.

The paper's analysis holds "in the stationary phase" of the MRWP Markov
process.  Starting agents uniformly and discarding a warm-up is both slow
and biased, so we implement *perfect simulation* (paper refs [6, 21, 22]):
drawing the full kinematic state — position, destination, current leg —
exactly from the stationary law.

Two independent constructions are provided and cross-validated in the tests:

:class:`PalmStationarySampler`
    Palm-calculus construction (Le Boudec & Vojnovic).  A stationary trip's
    endpoints ``(S, D)`` are *length-biased*: their density is proportional
    to the trip duration, i.e. the Manhattan length ``|xS-xD| + |yS-yD|``.
    Because the L1 length is a sum of per-axis terms, the length-biased pair
    is an even mixture of (length-biased x-pair, uniform y-pair) and the
    symmetric swap.  The Manhattan path is then chosen uniformly between the
    two, and the observation point uniformly along the chosen path.

:class:`ClosedFormStationarySampler`
    Direct construction from the published closed forms: position from
    Theorem 1 (an even mixture of a scaled Beta(2,2) coordinate and a
    uniform one), destination from Theorem 2 + Equations 4-5 (quadrant
    constants plus cross atoms, with the on-segment conditional being
    uniform), and the leg/path state from the quadrant-density decomposition
    ``SW: (L-x0) + (L-y0)``, ``NE: x0 + y0``, etc., which splits each
    quadrant's density into its horizontal-first and vertical-first trip
    contributions.

Agreement of the two samplers (and of each with the closed-form pdfs) is a
strong end-to-end check of the stationary analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.paths import (
    HORIZONTAL_FIRST,
    VERTICAL_FIRST,
    leg_lengths,
    path_corner,
    position_along_path,
)
from repro.geometry.sampling import sample_beta22, sample_length_biased_pair
from repro.mobility.distributions import cross_probability, quadrant_masses

__all__ = [
    "KinematicState",
    "PalmStationarySampler",
    "ClosedFormStationarySampler",
    "sample_stationary_positions",
    "sample_destination_given_position",
]


@dataclass
class KinematicState:
    """Full per-agent kinematic state of the MRWP process.

    Attributes:
        positions: ``(n, 2)`` current positions.
        destinations: ``(n, 2)`` final trip destinations.
        targets: ``(n, 2)`` endpoint of the *current leg* (the Manhattan
            corner while on the first leg, the destination on the second).
        on_second_leg: ``(n,)`` bool — True once the corner has been passed.
    """

    positions: np.ndarray
    destinations: np.ndarray
    targets: np.ndarray
    on_second_leg: np.ndarray

    def __post_init__(self):
        n = self.positions.shape[0]
        for name in ("destinations", "targets"):
            arr = getattr(self, name)
            if arr.shape != (n, 2):
                raise ValueError(f"{name} must have shape ({n}, 2), got {arr.shape}")
        if self.on_second_leg.shape != (n,):
            raise ValueError(f"on_second_leg must have shape ({n},), got {self.on_second_leg.shape}")

    @property
    def n(self) -> int:
        return int(self.positions.shape[0])

    def copy(self) -> "KinematicState":
        return KinematicState(
            self.positions.copy(),
            self.destinations.copy(),
            self.targets.copy(),
            self.on_second_leg.copy(),
        )


def sample_stationary_positions(n: int, side: float, rng: np.random.Generator) -> np.ndarray:
    """Sample ``n`` positions directly from Theorem 1's spatial pdf.

    ``f(x, y) = (3/L^4)(x(L-x) + y(L-y))`` is an even mixture of the product
    densities ``beta22(x) * uniform(y)`` and ``uniform(x) * beta22(y)``.
    """
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    xs = np.empty(n, dtype=np.float64)
    ys = np.empty(n, dtype=np.float64)
    pick_x = rng.uniform(size=n) < 0.5
    k = int(np.count_nonzero(pick_x))
    xs[pick_x] = sample_beta22(k, side, rng)
    ys[pick_x] = rng.uniform(0.0, side, size=k)
    xs[~pick_x] = rng.uniform(0.0, side, size=n - k)
    ys[~pick_x] = sample_beta22(n - k, side, rng)
    return np.stack([xs, ys], axis=1)


class PalmStationarySampler:
    """Palm-calculus perfect-simulation sampler (see module docstring)."""

    def __init__(self, side: float):
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self.side = float(side)

    def sample_trips(self, n: int, rng: np.random.Generator) -> tuple:
        """Length-biased trip endpoints: returns ``(starts, dests)``, each ``(n, 2)``."""
        side = self.side
        starts = np.empty((n, 2), dtype=np.float64)
        dests = np.empty((n, 2), dtype=np.float64)
        biased_x = rng.uniform(size=n) < 0.5
        k = int(np.count_nonzero(biased_x))
        # Component A: x-pair length-biased, y-pair uniform.
        pair_x = sample_length_biased_pair(k, side, rng)
        starts[biased_x, 0] = pair_x[:, 0]
        dests[biased_x, 0] = pair_x[:, 1]
        starts[biased_x, 1] = rng.uniform(0.0, side, size=k)
        dests[biased_x, 1] = rng.uniform(0.0, side, size=k)
        # Component B: the symmetric swap.
        m = n - k
        pair_y = sample_length_biased_pair(m, side, rng)
        starts[~biased_x, 1] = pair_y[:, 0]
        dests[~biased_x, 1] = pair_y[:, 1]
        starts[~biased_x, 0] = rng.uniform(0.0, side, size=m)
        dests[~biased_x, 0] = rng.uniform(0.0, side, size=m)
        return starts, dests

    def sample(self, n: int, rng: np.random.Generator) -> KinematicState:
        """Draw ``n`` i.i.d. stationary kinematic states."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        starts, dests = self.sample_trips(n, rng)
        path_choice = rng.integers(0, 2, size=n)
        length = np.sum(np.abs(dests - starts), axis=1)
        travelled = rng.uniform(0.0, 1.0, size=n) * length
        positions = position_along_path(starts, dests, path_choice, travelled)
        first, _second = leg_lengths(starts, dests, path_choice)
        on_second_leg = travelled > first
        corners = path_corner(starts, dests, path_choice)
        targets = np.where(on_second_leg[:, None], dests, corners)
        return KinematicState(positions, dests.copy(), targets, on_second_leg)


def sample_destination_given_position(
    positions: np.ndarray, side: float, rng: np.random.Generator
) -> tuple:
    """Sample destinations from Theorem 2's conditional law, vectorized.

    For each position, the destination lies

    * on one of the four cross segments with the atom masses of Eqs. 4-5
      (uniformly along the segment, per the Palm decomposition), or
    * uniformly inside one of the four open quadrants, with the quadrant
      masses implied by Theorem 2's constant densities.

    Returns:
        tuple ``(destinations, on_cross)`` where ``on_cross`` marks agents
        whose destination fell on a cross segment (equivalently: agents on
        the second leg of their Manhattan path).
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    x0 = positions[:, 0]
    y0 = positions[:, 1]
    seg = cross_probability(x0, y0, side)  # columns S, N, W, E
    quad = quadrant_masses(x0, y0, side)  # columns SW, SE, NW, NE
    table = np.concatenate([seg, quad], axis=-1)  # 8 categories
    cdf = np.cumsum(table, axis=-1)
    # Guard tiny numerical drift: the 8 masses sum to 1 analytically.
    cdf /= cdf[:, -1][:, None]
    u = rng.uniform(size=n)
    category = np.sum(u[:, None] > cdf, axis=1)

    dest = np.empty((n, 2), dtype=np.float64)
    r = rng.uniform(size=n)
    s = rng.uniform(size=n)
    is_s = category == 0
    is_n = category == 1
    is_w = category == 2
    is_e = category == 3
    # Cross segments: uniform along the segment beyond the position.
    dest[is_s] = np.stack([x0[is_s], r[is_s] * y0[is_s]], axis=1)
    dest[is_n] = np.stack([x0[is_n], y0[is_n] + r[is_n] * (side - y0[is_n])], axis=1)
    dest[is_w] = np.stack([r[is_w] * x0[is_w], y0[is_w]], axis=1)
    dest[is_e] = np.stack([x0[is_e] + r[is_e] * (side - x0[is_e]), y0[is_e]], axis=1)
    # Quadrants: uniform over the rectangle.
    is_sw = category == 4
    is_se = category == 5
    is_nw = category == 6
    is_ne = category == 7
    dest[is_sw] = np.stack([r[is_sw] * x0[is_sw], s[is_sw] * y0[is_sw]], axis=1)
    dest[is_se] = np.stack(
        [x0[is_se] + r[is_se] * (side - x0[is_se]), s[is_se] * y0[is_se]], axis=1
    )
    dest[is_nw] = np.stack(
        [r[is_nw] * x0[is_nw], y0[is_nw] + s[is_nw] * (side - y0[is_nw])], axis=1
    )
    dest[is_ne] = np.stack(
        [x0[is_ne] + r[is_ne] * (side - x0[is_ne]), y0[is_ne] + s[is_ne] * (side - y0[is_ne])],
        axis=1,
    )
    on_cross = category < 4
    return dest, on_cross


class ClosedFormStationarySampler:
    """Stationary sampler built purely from the published closed forms."""

    def __init__(self, side: float):
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self.side = float(side)

    def sample(self, n: int, rng: np.random.Generator) -> KinematicState:
        """Draw ``n`` i.i.d. stationary kinematic states.

        Positions come from Theorem 1; destinations from Theorem 2 (via
        :func:`sample_destination_given_position`).  Agents with an on-cross
        destination are on their second leg (target == destination).  Agents
        with a quadrant destination are on their first leg; whether that leg
        is vertical (path P1) or horizontal (path P2) follows the quadrant
        density split — e.g. for a NE destination the vertical-first weight
        is ``y0`` against ``x0`` (the two terms of Theorem 2's ``x0 + y0``
        numerator).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        positions = sample_stationary_positions(n, self.side, rng)
        return self.sample_at(positions, rng)

    def sample_at(self, positions, rng: np.random.Generator) -> KinematicState:
        """Conditional perfect simulation: stationary state *given* positions.

        Draws destinations and leg state from the exact conditional law at
        the provided positions (Theorem 2 + the quadrant split).  Used for
        constructions that condition on location — e.g. Lemma 14's
        near-corner agents and Theorem 18's corner trap.
        """
        positions = np.asarray(positions, dtype=np.float64).copy()
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
        n = positions.shape[0]
        if n == 0:
            raise ValueError("positions must be non-empty")
        side = self.side
        dests, on_cross = sample_destination_given_position(positions, side, rng)

        x0 = positions[:, 0]
        y0 = positions[:, 1]
        xd = dests[:, 0]
        yd = dests[:, 1]
        east = xd >= x0
        north = yd >= y0
        # Vertical-first weight of each quadrant's density numerator:
        #   NE: y0 (of x0+y0)   SE: L-y0 (of L+x0-y0)
        #   NW: y0 (of L-x0+y0) SW: L-y0 (of 2L-x0-y0)
        vertical_weight = np.where(north, y0, side - y0)
        horizontal_weight = np.where(east, x0, side - x0)
        total = vertical_weight + horizontal_weight
        with np.errstate(invalid="ignore", divide="ignore"):
            p_vertical = np.where(total > 0, vertical_weight / np.where(total > 0, total, 1.0), 0.5)
        vertical_first = rng.uniform(size=n) < p_vertical

        path_choice = np.where(vertical_first, VERTICAL_FIRST, HORIZONTAL_FIRST)
        corners = path_corner(positions, dests, path_choice)
        on_second_leg = np.asarray(on_cross)
        targets = np.where(on_second_leg[:, None], dests, corners)
        return KinematicState(positions, dests, targets, on_second_leg)
