"""MRWP with pause times — the paper's Random-Trip extension direction.

Section 3 closes with: *"we strongly believe that our ideas and techniques
... can be adapted to analyze flooding over other versions of the RWP model
and even over some versions of the more general Random Trip model"*.  The
simplest such version adds a deterministic **pause** of ``pause_time`` time
units at every way-point (refs [21, 22, 23]).

The stationary law changes in a closed-form way (Palm calculus): an agent is
*moving* with probability ``w = E[trip time] / (E[trip time] + pause_time)``
where ``E[trip time] = (2L/3)/v`` (mean Manhattan trip length over speed),
in which case its position follows Theorem 1; otherwise it is *paused* at
its last way-point, which is uniform on the square.  Hence

.. math:: f_pause(x, y) = w \\, f(x, y) + (1 - w) / L^2

This module implements the model, the mixed closed form, and perfect
simulation of the extended stationary state (a paused agent's residual
pause is uniform on ``[0, pause_time]`` — the residual of a deterministic
duration).  The tests validate the sampler and the stepped process against
the mixed pdf, reproducing the paper's methodology on the extension.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.paths import choose_corners
from repro.mobility.base import MobilityModel
from repro.mobility.distributions import mean_trip_length, spatial_pdf
from repro.mobility.mrwp import _MAX_LEGS_PER_STEP
from repro.mobility.stationary import PalmStationarySampler

__all__ = [
    "ManhattanRandomWaypointWithPause",
    "moving_probability",
    "spatial_pdf_with_pause",
]


def moving_probability(side: float, speed: float, pause_time: float) -> float:
    """Stationary probability that an agent is mid-trip (not paused)."""
    if side <= 0 or speed <= 0:
        raise ValueError("side and speed must be positive")
    if pause_time < 0:
        raise ValueError(f"pause_time must be non-negative, got {pause_time}")
    trip_time = mean_trip_length(side) / speed
    return trip_time / (trip_time + pause_time)


def spatial_pdf_with_pause(x, y, side: float, speed: float, pause_time: float):
    """Stationary spatial pdf of pause-MRWP: the Thm-1/uniform mixture."""
    w = moving_probability(side, speed, pause_time)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    inside = (x >= 0) & (x <= side) & (y >= 0) & (y <= side)
    uniform = np.where(inside, 1.0 / (side * side), 0.0)
    return w * spatial_pdf(x, y, side) + (1.0 - w) * uniform


class ManhattanRandomWaypointWithPause(MobilityModel):
    """MRWP where agents rest ``pause_time`` time units at every way-point.

    Args:
        n, side, speed, rng: see :class:`~repro.mobility.base.MobilityModel`.
        pause_time: deterministic rest duration at each destination.
        init: ``"stationary"`` (perfect simulation of the mixed law, default)
            or ``"uniform"`` (cold start, all agents mid-trip).
    """

    def __init__(
        self,
        n: int,
        side: float,
        speed: float,
        pause_time: float,
        rng: np.random.Generator = None,
        init: str = "stationary",
    ):
        super().__init__(n, side, speed, rng)
        if pause_time < 0:
            raise ValueError(f"pause_time must be non-negative, got {pause_time}")
        if speed <= 0:
            raise ValueError("pause-MRWP requires positive speed")
        self.pause_time = float(pause_time)
        self._eps = 1e-9 * max(self.side, 1.0)
        if init == "stationary":
            self._init_stationary()
        elif init == "uniform":
            self._init_uniform()
        else:
            raise ValueError(f"init must be 'stationary' or 'uniform', got {init!r}")

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def _init_uniform(self) -> None:
        self._pos = self.rng.uniform(0.0, self.side, size=(self.n, 2))
        self._dest = self.rng.uniform(0.0, self.side, size=(self.n, 2))
        corners, _ = choose_corners(self._pos, self._dest, self.rng)
        self._target = corners
        self._on_second_leg = np.zeros(self.n, dtype=bool)
        self._pause_left = np.zeros(self.n, dtype=np.float64)

    def _init_stationary(self) -> None:
        """Perfect simulation: Bernoulli(moving) mixture of the two phases."""
        w = moving_probability(self.side, self.speed, self.pause_time)
        moving = self.rng.uniform(size=self.n) < w
        k = int(np.count_nonzero(moving))

        self._pos = np.empty((self.n, 2))
        self._dest = np.empty((self.n, 2))
        self._target = np.empty((self.n, 2))
        self._on_second_leg = np.zeros(self.n, dtype=bool)
        self._pause_left = np.zeros(self.n, dtype=np.float64)

        if k:
            state = PalmStationarySampler(self.side).sample(k, self.rng)
            self._pos[moving] = state.positions
            self._dest[moving] = state.destinations
            self._target[moving] = state.targets
            self._on_second_leg[moving] = state.on_second_leg
        rest = self.n - k
        if rest:
            # Paused at a uniform way-point; residual pause uniform.
            spots = self.rng.uniform(0.0, self.side, size=(rest, 2))
            self._pos[~moving] = spots
            self._dest[~moving] = spots  # next trip drawn when the pause ends
            self._target[~moving] = spots
            self._on_second_leg[~moving] = True
            self._pause_left[~moving] = self.rng.uniform(
                0.0, self.pause_time, size=rest
            )

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        return self._pos.copy()

    @property
    def paused_mask(self) -> np.ndarray:
        """Agents currently resting at a way-point."""
        return self._pause_left > 0

    @property
    def moving_fraction(self) -> float:
        """Fraction of agents mid-trip (stationary expectation:
        :func:`moving_probability`)."""
        return 1.0 - float(np.count_nonzero(self.paused_mask)) / self.n

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, dt: float = 1.0) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        time_budget = np.full(self.n, float(dt))
        eps = self._eps / max(self.speed, 1.0)
        for _ in range(_MAX_LEGS_PER_STEP):
            # Phase 1: paused agents burn pause before moving.
            pausing = (self._pause_left > 0) & (time_budget > eps)
            if np.any(pausing):
                spend = np.minimum(self._pause_left[pausing], time_budget[pausing])
                self._pause_left[pausing] -= spend
                time_budget[pausing] -= spend
                # A pause that just ended starts a fresh trip.
                ended = np.nonzero(pausing)[0][self._pause_left[pausing] <= 0]
                if ended.size:
                    new_dest = self.rng.uniform(0.0, self.side, size=(ended.size, 2))
                    corners, _ = choose_corners(self._pos[ended], new_dest, self.rng)
                    self._dest[ended] = new_dest
                    self._target[ended] = corners
                    self._on_second_leg[ended] = False
            # Phase 2: moving agents walk their Manhattan legs.
            moving = (self._pause_left <= 0) & (time_budget > eps)
            idx = np.nonzero(moving)[0]
            if idx.size == 0:
                break
            delta = self._target[idx] - self._pos[idx]
            dist = np.abs(delta).sum(axis=1)
            can_move = time_budget[idx] * self.speed
            move = np.minimum(can_move, dist)
            with np.errstate(invalid="ignore", divide="ignore"):
                frac = np.where(dist > self._eps, move / np.where(dist > self._eps, dist, 1.0), 1.0)
            self._pos[idx] += delta * frac[:, None]
            time_budget[idx] -= move / self.speed
            reached = move >= dist - self._eps
            if not np.any(reached):
                break
            done = idx[reached]
            self._pos[done] = self._target[done]
            second = self._on_second_leg[done]
            corner_done = done[~second]
            if corner_done.size:
                self._on_second_leg[corner_done] = True
                self._target[corner_done] = self._dest[corner_done]
            trip_done = done[second]
            if trip_done.size:
                # Arrived: rest.  The new trip is drawn when the pause ends
                # (phase 1), or immediately when pause_time == 0.
                if self.pause_time > 0:
                    self._pause_left[trip_done] = self.pause_time
                else:
                    new_dest = self.rng.uniform(0.0, self.side, size=(trip_done.size, 2))
                    corners, _ = choose_corners(self._pos[trip_done], new_dest, self.rng)
                    self._dest[trip_done] = new_dest
                    self._target[trip_done] = corners
                    self._on_second_leg[trip_done] = False
        else:  # pragma: no cover - defensive
            raise RuntimeError("carry-over loop did not converge")
        self.time += dt
        return self.positions
