"""MRWP with pause times — the paper's Random-Trip extension direction.

Section 3 closes with: *"we strongly believe that our ideas and techniques
... can be adapted to analyze flooding over other versions of the RWP model
and even over some versions of the more general Random Trip model"*.  The
simplest such version adds a deterministic **pause** of ``pause_time`` time
units at every way-point (refs [21, 22, 23]).

The stationary law changes in a closed-form way (Palm calculus): an agent is
*moving* with probability ``w = E[trip time] / (E[trip time] + pause_time)``
where ``E[trip time] = (2L/3)/v`` (mean Manhattan trip length over speed),
in which case its position follows Theorem 1; otherwise it is *paused* at
its last way-point, which is uniform on the square.  Hence

.. math:: f_pause(x, y) = w \\, f(x, y) + (1 - w) / L^2

This module implements the model, the mixed closed form, and perfect
simulation of the extended stationary state (a paused agent's residual
pause is uniform on ``[0, pause_time]`` — the residual of a deterministic
duration).  The tests validate the sampler and the stepped process against
the mixed pdf, reproducing the paper's methodology on the extension.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.paths import choose_corners
from repro.mobility.base import BatchMobilityModel, MobilityModel
from repro.mobility.distributions import mean_trip_length, spatial_pdf
from repro.mobility.kinematics import (
    DenseLegScratch,
    advance_legs,
    advance_legs_dense,
    countdown_pauses,
    redraw_manhattan_trips,
    split_completed_legs,
)
from repro.mobility.mrwp import _MAX_LEGS_PER_STEP
from repro.mobility.stationary import PalmStationarySampler

__all__ = [
    "ManhattanRandomWaypointWithPause",
    "BatchManhattanRandomWaypointWithPause",
    "moving_probability",
    "spatial_pdf_with_pause",
]


def moving_probability(side: float, speed: float, pause_time: float) -> float:
    """Stationary probability that an agent is mid-trip (not paused)."""
    if side <= 0 or speed <= 0:
        raise ValueError("side and speed must be positive")
    if pause_time < 0:
        raise ValueError(f"pause_time must be non-negative, got {pause_time}")
    trip_time = mean_trip_length(side) / speed
    return trip_time / (trip_time + pause_time)


def spatial_pdf_with_pause(x, y, side: float, speed: float, pause_time: float):
    """Stationary spatial pdf of pause-MRWP: the Thm-1/uniform mixture."""
    w = moving_probability(side, speed, pause_time)
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    inside = (x >= 0) & (x <= side) & (y >= 0) & (y <= side)
    uniform = np.where(inside, 1.0 / (side * side), 0.0)
    return w * spatial_pdf(x, y, side) + (1.0 - w) * uniform


class ManhattanRandomWaypointWithPause(MobilityModel):
    """MRWP where agents rest ``pause_time`` time units at every way-point.

    Args:
        n, side, speed, rng: see :class:`~repro.mobility.base.MobilityModel`.
        pause_time: deterministic rest duration at each destination.
        init: ``"stationary"`` (perfect simulation of the mixed law, default)
            or ``"uniform"`` (cold start, all agents mid-trip).
    """

    def __init__(
        self,
        n: int,
        side: float,
        speed: float,
        pause_time: float,
        rng: np.random.Generator = None,
        init: str = "stationary",
    ):
        super().__init__(n, side, speed, rng)
        if pause_time < 0:
            raise ValueError(f"pause_time must be non-negative, got {pause_time}")
        if speed <= 0:
            raise ValueError("pause-MRWP requires positive speed")
        self.pause_time = float(pause_time)
        self._eps = 1e-9 * max(self.side, 1.0)
        (
            self._pos,
            self._dest,
            self._target,
            self._on_second_leg,
            self._pause_left,
        ) = _initial_pause_state(self.n, self.side, self.speed, self.pause_time, init, self.rng)
        self._scratch = DenseLegScratch(self.n)

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        return self._pos.copy()

    @property
    def paused_mask(self) -> np.ndarray:
        """Agents currently resting at a way-point."""
        return self._pause_left > 0

    @property
    def moving_fraction(self) -> float:
        """Fraction of agents mid-trip (stationary expectation:
        :func:`moving_probability`)."""
        return 1.0 - float(np.count_nonzero(self.paused_mask)) / self.n

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, dt: float = 1.0) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        time_budget = np.full(self.n, float(dt))
        _advance_pause_mrwp(
            self._pos, self._dest, self._target, self._on_second_leg,
            self._pause_left, time_budget,
            self.side, self.speed, self.pause_time, self._eps, [self.rng], self.n,
            scratch=self._scratch,
        )
        self.time += dt
        return self.positions


class BatchManhattanRandomWaypointWithPause(BatchMobilityModel):
    """Pause-MRWP for ``B`` independent replicas, advanced in lock-step.

    Same layout and RNG discipline as
    :class:`~repro.mobility.mrwp.BatchManhattanRandomWaypoint`: flat
    ``(B * n, 2)`` state, the shared kinematics helpers for the two-phase
    (pause burn, then Manhattan legs) carry-over iteration, and all trip
    redraws grouped by replica in the scalar model's draw order — both the
    phase-1 draws (pauses that just ended) and the phase-2 draws
    (``pause_time == 0`` arrivals), in that per-iteration order, exactly
    as the scalar model interleaves them.

    Args:
        n, side, speed, rngs: see :class:`~repro.mobility.base.BatchMobilityModel`.
        pause_time: deterministic rest duration (scalar semantics, per replica).
        init: ``"stationary"`` or ``"uniform"``, applied per replica.
    """

    def __init__(
        self,
        n: int,
        side: float,
        speed: float,
        rngs,
        pause_time: float = 0.0,
        init: str = "stationary",
    ):
        super().__init__(n, side, speed, rngs)
        if pause_time < 0:
            raise ValueError(f"pause_time must be non-negative, got {pause_time}")
        if speed <= 0:
            raise ValueError("pause-MRWP requires positive speed")
        self.pause_time = float(pause_time)
        self._eps = 1e-9 * max(self.side, 1.0)
        states = [
            _initial_pause_state(self.n, self.side, self.speed, self.pause_time, init, rng)
            for rng in self.rngs
        ]
        self._pos = np.concatenate([s[0] for s in states], axis=0)
        self._dest = np.concatenate([s[1] for s in states], axis=0)
        self._target = np.concatenate([s[2] for s in states], axis=0)
        self._on_second_leg = np.concatenate([s[3] for s in states], axis=0)
        self._pause_left = np.concatenate([s[4] for s in states], axis=0)
        self._scratch = DenseLegScratch(self.batch_size * self.n)

    @property
    def paused_mask(self) -> np.ndarray:
        """``(B, n)`` bool — agents currently resting at a way-point."""
        return (self._pause_left > 0).reshape(self.batch_size, self.n)

    @property
    def moving_fraction(self) -> np.ndarray:
        """``(B,)`` fraction of each replica's agents mid-trip."""
        return 1.0 - self.paused_mask.mean(axis=1)

    def step(self, dt: float = 1.0, active=None, copy: bool = True) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        active = self._active_mask(active)
        time_budget = np.where(np.repeat(active, self.n), float(dt), 0.0)
        _advance_pause_mrwp(
            self._pos, self._dest, self._target, self._on_second_leg,
            self._pause_left, time_budget,
            self.side, self.speed, self.pause_time, self._eps, self.rngs, self.n,
            scratch=self._scratch,
        )
        self.time += dt
        return self.positions if copy else self.positions_view


def _advance_pause_mrwp(
    pos, dest, target, on_second_leg, pause_left, time_budget,
    side, speed, pause_time, eps, rngs, n, scratch=None,
):
    """Spend ``time_budget`` through the two-phase pause-MRWP carry-over loop.

    The single driver behind the scalar and batch models (``len(rngs)``
    replicas over flat arrays).  Frozen replicas enter with zero budget:
    they neither pause-burn nor move, and their generators see no draws.
    """
    eps_t = eps / max(speed, 1.0)
    total = time_budget.shape[0]
    for _ in range(_MAX_LEGS_PER_STEP):
        # Phase 1: paused agents burn pause before moving; a pause that
        # just ended starts a fresh trip.
        ended = countdown_pauses(pause_left, time_budget, min_budget=eps_t)
        if ended.size:
            redraw_manhattan_trips(pos, dest, target, on_second_leg, ended, side, rngs, n)
        # Phase 2: moving agents walk their Manhattan legs.
        moving = (pause_left <= 0) & (time_budget > eps_t)
        n_moving = int(np.count_nonzero(moving))
        if n_moving == 0:
            break
        if scratch is not None and 2 * n_moving >= total:
            done = advance_legs_dense(
                pos, target, time_budget, moving, n_moving, eps, scratch, speed=speed
            )
        else:
            idx = np.nonzero(moving)[0]
            done = advance_legs(pos, target, time_budget, idx, eps, speed=speed)
        if done.size == 0:
            break
        _corner_done, trip_done = split_completed_legs(done, on_second_leg, target, dest)
        if trip_done.size:
            # Arrived: rest.  The new trip is drawn when the pause ends
            # (phase 1), or immediately when pause_time == 0.
            if pause_time > 0:
                pause_left[trip_done] = pause_time
            else:
                redraw_manhattan_trips(
                    pos, dest, target, on_second_leg, trip_done, side, rngs, n
                )
    else:  # pragma: no cover - defensive
        raise RuntimeError("carry-over loop did not converge")


def _initial_pause_state(
    n: int, side: float, speed: float, pause_time: float, init, rng: np.random.Generator
) -> tuple:
    """One replica's initial pause-MRWP state — the scalar model's recipe.

    Returns:
        ``(positions, destinations, targets, on_second_leg, pause_left)``.
    """
    if init == "uniform":
        pos = rng.uniform(0.0, side, size=(n, 2))
        dest = rng.uniform(0.0, side, size=(n, 2))
        target, _ = choose_corners(pos, dest, rng)
        return pos, dest, target, np.zeros(n, dtype=bool), np.zeros(n, dtype=np.float64)
    if init != "stationary":
        raise ValueError(f"init must be 'stationary' or 'uniform', got {init!r}")
    # Perfect simulation: Bernoulli(moving) mixture of the two phases.
    w = moving_probability(side, speed, pause_time)
    moving = rng.uniform(size=n) < w
    k = int(np.count_nonzero(moving))

    pos = np.empty((n, 2))
    dest = np.empty((n, 2))
    target = np.empty((n, 2))
    on_second_leg = np.zeros(n, dtype=bool)
    pause_left = np.zeros(n, dtype=np.float64)

    if k:
        state = PalmStationarySampler(side).sample(k, rng)
        pos[moving] = state.positions
        dest[moving] = state.destinations
        target[moving] = state.targets
        on_second_leg[moving] = state.on_second_leg
    rest = n - k
    if rest:
        # Paused at a uniform way-point; residual pause uniform.
        spots = rng.uniform(0.0, side, size=(rest, 2))
        pos[~moving] = spots
        dest[~moving] = spots  # next trip drawn when the pause ends
        target[~moving] = spots
        on_second_leg[~moving] = True
        pause_left[~moving] = rng.uniform(0.0, pause_time, size=rest)
    return pos, dest, target, on_second_leg, pause_left
