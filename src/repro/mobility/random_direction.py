"""Random-direction (billiard) mobility.

Agents travel at constant speed along a heading chosen uniformly at random,
reflect specularly off the square's walls, and redraw a fresh heading after
an exponentially distributed travelled distance.  Unlike both way-point
models, the stationary spatial distribution is exactly uniform, making this
the cleanest "no central density boost" control for the mobility-ablation
experiment.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel

__all__ = ["RandomDirection"]


class RandomDirection(MobilityModel):
    """Constant-speed billiard motion with exponential leg lengths.

    Args:
        n, side, speed, rng: see :class:`~repro.mobility.base.MobilityModel`.
        mean_leg: expected distance travelled between heading redraws;
            defaults to ``side / 2``.
    """

    def __init__(
        self,
        n: int,
        side: float,
        speed: float,
        rng: np.random.Generator = None,
        mean_leg: float = None,
    ):
        super().__init__(n, side, speed, rng)
        self.mean_leg = float(mean_leg) if mean_leg is not None else self.side / 2.0
        if self.mean_leg <= 0:
            raise ValueError(f"mean_leg must be positive, got {self.mean_leg}")
        self._pos = self.rng.uniform(0.0, self.side, size=(self.n, 2))
        theta = self.rng.uniform(0.0, 2.0 * np.pi, size=self.n)
        self._heading = np.stack([np.cos(theta), np.sin(theta)], axis=1)
        self._leg_left = self.rng.exponential(self.mean_leg, size=self.n)

    @property
    def positions(self) -> np.ndarray:
        return self._pos.copy()

    def _redraw_headings(self, idx: np.ndarray) -> None:
        theta = self.rng.uniform(0.0, 2.0 * np.pi, size=idx.size)
        self._heading[idx, 0] = np.cos(theta)
        self._heading[idx, 1] = np.sin(theta)
        self._leg_left[idx] = self.rng.exponential(self.mean_leg, size=idx.size)

    def _reflect(self) -> None:
        """Fold positions back into the square, flipping heading components.

        A per-step displacement is at most ``speed``; we iterate folding to
        handle speeds larger than the square side.
        """
        for axis in range(2):
            for _ in range(64):
                below = self._pos[:, axis] < 0.0
                above = self._pos[:, axis] > self.side
                if not (np.any(below) or np.any(above)):
                    break
                self._pos[below, axis] = -self._pos[below, axis]
                self._heading[below, axis] = -self._heading[below, axis]
                self._pos[above, axis] = 2.0 * self.side - self._pos[above, axis]
                self._heading[above, axis] = -self._heading[above, axis]

    def step(self, dt: float = 1.0) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        travel = self.speed * dt
        self._pos = self._pos + self._heading * travel
        self._reflect()
        self._leg_left -= travel
        expired = np.nonzero(self._leg_left <= 0)[0]
        if expired.size:
            self._redraw_headings(expired)
        self.time += dt
        return self.positions
