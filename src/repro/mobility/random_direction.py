"""Random-direction (billiard) mobility.

Agents travel at constant speed along a heading chosen uniformly at random,
reflect specularly off the square's walls, and redraw a fresh heading after
an exponentially distributed travelled distance.  Unlike both way-point
models, the stationary spatial distribution is exactly uniform, making this
the cleanest "no central density boost" control for the mobility-ablation
experiment.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import BatchMobilityModel, MobilityModel
from repro.mobility.kinematics import reflect_into_square, replica_slices

__all__ = ["RandomDirection", "BatchRandomDirection"]


def _initial_direction_state(n: int, side: float, mean_leg: float, rng) -> tuple:
    """One replica's initial billiard state — the scalar model's draw order.

    Returns:
        ``(positions, headings, leg_left)``.
    """
    pos = rng.uniform(0.0, side, size=(n, 2))
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
    heading = np.stack([np.cos(theta), np.sin(theta)], axis=1)
    leg_left = rng.exponential(mean_leg, size=n)
    return pos, heading, leg_left


def _redraw_headings(heading, leg_left, idx, mean_leg, rngs, n) -> None:
    """Fresh headings + leg lengths for expired agents, per replica.

    Per replica (ascending): the heading uniforms first, then the
    exponential leg draws — the scalar model's ``_redraw_headings`` order.
    """
    for b, lo, hi in replica_slices(idx, n, len(rngs)):
        rng = rngs[b]
        theta = rng.uniform(0.0, 2.0 * np.pi, size=hi - lo)
        sub = idx[lo:hi]
        heading[sub, 0] = np.cos(theta)
        heading[sub, 1] = np.sin(theta)
        leg_left[sub] = rng.exponential(mean_leg, size=hi - lo)


class RandomDirection(MobilityModel):
    """Constant-speed billiard motion with exponential leg lengths.

    Args:
        n, side, speed, rng: see :class:`~repro.mobility.base.MobilityModel`.
        mean_leg: expected distance travelled between heading redraws;
            defaults to ``side / 2``.
    """

    def __init__(
        self,
        n: int,
        side: float,
        speed: float,
        rng: np.random.Generator = None,
        mean_leg: float = None,
    ):
        super().__init__(n, side, speed, rng)
        self.mean_leg = float(mean_leg) if mean_leg is not None else self.side / 2.0
        if self.mean_leg <= 0:
            raise ValueError(f"mean_leg must be positive, got {self.mean_leg}")
        self._pos, self._heading, self._leg_left = _initial_direction_state(
            self.n, self.side, self.mean_leg, self.rng
        )

    @property
    def positions(self) -> np.ndarray:
        return self._pos.copy()

    def step(self, dt: float = 1.0) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        travel = self.speed * dt
        self._pos = self._pos + self._heading * travel
        reflect_into_square(self._pos, self._heading, self.side)
        self._leg_left -= travel
        expired = np.nonzero(self._leg_left <= 0)[0]
        if expired.size:
            _redraw_headings(
                self._heading, self._leg_left, expired, self.mean_leg, [self.rng], self.n
            )
        self.time += dt
        return self.positions


class BatchRandomDirection(BatchMobilityModel):
    """Billiard motion for ``B`` independent replicas, in lock-step.

    Flat ``(B * n, 2)`` state with one vectorized move + reflection per
    step; heading redraws are grouped by replica in the scalar draw order
    (heading uniforms, then exponential leg lengths, per replica).  The
    reflection fold is a no-op for rows already inside the square, so
    frozen replicas pass through it untouched.

    Args:
        n, side, speed, rngs: see :class:`~repro.mobility.base.BatchMobilityModel`.
        mean_leg: expected distance between heading redraws (scalar
            semantics, per replica); defaults to ``side / 2``.
    """

    def __init__(self, n: int, side: float, speed: float, rngs, mean_leg: float = None):
        super().__init__(n, side, speed, rngs)
        self.mean_leg = float(mean_leg) if mean_leg is not None else self.side / 2.0
        if self.mean_leg <= 0:
            raise ValueError(f"mean_leg must be positive, got {self.mean_leg}")
        states = [
            _initial_direction_state(self.n, self.side, self.mean_leg, rng)
            for rng in self.rngs
        ]
        self._pos = np.concatenate([s[0] for s in states], axis=0)
        self._heading = np.concatenate([s[1] for s in states], axis=0)
        self._leg_left = np.concatenate([s[2] for s in states], axis=0)

    def step(self, dt: float = 1.0, active=None, copy: bool = True) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        active = self._active_mask(active)
        travel = self.speed * dt
        if active.all():
            self._pos += self._heading * travel
            reflect_into_square(self._pos, self._heading, self.side)
            self._leg_left -= travel
            expired = np.nonzero(self._leg_left <= 0)[0]
        else:
            rows = np.repeat(active, self.n)
            self._pos[rows] += self._heading[rows] * travel
            reflect_into_square(self._pos, self._heading, self.side)
            self._leg_left[rows] -= travel
            expired = np.nonzero(rows & (self._leg_left <= 0))[0]
        if expired.size:
            _redraw_headings(
                self._heading, self._leg_left, expired, self.mean_leg, self.rngs, self.n
            )
        self.time += dt
        return self.positions if copy else self.positions_view
