"""The Manhattan Random Way-Point (MRWP) mobility model — Section 2.

Every agent repeatedly: picks a destination uniformly at random in the
square, picks one of the two Manhattan shortest paths to it uniformly at
random, and walks it at constant speed ``v``.  The induced Markov process
has the non-uniform stationary spatial distribution of Theorem 1 (dense
Central Zone, sparse corner Suburb) — the phenomenon the whole paper is
about.

The implementation is vectorized: a step advances all agents at once, with a
carry-over loop so that an agent may finish a leg (or a whole trip) and
continue on the next one within a single step.  Turn and arrival events are
counted per agent, supporting the Lemma-13 turn-statistics experiments.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.paths import choose_corners
from repro.mobility.base import BatchMobilityModel, MobilityModel
from repro.mobility.kinematics import (
    DenseLegScratch,
    advance_legs,
    advance_legs_dense,
    redraw_manhattan_trips,
    split_completed_legs,
)
from repro.mobility.stationary import (
    ClosedFormStationarySampler,
    KinematicState,
    PalmStationarySampler,
)

__all__ = ["ManhattanRandomWaypoint", "BatchManhattanRandomWaypoint"]

#: Safety cap on legs completed by one agent within a single step.
_MAX_LEGS_PER_STEP = 100_000


class ManhattanRandomWaypoint(MobilityModel):
    """MRWP mobility over ``[0, side]^2`` (the paper's model).

    Args:
        n: number of agents.
        side: square side length ``L``.
        speed: agent speed ``v`` (distance per time step).
        rng: seeded numpy generator.
        init: initial-state mode —

            * ``"stationary"`` (default): perfect simulation via the Palm
              sampler, so the very first snapshot is already stationary;
            * ``"closed-form"``: perfect simulation via the closed-form
              sampler (Theorems 1-2) — statistically identical, kept as an
              independent implementation;
            * ``"uniform"``: uniform positions with a fresh trip each — the
              *biased* cold start, exposed to quantify warm-up effects;
            * a :class:`~repro.mobility.stationary.KinematicState` to resume
              from an explicit state.

    Attributes:
        turn_counts: cumulative number of direction-change events per agent
            (Manhattan-corner turns plus trip arrivals), as counted by the
            paper's ``H_{t,tau}`` statistic.
        arrival_counts: cumulative number of completed trips per agent.
    """

    def __init__(
        self,
        n: int,
        side: float,
        speed: float,
        rng: np.random.Generator = None,
        init="stationary",
    ):
        super().__init__(n, side, speed, rng)
        self._init_spec = init
        state = self._make_initial_state(init)
        self._pos = state.positions
        self._dest = state.destinations
        self._target = state.targets
        self._on_second_leg = state.on_second_leg
        self.turn_counts = np.zeros(self.n, dtype=np.int64)
        self.arrival_counts = np.zeros(self.n, dtype=np.int64)
        self._eps = 1e-9 * max(self.side, 1.0)

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def _make_initial_state(self, init) -> KinematicState:
        return _initial_state(self.n, self.side, init, self.rng)

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        return self._pos.copy()

    @property
    def destinations(self) -> np.ndarray:
        """Copy of the agents' current final destinations."""
        return self._dest.copy()

    @property
    def on_second_leg(self) -> np.ndarray:
        """Copy of the per-agent second-leg flags."""
        return self._on_second_leg.copy()

    def get_state(self) -> KinematicState:
        """Snapshot of the full kinematic state (deep copy)."""
        return KinematicState(
            self._pos.copy(), self._dest.copy(), self._target.copy(), self._on_second_leg.copy()
        )

    def set_state(self, state: KinematicState) -> None:
        """Restore a previously captured kinematic state (deep copy)."""
        if state.n != self.n:
            raise ValueError(f"state has {state.n} agents, model expects {self.n}")
        self._pos = state.positions.copy()
        self._dest = state.destinations.copy()
        self._target = state.targets.copy()
        self._on_second_leg = state.on_second_leg.copy()

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, dt: float = 1.0) -> np.ndarray:
        """Advance every agent by ``dt`` time units along its Manhattan path.

        Handles leg completion with distance carry-over: when an agent
        reaches its corner (or destination) mid-step, the residual travel
        budget is spent on the next leg (or a freshly sampled trip).
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        budget = np.full(self.n, self.speed * dt, dtype=np.float64)
        eps = self._eps
        for _ in range(_MAX_LEGS_PER_STEP):
            idx = np.nonzero(budget > eps)[0]
            if idx.size == 0:
                break
            done = advance_legs(self._pos, self._target, budget, idx, eps)
            if done.size == 0:
                break
            _corner_done, trip_done = split_completed_legs(
                done, self._on_second_leg, self._target, self._dest, self.turn_counts
            )
            if trip_done.size:
                redraw_manhattan_trips(
                    self._pos, self._dest, self._target, self._on_second_leg,
                    trip_done, self.side, [self.rng], self.n,
                )
                self.turn_counts[trip_done] += 1
                self.arrival_counts[trip_done] += 1
        else:  # pragma: no cover - defensive
            raise RuntimeError(
                "carry-over loop did not converge; speed is implausibly large "
                f"relative to the square (speed={self.speed}, side={self.side})"
            )
        self.time += dt
        return self.positions

    def reset(self, rng: np.random.Generator = None) -> None:
        """Re-draw the initial state (optionally with a new generator)."""
        if rng is not None:
            self.rng = rng
        state = self._make_initial_state(self._init_spec)
        self.set_state(state)
        self.turn_counts[:] = 0
        self.arrival_counts[:] = 0
        self.time = 0.0


class BatchManhattanRandomWaypoint(BatchMobilityModel):
    """MRWP mobility for ``B`` independent replicas, advanced in lock-step.

    Kinematic state lives in flat ``(B * n, 2)`` tensors so one carry-over
    iteration updates every agent of every replica with single vectorized
    operations.  Randomness stays per-replica: initial states are sampled
    with each replica's own generator, and within a carry-over iteration the
    trip-completion redraws are grouped by replica (ascending replica order,
    ascending agent order within a replica) — the exact draw sequence of the
    scalar :class:`ManhattanRandomWaypoint`, because an agent completes a
    trip in batch iteration ``k`` iff it does so in scalar iteration ``k``
    (kinematics are deterministic given the state).

    Args:
        n, side, speed, rngs: see :class:`~repro.mobility.base.BatchMobilityModel`.
        init: scalar ``init`` spec (``"stationary"``, ``"closed-form"``,
            ``"uniform"``) applied per replica, or a sequence of ``B``
            :class:`~repro.mobility.stationary.KinematicState` objects.
    """

    def __init__(self, n: int, side: float, speed: float, rngs, init="stationary"):
        super().__init__(n, side, speed, rngs)
        states = []
        for b, rng in enumerate(self.rngs):
            spec = init[b] if isinstance(init, (list, tuple)) else init
            states.append(_initial_state(self.n, self.side, spec, rng))
        self._pos = np.concatenate([s.positions for s in states], axis=0)
        self._dest = np.concatenate([s.destinations for s in states], axis=0)
        self._target = np.concatenate([s.targets for s in states], axis=0)
        self._on_second_leg = np.concatenate([s.on_second_leg for s in states], axis=0)
        self.turn_counts = np.zeros(self.batch_size * self.n, dtype=np.int64)
        self.arrival_counts = np.zeros(self.batch_size * self.n, dtype=np.int64)
        self._eps = 1e-9 * max(self.side, 1.0)
        total = self.batch_size * self.n
        self._budget = np.empty(total, dtype=np.float64)
        self._scratch = DenseLegScratch(total)

    def step(self, dt: float = 1.0, active=None, copy: bool = True) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        active = self._active_mask(active)
        total = self.batch_size * self.n
        budget = self._budget
        if active.all():
            budget.fill(self.speed * dt)
        else:
            np.multiply(np.repeat(active, self.n), self.speed * dt, out=budget)
        eps = self._eps
        for _ in range(_MAX_LEGS_PER_STEP):
            moving = budget > eps
            n_moving = int(np.count_nonzero(moving))
            if n_moving == 0:
                break
            if 2 * n_moving >= total:
                # Dense pass — typically the first carry-over iteration,
                # where every unfrozen agent moves.
                done = advance_legs_dense(
                    self._pos, self._target, budget, moving, n_moving, eps, self._scratch
                )
            else:
                idx = np.nonzero(moving)[0]
                done = advance_legs(self._pos, self._target, budget, idx, eps)
            if done.size == 0:
                break
            _corner_done, trip_done = split_completed_legs(
                done, self._on_second_leg, self._target, self._dest, self.turn_counts
            )
            if trip_done.size:
                redraw_manhattan_trips(
                    self._pos, self._dest, self._target, self._on_second_leg,
                    trip_done, self.side, self.rngs, self.n,
                )
                self.turn_counts[trip_done] += 1
                self.arrival_counts[trip_done] += 1
        else:  # pragma: no cover - defensive
            raise RuntimeError(
                "carry-over loop did not converge; speed is implausibly large "
                f"relative to the square (speed={self.speed}, side={self.side})"
            )
        self.time += dt
        return self.positions if copy else self.positions_view


def _initial_state(n: int, side: float, init, rng: np.random.Generator) -> KinematicState:
    """One replica's initial kinematic state — the scalar model's recipe."""
    if isinstance(init, KinematicState):
        if init.n != n:
            raise ValueError(f"state has {init.n} agents, model expects {n}")
        return init.copy()
    if init == "stationary":
        return PalmStationarySampler(side).sample(n, rng)
    if init == "closed-form":
        return ClosedFormStationarySampler(side).sample(n, rng)
    if init == "uniform":
        positions = rng.uniform(0.0, side, size=(n, 2))
        dests = rng.uniform(0.0, side, size=(n, 2))
        corners, _choice = choose_corners(positions, dests, rng)
        on_second_leg = np.zeros(n, dtype=bool)
        return KinematicState(positions, dests, corners, on_second_leg)
    raise ValueError(
        f"init must be 'stationary', 'closed-form', 'uniform' or a KinematicState, got {init!r}"
    )
