"""Mobility substrate: the MRWP model, baselines, and stationary samplers."""

from repro.mobility.base import (
    BatchMobilityModel,
    MobilityModel,
    ReplicatedBatchMobility,
    record_trajectory,
)
from repro.mobility.distributions import (
    QUADRANTS,
    SEGMENTS,
    cell_mass,
    cross_probability,
    cross_probability_total,
    destination_pdf,
    mean_trip_length,
    quadrant_masses,
    region_mass,
    spatial_marginal_cdf,
    spatial_marginal_pdf,
    spatial_pdf,
    spatial_pdf_max,
    spatial_pdf_min,
)
from repro.mobility.ferry import CompositeMobility, FerryPatrol, rectangle_route
from repro.mobility.mrwp import BatchManhattanRandomWaypoint, ManhattanRandomWaypoint
from repro.mobility.pause import (
    ManhattanRandomWaypointWithPause,
    moving_probability,
    spatial_pdf_with_pause,
)
from repro.mobility.random_direction import RandomDirection
from repro.mobility.random_walk import BatchRandomWalk, RandomWalk
from repro.mobility.rwp import BatchRandomWaypoint, RandomWaypoint
from repro.mobility.speed_range import (
    RandomSpeedManhattanWaypoint,
    cold_start_speed_decay,
    sample_stationary_speeds,
    stationary_mean_speed,
)
from repro.mobility.stationary import (
    ClosedFormStationarySampler,
    KinematicState,
    PalmStationarySampler,
    sample_destination_given_position,
    sample_stationary_positions,
)

MODEL_REGISTRY = {
    "mrwp": ManhattanRandomWaypoint,
    "mrwp-pause": ManhattanRandomWaypointWithPause,
    "rwp": RandomWaypoint,
    "random-walk": RandomWalk,
    "random-direction": RandomDirection,
}
"""Name -> class mapping used by the CLI and the ablation experiments."""

__all__ = [
    "MobilityModel",
    "BatchMobilityModel",
    "ReplicatedBatchMobility",
    "BatchManhattanRandomWaypoint",
    "BatchRandomWaypoint",
    "BatchRandomWalk",
    "record_trajectory",
    "ManhattanRandomWaypoint",
    "ManhattanRandomWaypointWithPause",
    "moving_probability",
    "spatial_pdf_with_pause",
    "RandomWaypoint",
    "RandomWalk",
    "RandomDirection",
    "RandomSpeedManhattanWaypoint",
    "stationary_mean_speed",
    "sample_stationary_speeds",
    "cold_start_speed_decay",
    "FerryPatrol",
    "CompositeMobility",
    "rectangle_route",
    "MODEL_REGISTRY",
    "KinematicState",
    "PalmStationarySampler",
    "ClosedFormStationarySampler",
    "sample_stationary_positions",
    "sample_destination_given_position",
    "spatial_pdf",
    "spatial_pdf_max",
    "spatial_pdf_min",
    "spatial_marginal_pdf",
    "spatial_marginal_cdf",
    "cell_mass",
    "region_mass",
    "destination_pdf",
    "quadrant_masses",
    "cross_probability",
    "cross_probability_total",
    "mean_trip_length",
    "QUADRANTS",
    "SEGMENTS",
]
