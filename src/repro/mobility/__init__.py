"""Mobility substrate: the MRWP model, baselines, and stationary samplers."""

from repro.mobility.base import (
    BatchMobilityModel,
    MobilityModel,
    ReplicatedBatchMobility,
    record_trajectory,
)
from repro.mobility.distributions import (
    QUADRANTS,
    SEGMENTS,
    cell_mass,
    cross_probability,
    cross_probability_total,
    destination_pdf,
    mean_trip_length,
    quadrant_masses,
    region_mass,
    spatial_marginal_cdf,
    spatial_marginal_pdf,
    spatial_pdf,
    spatial_pdf_max,
    spatial_pdf_min,
)
from repro.mobility.ferry import (
    CompositeMobility,
    FerryPatrol,
    composite_with_ferries,
    rectangle_route,
)
from repro.mobility.mrwp import BatchManhattanRandomWaypoint, ManhattanRandomWaypoint
from repro.mobility.pause import (
    BatchManhattanRandomWaypointWithPause,
    ManhattanRandomWaypointWithPause,
    moving_probability,
    spatial_pdf_with_pause,
)
from repro.mobility.random_direction import BatchRandomDirection, RandomDirection
from repro.mobility.random_walk import BatchRandomWalk, RandomWalk
from repro.mobility.rwp import BatchRandomWaypoint, RandomWaypoint
from repro.mobility.speed_range import (
    BatchRandomSpeedManhattanWaypoint,
    RandomSpeedManhattanWaypoint,
    cold_start_speed_decay,
    sample_stationary_speeds,
    stationary_mean_speed,
)
from repro.mobility.stationary import (
    ClosedFormStationarySampler,
    KinematicState,
    PalmStationarySampler,
    sample_destination_given_position,
    sample_stationary_positions,
)

MODEL_REGISTRY = {
    "mrwp": ManhattanRandomWaypoint,
    "mrwp-pause": ManhattanRandomWaypointWithPause,
    "mrwp-speed": RandomSpeedManhattanWaypoint,
    "rwp": RandomWaypoint,
    "random-walk": RandomWalk,
    "random-direction": RandomDirection,
    "ferry": FerryPatrol,
    "composite": composite_with_ferries,
}
"""Name -> constructor mapping used by the config/CLI layer and the
ablation experiments (``composite`` maps to a config-shaped factory)."""

BATCH_MOBILITY_REGISTRY = {
    "mrwp": BatchManhattanRandomWaypoint,
    "mrwp-pause": BatchManhattanRandomWaypointWithPause,
    "mrwp-speed": BatchRandomSpeedManhattanWaypoint,
    "rwp": BatchRandomWaypoint,
    "random-walk": BatchRandomWalk,
    "random-direction": BatchRandomDirection,
}
"""Models with a *native* vectorized batch implementation, key-compatible
with :data:`MODEL_REGISTRY` (the batch counterpart of
``repro.protocols.BATCH_PROTOCOL_REGISTRY``).  Every batch class is
seed-for-seed bit-identical to its scalar sibling.  Names absent here
(ferry / composite — deliberately exotic kinematics) run through
:class:`~repro.mobility.base.ReplicatedBatchMobility` under the batch
engine, and ``engine="auto"`` keeps them on the scalar engine."""

__all__ = [
    "MobilityModel",
    "BatchMobilityModel",
    "ReplicatedBatchMobility",
    "BatchManhattanRandomWaypoint",
    "BatchManhattanRandomWaypointWithPause",
    "BatchRandomSpeedManhattanWaypoint",
    "BatchRandomDirection",
    "BatchRandomWaypoint",
    "BatchRandomWalk",
    "record_trajectory",
    "ManhattanRandomWaypoint",
    "ManhattanRandomWaypointWithPause",
    "moving_probability",
    "spatial_pdf_with_pause",
    "RandomWaypoint",
    "RandomWalk",
    "RandomDirection",
    "RandomSpeedManhattanWaypoint",
    "stationary_mean_speed",
    "sample_stationary_speeds",
    "cold_start_speed_decay",
    "FerryPatrol",
    "CompositeMobility",
    "composite_with_ferries",
    "rectangle_route",
    "MODEL_REGISTRY",
    "BATCH_MOBILITY_REGISTRY",
    "KinematicState",
    "PalmStationarySampler",
    "ClosedFormStationarySampler",
    "sample_stationary_positions",
    "sample_destination_given_position",
    "spatial_pdf",
    "spatial_pdf_max",
    "spatial_pdf_min",
    "spatial_marginal_pdf",
    "spatial_marginal_cdf",
    "cell_mass",
    "region_mass",
    "destination_pdf",
    "quadrant_masses",
    "cross_probability",
    "cross_probability_total",
    "mean_trip_length",
    "QUADRANTS",
    "SEGMENTS",
]
