"""Mobility substrate: the MRWP model, baselines, and stationary samplers."""

from repro.mobility.base import (
    BatchMobilityModel,
    MobilityModel,
    ReplicatedBatchMobility,
    record_trajectory,
)
from repro.mobility.distributions import (
    QUADRANTS,
    SEGMENTS,
    cell_mass,
    cross_probability,
    cross_probability_total,
    destination_pdf,
    mean_trip_length,
    quadrant_masses,
    region_mass,
    spatial_marginal_cdf,
    spatial_marginal_pdf,
    spatial_pdf,
    spatial_pdf_max,
    spatial_pdf_min,
)
from repro.mobility.ferry import (
    BatchCompositeMobility,
    BatchFerryPatrol,
    CompositeMobility,
    FerryPatrol,
    batch_composite_with_ferries,
    composite_with_ferries,
    rectangle_route,
)
from repro.mobility.mrwp import BatchManhattanRandomWaypoint, ManhattanRandomWaypoint
from repro.mobility.pause import (
    BatchManhattanRandomWaypointWithPause,
    ManhattanRandomWaypointWithPause,
    moving_probability,
    spatial_pdf_with_pause,
)
from repro.mobility.random_direction import BatchRandomDirection, RandomDirection
from repro.mobility.random_walk import BatchRandomWalk, RandomWalk
from repro.mobility.rwp import BatchRandomWaypoint, RandomWaypoint
from repro.mobility.speed_range import (
    BatchRandomSpeedManhattanWaypoint,
    RandomSpeedManhattanWaypoint,
    cold_start_speed_decay,
    sample_stationary_speeds,
    stationary_mean_speed,
)
from repro.mobility.stationary import (
    ClosedFormStationarySampler,
    KinematicState,
    PalmStationarySampler,
    sample_destination_given_position,
    sample_stationary_positions,
)
from repro.mobility.timetable import (
    BatchTimetableMobility,
    Timetable,
    TimetableMobility,
    grid_shuttle_timetable,
    loop_timetable,
)

MODEL_REGISTRY = {
    "mrwp": ManhattanRandomWaypoint,
    "mrwp-pause": ManhattanRandomWaypointWithPause,
    "mrwp-speed": RandomSpeedManhattanWaypoint,
    "rwp": RandomWaypoint,
    "random-walk": RandomWalk,
    "random-direction": RandomDirection,
    "ferry": FerryPatrol,
    "composite": composite_with_ferries,
    "timetable": TimetableMobility,
}
"""Name -> constructor mapping used by the config/CLI layer and the
ablation experiments (``composite`` maps to a config-shaped factory)."""

BATCH_MOBILITY_REGISTRY = {
    "mrwp": BatchManhattanRandomWaypoint,
    "mrwp-pause": BatchManhattanRandomWaypointWithPause,
    "mrwp-speed": BatchRandomSpeedManhattanWaypoint,
    "rwp": BatchRandomWaypoint,
    "random-walk": BatchRandomWalk,
    "random-direction": BatchRandomDirection,
    "ferry": BatchFerryPatrol,
    "composite": batch_composite_with_ferries,
    "timetable": BatchTimetableMobility,
}
"""Models with a *native* vectorized batch implementation, key-compatible
with :data:`MODEL_REGISTRY` (the batch counterpart of
``repro.protocols.BATCH_PROTOCOL_REGISTRY``; ``composite`` maps to a
config-shaped factory).  Every batch entry is seed-for-seed bit-identical
to its scalar sibling, and since PR 9 **every** scalar registry name has a
native batch entry, so ``engine="auto"`` resolves every registered
mobility to the batch engine.
:class:`~repro.mobility.base.ReplicatedBatchMobility` remains only as the
escape hatch for user-supplied scalar models registered without a batch
twin."""

NO_INIT_MODELS = frozenset({"random-walk", "random-direction", "ferry"})
"""Registered models with no stationary-initialization vocabulary: their
starting state is defined by the model itself (uniform walkers, uniform
directions, evenly spaced ferries), so passing ``init=`` to them is a
config error rather than a silently dropped option."""

__all__ = [
    "MobilityModel",
    "BatchMobilityModel",
    "ReplicatedBatchMobility",
    "BatchManhattanRandomWaypoint",
    "BatchManhattanRandomWaypointWithPause",
    "BatchRandomSpeedManhattanWaypoint",
    "BatchRandomDirection",
    "BatchRandomWaypoint",
    "BatchRandomWalk",
    "record_trajectory",
    "ManhattanRandomWaypoint",
    "ManhattanRandomWaypointWithPause",
    "moving_probability",
    "spatial_pdf_with_pause",
    "RandomWaypoint",
    "RandomWalk",
    "RandomDirection",
    "RandomSpeedManhattanWaypoint",
    "stationary_mean_speed",
    "sample_stationary_speeds",
    "cold_start_speed_decay",
    "FerryPatrol",
    "BatchFerryPatrol",
    "CompositeMobility",
    "BatchCompositeMobility",
    "composite_with_ferries",
    "batch_composite_with_ferries",
    "rectangle_route",
    "Timetable",
    "TimetableMobility",
    "BatchTimetableMobility",
    "loop_timetable",
    "grid_shuttle_timetable",
    "MODEL_REGISTRY",
    "BATCH_MOBILITY_REGISTRY",
    "NO_INIT_MODELS",
    "KinematicState",
    "PalmStationarySampler",
    "ClosedFormStationarySampler",
    "sample_stationary_positions",
    "sample_destination_given_position",
    "spatial_pdf",
    "spatial_pdf_max",
    "spatial_pdf_min",
    "spatial_marginal_pdf",
    "spatial_marginal_cdf",
    "cell_mass",
    "region_mass",
    "destination_pdf",
    "quadrant_masses",
    "cross_probability",
    "cross_probability_total",
    "mean_trip_length",
    "QUADRANTS",
    "SEGMENTS",
]
