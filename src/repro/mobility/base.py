"""Mobility-model interface.

A mobility model owns the kinematic state of ``n`` agents on the square
``[0, side]^2`` and advances all of them synchronously, one discrete time
step at a time (the paper's time unit).  Implementations are vectorized:
state lives in ``(n, 2)`` numpy arrays, never in per-agent objects.

Concrete models:

* :class:`repro.mobility.mrwp.ManhattanRandomWaypoint` — the paper's model;
* :class:`repro.mobility.rwp.RandomWaypoint` — the classic straight-line RWP;
* :class:`repro.mobility.random_walk.RandomWalk` — the random-walk model of
  the authors' earlier papers (refs [10, 11]);
* :class:`repro.mobility.random_direction.RandomDirection` — a billiard-style
  model with a uniform stationary distribution (useful as a contrast).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["MobilityModel", "record_trajectory"]


class MobilityModel(abc.ABC):
    """Abstract base for synchronous agent-mobility processes.

    Args:
        n: number of agents (positive).
        side: side length ``L`` of the square region (positive).
        speed: distance travelled by an agent per unit time (``v`` in the
            paper).  Models that are not constant-speed (e.g. the random
            walk) document their own interpretation.
        rng: numpy random generator; a fresh default generator is created
            when omitted, but experiments should always pass a seeded one.
    """

    def __init__(self, n: int, side: float, speed: float, rng: np.random.Generator = None):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        self.n = int(n)
        self.side = float(side)
        self.speed = float(speed)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.time = 0.0

    @property
    @abc.abstractmethod
    def positions(self) -> np.ndarray:
        """Copy of the current agent positions, shape ``(n, 2)``."""

    @abc.abstractmethod
    def step(self, dt: float = 1.0) -> np.ndarray:
        """Advance all agents by ``dt`` time units; returns the new positions."""

    def advance(self, steps: int, dt: float = 1.0) -> np.ndarray:
        """Run ``steps`` consecutive steps; returns the final positions."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        out = self.positions
        for _ in range(steps):
            out = self.step(dt)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, side={self.side}, "
            f"speed={self.speed}, time={self.time})"
        )


def record_trajectory(model: MobilityModel, steps: int, dt: float = 1.0) -> np.ndarray:
    """Record positions over ``steps`` steps, including the initial snapshot.

    Returns:
        array of shape ``(steps + 1, n, 2)``; row ``t`` is the position at
        time ``model.time_at_start + t * dt``.  Used by the Lemma-13/14
        trajectory analyses (:mod:`repro.core.turns`).
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    frames = np.empty((steps + 1, model.n, 2), dtype=np.float64)
    frames[0] = model.positions
    for t in range(1, steps + 1):
        frames[t] = model.step(dt)
    return frames
