"""Mobility-model interface.

A mobility model owns the kinematic state of ``n`` agents on the square
``[0, side]^2`` and advances all of them synchronously, one discrete time
step at a time (the paper's time unit).  Implementations are vectorized:
state lives in ``(n, 2)`` numpy arrays, never in per-agent objects.

Concrete models:

* :class:`repro.mobility.mrwp.ManhattanRandomWaypoint` — the paper's model;
* :class:`repro.mobility.rwp.RandomWaypoint` — the classic straight-line RWP;
* :class:`repro.mobility.random_walk.RandomWalk` — the random-walk model of
  the authors' earlier papers (refs [10, 11]);
* :class:`repro.mobility.random_direction.RandomDirection` — a billiard-style
  model with a uniform stationary distribution (useful as a contrast).

The batch engine (DESIGN.md, "Batched execution") additionally needs
**multi-replica** stepping: :class:`BatchMobilityModel` advances ``B``
independent trials in lock-step over a ``(B, n, 2)`` tensor.  Replica ``b``
draws randomness only from its own generator, in exactly the order the
scalar model would, so a batch run reproduces ``B`` scalar runs
seed-for-seed.  Models without a native vectorized batch implementation are
adapted through :class:`ReplicatedBatchMobility`.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "MobilityModel",
    "BatchMobilityModel",
    "ReplicatedBatchMobility",
    "record_trajectory",
]


class MobilityModel(abc.ABC):
    """Abstract base for synchronous agent-mobility processes.

    Args:
        n: number of agents (positive).
        side: side length ``L`` of the square region (positive).
        speed: distance travelled by an agent per unit time (``v`` in the
            paper).  Models that are not constant-speed (e.g. the random
            walk) document their own interpretation.
        rng: numpy random generator; a fresh default generator is created
            when omitted, but experiments should always pass a seeded one.
    """

    def __init__(self, n: int, side: float, speed: float, rng: np.random.Generator = None):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        self.n = int(n)
        self.side = float(side)
        self.speed = float(speed)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.time = 0.0

    @property
    @abc.abstractmethod
    def positions(self) -> np.ndarray:
        """Copy of the current agent positions, shape ``(n, 2)``."""

    @abc.abstractmethod
    def step(self, dt: float = 1.0) -> np.ndarray:
        """Advance all agents by ``dt`` time units; returns the new positions."""

    def advance(self, steps: int, dt: float = 1.0) -> np.ndarray:
        """Run ``steps`` consecutive steps; returns the final positions."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        out = self.positions
        for _ in range(steps):
            out = self.step(dt)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, side={self.side}, "
            f"speed={self.speed}, time={self.time})"
        )


class BatchMobilityModel(abc.ABC):
    """Abstract base for lock-step mobility over ``B`` independent replicas.

    The contract mirrors :class:`MobilityModel` with a leading batch axis,
    plus one reproducibility guarantee: replica ``b`` consumes randomness
    exclusively from ``rngs[b]`` and in the same call order as the scalar
    model seeded identically, so per-trial streams stay bit-reproducible
    under batching (asserted by the parity tests).

    Args:
        n: number of agents per replica.
        side: side length of each replica's square.
        speed: agent speed (same interpretation as the scalar model).
        rngs: one seeded generator per replica; the sequence length defines
            the batch size ``B``.
    """

    def __init__(self, n: int, side: float, speed: float, rngs):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        self.rngs = list(rngs)
        if not self.rngs:
            raise ValueError("rngs must contain at least one generator")
        self.n = int(n)
        self.side = float(side)
        self.speed = float(speed)
        self.time = 0.0

    @property
    def batch_size(self) -> int:
        """Number of replicas ``B``."""
        return len(self.rngs)

    @property
    def positions(self) -> np.ndarray:
        """Copy of the current positions, shape ``(B, n, 2)``.

        Vectorized implementations keep their kinematic state in a flat
        ``(B * n, 2)`` float array ``self._pos``, which the base accessors
        read; models with a different storage layout override both
        :attr:`positions` and :attr:`positions_view`.
        """
        return self._pos.reshape(self.batch_size, self.n, 2).copy()

    @property
    def positions_view(self) -> np.ndarray:
        """Read-only ``(B, n, 2)`` positions, without the defensive copy.

        The lock-step driver reads the snapshot once per step and never
        mutates it, so this is a non-writeable view of the flat state —
        valid only until the next ``step`` call (models may refresh the
        underlying buffer in place or rebind it).
        """
        view = self._pos.reshape(self.batch_size, self.n, 2)
        view.flags.writeable = False
        return view

    @abc.abstractmethod
    def step(self, dt: float = 1.0, active=None, copy: bool = True) -> np.ndarray:
        """Advance replicas by ``dt`` time units; returns the new positions.

        Args:
            active: optional ``(B,)`` bool mask — replicas to advance.
                Frozen replicas keep their state *and their generators
                untouched* (a scalar trial that already stopped would not
                have stepped either).
            copy: with the default True the returned positions are an
                independent copy (safe to hold across steps).  The
                lock-step driver passes False to receive
                :attr:`positions_view` instead — read-only and valid only
                until the next ``step`` call (models may either refresh
                the underlying buffer in place or rebind it, so a held
                view can go stale either way).
        """

    def _active_mask(self, active) -> np.ndarray:
        if active is None:
            return np.ones(self.batch_size, dtype=bool)
        active = np.asarray(active, dtype=bool)
        if active.shape != (self.batch_size,):
            raise ValueError(
                f"active must have shape ({self.batch_size},), got {active.shape}"
            )
        return active

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(B={self.batch_size}, n={self.n}, "
            f"side={self.side}, speed={self.speed}, time={self.time})"
        )


class ReplicatedBatchMobility(BatchMobilityModel):
    """Batch adapter over ``B`` independent scalar models.

    The fallback path of the batch engine: stepping is a Python loop, so
    there is no vectorization win, but behaviour is bit-identical to the
    scalar models by construction — any :class:`MobilityModel` becomes
    batchable without a native implementation.

    Args:
        models: scalar mobility models, one per replica, all with the same
            ``(n, side)`` geometry (each owning its per-trial generator).
    """

    def __init__(self, models):
        models = list(models)
        if not models:
            raise ValueError("models must contain at least one mobility model")
        first = models[0]
        for model in models[1:]:
            if model.n != first.n or model.side != first.side:
                raise ValueError("all replica models must share n and side")
        super().__init__(first.n, first.side, first.speed, [m.rng for m in models])
        self.models = models

    @property
    def positions(self) -> np.ndarray:
        return np.stack([model.positions for model in self.models], axis=0)

    @property
    def positions_view(self) -> np.ndarray:
        # The per-replica stack is a fresh array either way; nothing to view.
        return self.positions

    def step(self, dt: float = 1.0, active=None, copy: bool = True) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        active = self._active_mask(active)
        for b in np.nonzero(active)[0]:
            self.models[b].step(dt)
        self.time += dt
        return self.positions  # already a fresh stack; `copy` adds nothing


def record_trajectory(model: MobilityModel, steps: int, dt: float = 1.0) -> np.ndarray:
    """Record positions over ``steps`` steps, including the initial snapshot.

    Returns:
        array of shape ``(steps + 1, n, 2)``; row ``t`` is the position at
        time ``model.time_at_start + t * dt``.  Used by the Lemma-13/14
        trajectory analyses (:mod:`repro.core.turns`).
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    frames = np.empty((steps + 1, model.n, 2), dtype=np.float64)
    frames[0] = model.positions
    for t in range(1, steps + 1):
        frames[t] = model.step(dt)
    return frames
