"""MRWP with per-trip random speeds — and the speed-decay trap.

Another Random-Trip variant (paper's Section 3 direction): each trip's
speed is drawn uniformly from ``[v_min, v_max]``.  This family is infamous
in the simulation literature ("random waypoint considered harmful",
Yoon-Liu-Noble): a *cold-started* simulation's average speed decays over
time, because slow trips last longer and progressively dominate the time
average.  The stationary law is exact and closed-form under Palm calculus:

* a trip observed at a random time has speed density ``∝ 1/v`` on
  ``[v_min, v_max]`` (duration-biased: duration = length / v), so the
  stationary *time-average* speed is the **harmonic-style mean**
  ``(v_max - v_min) / ln(v_max / v_min)``;
* the spatial law is unchanged — speed and geometry are independent, so
  Theorem 1 still holds (verified in the tests);
* with ``v_min = 0`` the ``1/v`` density is non-normalizable: there is *no*
  stationary phase and the average speed decays to zero — the pathology,
  reproduced by :func:`cold_start_speed_decay`.

Perfect simulation: endpoints length-biased exactly as for fixed-speed MRWP
(geometry and speed factorize), observed speed from the truncated ``1/v``
law, position uniform along the path.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.paths import choose_corners
from repro.mobility.base import MobilityModel
from repro.mobility.mrwp import _MAX_LEGS_PER_STEP
from repro.mobility.stationary import PalmStationarySampler

__all__ = [
    "RandomSpeedManhattanWaypoint",
    "stationary_mean_speed",
    "sample_stationary_speeds",
    "cold_start_speed_decay",
]


def _validate_range(v_min: float, v_max: float) -> None:
    if not 0 < v_min <= v_max:
        raise ValueError(
            f"need 0 < v_min <= v_max (v_min = 0 has no stationary phase — "
            f"the speed-decay pathology); got [{v_min}, {v_max}]"
        )


def stationary_mean_speed(v_min: float, v_max: float) -> float:
    """Time-average speed in stationarity: ``(v_max - v_min)/ln(v_max/v_min)``.

    Strictly below the uniform mean ``(v_min + v_max)/2`` — slow trips
    occupy more than their share of time.
    """
    _validate_range(v_min, v_max)
    if v_min == v_max:
        return float(v_min)
    return (v_max - v_min) / math.log(v_max / v_min)


def sample_stationary_speeds(n: int, v_min: float, v_max: float, rng) -> np.ndarray:
    """Observed-trip speeds: density ``∝ 1/v`` on ``[v_min, v_max]``.

    Inverse-CDF: ``V = v_min * (v_max/v_min)^U`` with ``U ~ Uniform(0,1)``.
    """
    _validate_range(v_min, v_max)
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if v_min == v_max:
        return np.full(n, float(v_min))
    u = rng.uniform(size=n)
    return v_min * (v_max / v_min) ** u


class RandomSpeedManhattanWaypoint(MobilityModel):
    """MRWP where each trip draws a fresh speed from ``Uniform[v_min, v_max]``.

    Args:
        n, side, rng: as usual.
        v_min, v_max: per-trip speed range (``v_min > 0`` required — see
            module docstring).
        init: ``"stationary"`` (perfect simulation: duration-biased speeds,
            default) or ``"uniform"`` (cold start: uniform speeds — exhibits
            the speed-decay transient).

    The base-class ``speed`` attribute reports the stationary mean speed.
    """

    def __init__(
        self,
        n: int,
        side: float,
        v_min: float,
        v_max: float,
        rng: np.random.Generator = None,
        init: str = "stationary",
    ):
        _validate_range(v_min, v_max)
        super().__init__(n, side, stationary_mean_speed(v_min, v_max), rng)
        self.v_min = float(v_min)
        self.v_max = float(v_max)
        self._eps = 1e-9 * max(self.side, 1.0)
        if init == "stationary":
            state = PalmStationarySampler(self.side).sample(self.n, self.rng)
            self._pos = state.positions
            self._dest = state.destinations
            self._target = state.targets
            self._on_second_leg = state.on_second_leg
            self._trip_speed = sample_stationary_speeds(
                self.n, self.v_min, self.v_max, self.rng
            )
        elif init == "uniform":
            self._pos = self.rng.uniform(0.0, self.side, size=(self.n, 2))
            self._dest = self.rng.uniform(0.0, self.side, size=(self.n, 2))
            corners, _ = choose_corners(self._pos, self._dest, self.rng)
            self._target = corners
            self._on_second_leg = np.zeros(self.n, dtype=bool)
            self._trip_speed = self.rng.uniform(self.v_min, self.v_max, size=self.n)
        else:
            raise ValueError(f"init must be 'stationary' or 'uniform', got {init!r}")

    @property
    def positions(self) -> np.ndarray:
        return self._pos.copy()

    @property
    def trip_speeds(self) -> np.ndarray:
        """Copy of the per-agent current-trip speeds."""
        return self._trip_speed.copy()

    @property
    def mean_current_speed(self) -> float:
        """Population-average current speed (the speed-decay observable)."""
        return float(self._trip_speed.mean())

    def step(self, dt: float = 1.0) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        time_budget = np.full(self.n, float(dt))
        eps_t = self._eps / self.v_max
        for _ in range(_MAX_LEGS_PER_STEP):
            active = time_budget > eps_t
            idx = np.nonzero(active)[0]
            if idx.size == 0:
                break
            delta = self._target[idx] - self._pos[idx]
            dist = np.abs(delta).sum(axis=1)
            can_move = time_budget[idx] * self._trip_speed[idx]
            move = np.minimum(can_move, dist)
            with np.errstate(invalid="ignore", divide="ignore"):
                frac = np.where(dist > self._eps, move / np.where(dist > self._eps, dist, 1.0), 1.0)
            self._pos[idx] += delta * frac[:, None]
            time_budget[idx] -= move / self._trip_speed[idx]
            reached = move >= dist - self._eps
            if not np.any(reached):
                break
            done = idx[reached]
            self._pos[done] = self._target[done]
            second = self._on_second_leg[done]
            corner_done = done[~second]
            if corner_done.size:
                self._on_second_leg[corner_done] = True
                self._target[corner_done] = self._dest[corner_done]
            trip_done = done[second]
            if trip_done.size:
                new_dest = self.rng.uniform(0.0, self.side, size=(trip_done.size, 2))
                corners, _ = choose_corners(self._pos[trip_done], new_dest, self.rng)
                self._dest[trip_done] = new_dest
                self._target[trip_done] = corners
                self._on_second_leg[trip_done] = False
                # Fresh trips draw *uniform* speeds — the 1/v bias emerges
                # from time-averaging, not from the per-trip law.
                self._trip_speed[trip_done] = self.rng.uniform(
                    self.v_min, self.v_max, size=trip_done.size
                )
        else:  # pragma: no cover - defensive
            raise RuntimeError("carry-over loop did not converge")
        self.time += dt
        return self.positions


def cold_start_speed_decay(
    n: int,
    side: float,
    v_min: float,
    v_max: float,
    steps: int,
    rng: np.random.Generator,
    every: int = 1,
) -> dict:
    """Measure the average-speed transient from a cold (uniform-speed) start.

    Returns:
        dict with ``steps``, ``mean_speed`` (series), ``uniform_mean``
        (the biased starting value ``(v_min+v_max)/2``) and
        ``stationary_mean`` (the harmonic-style limit).  The series decays
        from the former toward the latter — the "considered harmful"
        transient that perfect simulation eliminates.
    """
    model = RandomSpeedManhattanWaypoint(n, side, v_min, v_max, rng=rng, init="uniform")
    recorded = [0]
    speeds = [model.mean_current_speed]
    for t in range(1, steps + 1):
        model.step()
        if t % every == 0 or t == steps:
            recorded.append(t)
            speeds.append(model.mean_current_speed)
    return {
        "steps": np.asarray(recorded),
        "mean_speed": np.asarray(speeds),
        "uniform_mean": (v_min + v_max) / 2.0,
        "stationary_mean": stationary_mean_speed(v_min, v_max),
    }
