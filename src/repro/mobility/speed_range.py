"""MRWP with per-trip random speeds — and the speed-decay trap.

Another Random-Trip variant (paper's Section 3 direction): each trip's
speed is drawn uniformly from ``[v_min, v_max]``.  This family is infamous
in the simulation literature ("random waypoint considered harmful",
Yoon-Liu-Noble): a *cold-started* simulation's average speed decays over
time, because slow trips last longer and progressively dominate the time
average.  The stationary law is exact and closed-form under Palm calculus:

* a trip observed at a random time has speed density ``∝ 1/v`` on
  ``[v_min, v_max]`` (duration-biased: duration = length / v), so the
  stationary *time-average* speed is the **harmonic-style mean**
  ``(v_max - v_min) / ln(v_max / v_min)``;
* the spatial law is unchanged — speed and geometry are independent, so
  Theorem 1 still holds (verified in the tests);
* with ``v_min = 0`` the ``1/v`` density is non-normalizable: there is *no*
  stationary phase and the average speed decays to zero — the pathology,
  reproduced by :func:`cold_start_speed_decay`.

Perfect simulation: endpoints length-biased exactly as for fixed-speed MRWP
(geometry and speed factorize), observed speed from the truncated ``1/v``
law, position uniform along the path.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.paths import choose_corners
from repro.mobility.base import BatchMobilityModel, MobilityModel
from repro.mobility.kinematics import (
    DenseLegScratch,
    advance_legs,
    advance_legs_dense,
    redraw_manhattan_trips,
    replica_slices,
    split_completed_legs,
)
from repro.mobility.mrwp import _MAX_LEGS_PER_STEP
from repro.mobility.stationary import PalmStationarySampler

__all__ = [
    "RandomSpeedManhattanWaypoint",
    "BatchRandomSpeedManhattanWaypoint",
    "stationary_mean_speed",
    "sample_stationary_speeds",
    "cold_start_speed_decay",
]


def _validate_range(v_min: float, v_max: float) -> None:
    if not 0 < v_min <= v_max:
        raise ValueError(
            f"need 0 < v_min <= v_max (v_min = 0 has no stationary phase — "
            f"the speed-decay pathology); got [{v_min}, {v_max}]"
        )


def stationary_mean_speed(v_min: float, v_max: float) -> float:
    """Time-average speed in stationarity: ``(v_max - v_min)/ln(v_max/v_min)``.

    Strictly below the uniform mean ``(v_min + v_max)/2`` — slow trips
    occupy more than their share of time.
    """
    _validate_range(v_min, v_max)
    if v_min == v_max:
        return float(v_min)
    return (v_max - v_min) / math.log(v_max / v_min)


def sample_stationary_speeds(n: int, v_min: float, v_max: float, rng) -> np.ndarray:
    """Observed-trip speeds: density ``∝ 1/v`` on ``[v_min, v_max]``.

    Inverse-CDF: ``V = v_min * (v_max/v_min)^U`` with ``U ~ Uniform(0,1)``.
    """
    _validate_range(v_min, v_max)
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if v_min == v_max:
        return np.full(n, float(v_min))
    u = rng.uniform(size=n)
    return v_min * (v_max / v_min) ** u


class RandomSpeedManhattanWaypoint(MobilityModel):
    """MRWP where each trip draws a fresh speed from ``Uniform[v_min, v_max]``.

    Args:
        n, side, rng: as usual.
        v_min, v_max: per-trip speed range (``v_min > 0`` required — see
            module docstring).
        init: ``"stationary"`` (perfect simulation: duration-biased speeds,
            default) or ``"uniform"`` (cold start: uniform speeds — exhibits
            the speed-decay transient).

    The base-class ``speed`` attribute reports the stationary mean speed.
    """

    def __init__(
        self,
        n: int,
        side: float,
        v_min: float,
        v_max: float,
        rng: np.random.Generator = None,
        init: str = "stationary",
    ):
        _validate_range(v_min, v_max)
        super().__init__(n, side, stationary_mean_speed(v_min, v_max), rng)
        self.v_min = float(v_min)
        self.v_max = float(v_max)
        self._eps = 1e-9 * max(self.side, 1.0)
        (
            self._pos,
            self._dest,
            self._target,
            self._on_second_leg,
            self._trip_speed,
        ) = _initial_speed_state(self.n, self.side, self.v_min, self.v_max, init, self.rng)
        self._scratch = DenseLegScratch(self.n)

    @property
    def positions(self) -> np.ndarray:
        return self._pos.copy()

    @property
    def trip_speeds(self) -> np.ndarray:
        """Copy of the per-agent current-trip speeds."""
        return self._trip_speed.copy()

    @property
    def mean_current_speed(self) -> float:
        """Population-average current speed (the speed-decay observable)."""
        return float(self._trip_speed.mean())

    def step(self, dt: float = 1.0) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        time_budget = np.full(self.n, float(dt))
        _advance_random_speed(
            self._pos, self._dest, self._target, self._on_second_leg,
            self._trip_speed, time_budget,
            self.side, self.v_min, self.v_max, self._eps, [self.rng], self.n,
            scratch=self._scratch,
        )
        self.time += dt
        return self.positions


class BatchRandomSpeedManhattanWaypoint(BatchMobilityModel):
    """Random-speed MRWP for ``B`` independent replicas, in lock-step.

    Same layout and RNG discipline as the other batch way-point models:
    flat ``(B * n, 2)`` state, shared kinematics helpers (here with a
    per-agent speed array), and arrival redraws grouped by replica in the
    scalar draw order — destination uniforms, path coin flips, then the
    fresh *uniform* trip speeds, per replica per iteration.

    Args:
        n, side, rngs: see :class:`~repro.mobility.base.BatchMobilityModel`.
        v_min, v_max: per-trip speed range (scalar semantics, per replica).
        init: ``"stationary"`` or ``"uniform"``, applied per replica.
    """

    def __init__(self, n: int, side: float, v_min: float, v_max: float, rngs, init="stationary"):
        _validate_range(v_min, v_max)
        super().__init__(n, side, stationary_mean_speed(v_min, v_max), rngs)
        self.v_min = float(v_min)
        self.v_max = float(v_max)
        self._eps = 1e-9 * max(self.side, 1.0)
        states = [
            _initial_speed_state(self.n, self.side, self.v_min, self.v_max, init, rng)
            for rng in self.rngs
        ]
        self._pos = np.concatenate([s[0] for s in states], axis=0)
        self._dest = np.concatenate([s[1] for s in states], axis=0)
        self._target = np.concatenate([s[2] for s in states], axis=0)
        self._on_second_leg = np.concatenate([s[3] for s in states], axis=0)
        self._trip_speed = np.concatenate([s[4] for s in states], axis=0)
        self._scratch = DenseLegScratch(self.batch_size * self.n)

    @property
    def trip_speeds(self) -> np.ndarray:
        """``(B, n)`` copy of the per-agent current-trip speeds."""
        return self._trip_speed.reshape(self.batch_size, self.n).copy()

    @property
    def mean_current_speed(self) -> np.ndarray:
        """``(B,)`` population-average current speed per replica."""
        return self._trip_speed.reshape(self.batch_size, self.n).mean(axis=1)

    def step(self, dt: float = 1.0, active=None, copy: bool = True) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        active = self._active_mask(active)
        time_budget = np.where(np.repeat(active, self.n), float(dt), 0.0)
        _advance_random_speed(
            self._pos, self._dest, self._target, self._on_second_leg,
            self._trip_speed, time_budget,
            self.side, self.v_min, self.v_max, self._eps, self.rngs, self.n,
            scratch=self._scratch,
        )
        self.time += dt
        return self.positions if copy else self.positions_view


def _advance_random_speed(
    pos, dest, target, on_second_leg, trip_speed, time_budget,
    side, v_min, v_max, eps, rngs, n, scratch=None,
):
    """Spend ``time_budget`` through the random-speed carry-over loop.

    The single driver behind the scalar and batch models.  Frozen replicas
    enter with zero budget and their generators see no draws.
    """
    eps_t = eps / v_max
    total = time_budget.shape[0]
    for _ in range(_MAX_LEGS_PER_STEP):
        moving = time_budget > eps_t
        n_moving = int(np.count_nonzero(moving))
        if n_moving == 0:
            break
        if scratch is not None and 2 * n_moving >= total:
            done = advance_legs_dense(
                pos, target, time_budget, moving, n_moving, eps, scratch, speed=trip_speed
            )
        else:
            idx = np.nonzero(moving)[0]
            done = advance_legs(pos, target, time_budget, idx, eps, speed=trip_speed)
        if done.size == 0:
            break
        _corner_done, trip_done = split_completed_legs(done, on_second_leg, target, dest)
        if trip_done.size:
            redraw_manhattan_trips(pos, dest, target, on_second_leg, trip_done, side, rngs, n)
            # Fresh trips draw *uniform* speeds — the 1/v bias emerges
            # from time-averaging, not from the per-trip law.
            for b, lo, hi in replica_slices(trip_done, n, len(rngs)):
                trip_speed[trip_done[lo:hi]] = rngs[b].uniform(v_min, v_max, size=hi - lo)
    else:  # pragma: no cover - defensive
        raise RuntimeError("carry-over loop did not converge")


def _initial_speed_state(
    n: int, side: float, v_min: float, v_max: float, init, rng: np.random.Generator
) -> tuple:
    """One replica's initial random-speed state — the scalar model's recipe.

    Returns:
        ``(positions, destinations, targets, on_second_leg, trip_speed)``.
    """
    if init == "stationary":
        state = PalmStationarySampler(side).sample(n, rng)
        trip_speed = sample_stationary_speeds(n, v_min, v_max, rng)
        return state.positions, state.destinations, state.targets, state.on_second_leg, trip_speed
    if init == "uniform":
        pos = rng.uniform(0.0, side, size=(n, 2))
        dest = rng.uniform(0.0, side, size=(n, 2))
        target, _ = choose_corners(pos, dest, rng)
        trip_speed = rng.uniform(v_min, v_max, size=n)
        return pos, dest, target, np.zeros(n, dtype=bool), trip_speed
    raise ValueError(f"init must be 'stationary' or 'uniform', got {init!r}")


def cold_start_speed_decay(
    n: int,
    side: float,
    v_min: float,
    v_max: float,
    steps: int,
    rng: np.random.Generator,
    every: int = 1,
) -> dict:
    """Measure the average-speed transient from a cold (uniform-speed) start.

    Returns:
        dict with ``steps``, ``mean_speed`` (series), ``uniform_mean``
        (the biased starting value ``(v_min+v_max)/2``) and
        ``stationary_mean`` (the harmonic-style limit).  The series decays
        from the former toward the latter — the "considered harmful"
        transient that perfect simulation eliminates.
    """
    model = RandomSpeedManhattanWaypoint(n, side, v_min, v_max, rng=rng, init="uniform")
    recorded = [0]
    speeds = [model.mean_current_speed]
    for t in range(1, steps + 1):
        model.step()
        if t % every == 0 or t == steps:
            recorded.append(t)
            speeds.append(model.mean_current_speed)
    return {
        "steps": np.asarray(recorded),
        "mean_speed": np.asarray(speeds),
        "uniform_mean": (v_min + v_max) / 2.0,
        "stationary_mean": stationary_mean_speed(v_min, v_max),
    }
