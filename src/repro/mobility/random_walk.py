"""Random-walk mobility — the model of the authors' earlier work (refs [10, 11]).

Each agent, at every time step, jumps to a point chosen uniformly at random
in the disk of radius ``move_radius`` around its current position (clipped
to the square by resampling/reflection).  Its stationary spatial
distribution is *almost uniform*, which is exactly the property that makes
MRWP interesting by contrast: MRWP's stationary law (Theorem 1) is far from
uniform, and the paper's contribution is showing flooding stays fast anyway.

The model is used by the ``mobility_ablation`` experiment as the
uniform-density baseline.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.sampling import sample_uniform_disk
from repro.mobility.base import BatchMobilityModel, MobilityModel

__all__ = ["RandomWalk", "BatchRandomWalk"]


class RandomWalk(MobilityModel):
    """Disk-jump random walk over ``[0, side]^2``.

    Args:
        n, side: as usual.
        move_radius: the per-step jump radius ``rho`` (plays the role of the
            agent speed: the maximum distance travelled per time step).
        rng: seeded generator.
        boundary: ``"reflect"`` (default) folds jumps at the walls, which
            preserves the uniform stationary distribution; ``"clip"`` clamps
            to the walls (slight corner bias, kept for comparison).
    """

    def __init__(
        self,
        n: int,
        side: float,
        move_radius: float,
        rng: np.random.Generator = None,
        boundary: str = "reflect",
    ):
        super().__init__(n, side, speed=move_radius, rng=rng)
        if move_radius <= 0:
            raise ValueError(f"move_radius must be positive, got {move_radius}")
        if move_radius > side:
            raise ValueError(f"move_radius must not exceed side ({side}), got {move_radius}")
        if boundary not in ("reflect", "clip"):
            raise ValueError(f"boundary must be 'reflect' or 'clip', got {boundary!r}")
        self.move_radius = float(move_radius)
        self.boundary = boundary
        # Uniform is the stationary law for the reflected walk.
        self._pos = self.rng.uniform(0.0, self.side, size=(self.n, 2))

    @property
    def positions(self) -> np.ndarray:
        return self._pos.copy()

    def _fold(self, pos: np.ndarray) -> np.ndarray:
        """Reflect positions into ``[0, side]`` (single reflection suffices
        because ``move_radius <= side``)."""
        pos = np.where(pos < 0.0, -pos, pos)
        pos = np.where(pos > self.side, 2.0 * self.side - pos, pos)
        return pos

    def step(self, dt: float = 1.0) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        jump = sample_uniform_disk(self.n, self.move_radius, self.rng)
        new_pos = self._pos + jump
        if self.boundary == "reflect":
            new_pos = self._fold(new_pos)
        else:
            np.clip(new_pos, 0.0, self.side, out=new_pos)
        self._pos = new_pos
        self.time += dt
        return self.positions


class BatchRandomWalk(BatchMobilityModel):
    """Disk-jump random walk for ``B`` replicas in lock-step.

    Jumps are drawn per replica (each replica's generator must see the same
    stream as its scalar counterpart) and applied with one vectorized
    boundary fold over the flat ``(B * n, 2)`` state.

    Args:
        n, side, rngs: see :class:`~repro.mobility.base.BatchMobilityModel`.
        move_radius: per-step jump radius (scalar semantics).
        boundary: ``"reflect"`` or ``"clip"`` (scalar semantics).
    """

    def __init__(self, n: int, side: float, move_radius: float, rngs, boundary: str = "reflect"):
        super().__init__(n, side, speed=move_radius, rngs=rngs)
        if move_radius <= 0:
            raise ValueError(f"move_radius must be positive, got {move_radius}")
        if move_radius > side:
            raise ValueError(f"move_radius must not exceed side ({side}), got {move_radius}")
        if boundary not in ("reflect", "clip"):
            raise ValueError(f"boundary must be 'reflect' or 'clip', got {boundary!r}")
        self.move_radius = float(move_radius)
        self.boundary = boundary
        self._pos = np.concatenate(
            [rng.uniform(0.0, self.side, size=(self.n, 2)) for rng in self.rngs], axis=0
        )

    def step(self, dt: float = 1.0, active=None, copy: bool = True) -> np.ndarray:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        active = self._active_mask(active)
        jump = np.zeros_like(self._pos)
        for b in np.nonzero(active)[0]:
            lo = b * self.n
            jump[lo:lo + self.n] = sample_uniform_disk(self.n, self.move_radius, self.rngs[b])
        new_pos = self._pos + jump
        if self.boundary == "reflect":
            new_pos = np.where(new_pos < 0.0, -new_pos, new_pos)
            new_pos = np.where(new_pos > self.side, 2.0 * self.side - new_pos, new_pos)
        else:
            np.clip(new_pos, 0.0, self.side, out=new_pos)
        row_active = np.repeat(active, self.n)[:, None]
        self._pos = np.where(row_active, new_pos, self._pos)
        self.time += dt
        return self.positions if copy else self.positions_view
