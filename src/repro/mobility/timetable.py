"""Schedule-driven transit mobility: timetables, vehicles, and riders.

The paper treats information crossing the disconnected Suburb
probabilistically; the engineering counterpart (paper ref [30],
Zhao-Ammar-Zegura message ferries) is a *scheduled* one: vehicles on fixed
routes with stop sequences, dwell times, headways and capacity, plus agents
that board and alight.  This module generalizes the ferry patrol into that
family — the GTFS-style "timetable networks" item of ROADMAP.md:

* :class:`Timetable` — a validated value object: routes as stop way-point
  sequences (closed loops; a 2-stop loop is an out-and-back shuttle),
  per-stop dwell times, an optional headway between successive vehicles,
  and an optional per-vehicle capacity.  Builders:
  :func:`loop_timetable` (subsumes the ferry's :func:`rectangle_route`)
  and :func:`grid_shuttle_timetable`.
* :class:`TimetableMobility` / :class:`BatchTimetableMobility` — scalar and
  batch models over one shared flat-array engine (the ``pause.py``
  pattern), so the two are seed-for-seed bit-identical by construction.
  Vehicles run stop→dwell→leg cycles: dwell burning reuses
  :func:`~repro.mobility.kinematics.countdown_pauses` and leg advance is a
  1-D carry-over loop in arc-length space, with positions synthesized by
  the exact arithmetic of the historical ``FerryPatrol`` (so the zero-dwell
  single-route case — the refactored ferry — reproduces the pre-refactor
  trajectories bit for bit; zero-dwell timetables take a fast path that is
  literally the old ``mod(arc + v*dt, length)`` update).  Riders walk MRWP
  between trips, board at stops where a vehicle is dwelling with spare
  capacity (deterministic tie-break: ascending agent id, lowest-index
  vehicle), draw a destination stop uniformly among the route's other
  stops, and alight when their vehicle dwells there.

Step semantics: board/alight decisions happen once per step, *at the start
of the step*, using the previous step's final state; then vehicles advance,
then walking riders advance, then riding riders take their vehicle's
position.  A vehicle whose dwell is shorter than the step ``dt`` can
therefore arrive *and* depart between two decision points — riders only
reliably interact with stops whose dwell is at least ``dt``.

Agent layout per replica: riders first (``0 .. riders-1``), vehicles after
(``riders .. n-1``) — the composition convention of
:class:`~repro.mobility.ferry.CompositeMobility`.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import BatchMobilityModel, MobilityModel
from repro.mobility.kinematics import (
    DenseLegScratch,
    advance_legs,
    advance_legs_dense,
    countdown_pauses,
    redraw_manhattan_trips,
    replica_slices,
    split_completed_legs,
)
from repro.mobility.mrwp import _MAX_LEGS_PER_STEP, _initial_state

__all__ = [
    "Timetable",
    "TimetableMobility",
    "BatchTimetableMobility",
    "rectangle_route",
    "loop_timetable",
    "grid_shuttle_timetable",
]


def rectangle_route(side: float, inset: float) -> np.ndarray:
    """A rectangular loop at distance ``inset`` from the square's walls.

    The classic ferry route: it passes near all four Suburb corners.
    """
    if not 0 <= inset < side / 2:
        raise ValueError(f"inset must be in [0, side/2), got {inset}")
    lo = inset
    hi = side - inset
    return np.array([[lo, lo], [hi, lo], [hi, hi], [lo, hi]], dtype=np.float64)


class Timetable:
    """Validated transit schedule: routes, dwell times, headway, capacity.

    Args:
        routes: one ``(k, 2)`` way-point array, or a sequence of them.  Each
            route is a closed loop (the segment from the last way-point back
            to the first is implied); a 2-stop route is an out-and-back
            shuttle line.  Consecutive duplicate way-points (zero-length
            segments) are rejected.
        dwell: per-stop dwell time — a scalar applied to every stop of
            every route, or a per-route sequence whose elements are scalars
            or length-``k`` arrays.  Vehicles rest this long at each stop;
            riders can only board/alight while a vehicle is dwelling.
        headway: time offset between successive vehicles of a route (their
            trip starts are staggered by ``headway`` — frequency-based
            service).  ``None`` (default) spaces a route's vehicles evenly
            along the loop, the historical ferry placement.
        capacity: maximum riders aboard one vehicle (``None`` = unlimited).

    Derived per route ``i``: ``seg_lengths[i]``, ``cum[i]`` (cumulative arc
    length, ``cum[i][-1]`` closing the loop), ``lengths[i]``.
    """

    def __init__(self, routes, dwell=0.0, headway=None, capacity=None):
        routes = self._normalize_routes(routes)
        self.routes = []
        self.seg_lengths = []
        self.cum = []
        self.lengths = []
        for stops in routes:
            stops = np.array(stops, dtype=np.float64)
            if stops.ndim != 2 or stops.shape[1] != 2 or stops.shape[0] < 2:
                raise ValueError(
                    f"route must have shape (k>=2, 2), got {stops.shape}"
                )
            if not np.all(np.isfinite(stops)):
                raise ValueError("route way-points must be finite")
            segments = np.diff(np.vstack([stops, stops[:1]]), axis=0)
            seg_lengths = np.sqrt(np.sum(segments * segments, axis=1))
            if np.any(seg_lengths <= 0):
                raise ValueError("route contains zero-length segments")
            self.routes.append(stops)
            self.seg_lengths.append(seg_lengths)
            self.cum.append(np.concatenate([[0.0], np.cumsum(seg_lengths)]))
            self.lengths.append(float(self.cum[-1][-1]))
        self.dwell = self._normalize_dwell(dwell)
        if headway is not None and not headway > 0:
            raise ValueError(f"headway must be positive, got {headway}")
        self.headway = None if headway is None else float(headway)
        if capacity is not None:
            capacity = int(capacity)
            if capacity < 1:
                raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity

    @staticmethod
    def _normalize_routes(routes) -> list:
        arr = np.asarray(routes, dtype=object) if isinstance(routes, (list, tuple)) else routes
        if isinstance(routes, np.ndarray) and routes.ndim == 2:
            return [routes]
        if isinstance(routes, (list, tuple)):
            if not routes:
                raise ValueError("at least one route is required")
            first = np.asarray(routes[0], dtype=np.float64) if np.ndim(routes[0]) else None
            # A bare [[x, y], ...] way-point list is a single route.
            if np.ndim(routes[0]) == 1:
                return [routes]
            return list(routes)
        del arr
        raise ValueError("routes must be a (k, 2) array or a sequence of them")

    def _normalize_dwell(self, dwell) -> list:
        counts = [stops.shape[0] for stops in self.routes]
        if np.ndim(dwell) == 0:
            per_route = [dwell] * len(counts)
        else:
            per_route = list(dwell)
            if len(per_route) != len(counts):
                raise ValueError(
                    f"dwell must give one entry per route ({len(counts)}), "
                    f"got {len(per_route)}"
                )
        out = []
        for spec, k in zip(per_route, counts):
            arr = np.asarray(spec, dtype=np.float64)
            if arr.ndim == 0:
                arr = np.full(k, float(arr))
            if arr.shape != (k,):
                raise ValueError(
                    f"per-stop dwell must have shape ({k},), got {arr.shape}"
                )
            if not np.all(np.isfinite(arr)) or np.any(arr < 0):
                raise ValueError("dwell times must be finite and non-negative")
            out.append(arr)
        return out

    @property
    def n_routes(self) -> int:
        return len(self.routes)

    @property
    def zero_dwell(self) -> bool:
        """True when no stop has a positive dwell (pure patrol loops)."""
        return all(not np.any(d > 0) for d in self.dwell)

    def period(self, speed: float, route: int = 0) -> float:
        """Full-loop cycle time of one vehicle at ``speed`` on ``route``."""
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        return self.lengths[route] / speed + float(np.sum(self.dwell[route]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stops = "+".join(str(s.shape[0]) for s in self.routes)
        return (
            f"Timetable(routes={self.n_routes} [{stops} stops], "
            f"headway={self.headway}, capacity={self.capacity})"
        )


def loop_timetable(
    side: float,
    inset: float = None,
    dwell=0.0,
    headway: float = None,
    capacity: int = None,
) -> Timetable:
    """A single rectangular loop — the ferry patrol as a timetable.

    Subsumes :func:`rectangle_route`: with ``dwell=0`` this is exactly the
    historical ferry service (corner way-points, no stops observed).
    """
    route = rectangle_route(side, side / 8.0 if inset is None else inset)
    return Timetable([route], dwell=dwell, headway=headway, capacity=capacity)


def grid_shuttle_timetable(
    side: float,
    lines: int = 2,
    inset: float = None,
    dwell=0.0,
    headway: float = None,
    capacity: int = None,
) -> Timetable:
    """Crossing shuttle lines: ``lines`` horizontal + ``lines`` vertical.

    Each line is a 2-stop out-and-back route spanning the square at evenly
    spaced offsets in ``[inset, side - inset]`` — a minimal grid transit
    network whose terminals sit near the Suburb walls.
    """
    if lines < 1:
        raise ValueError(f"lines must be at least 1, got {lines}")
    inset = side / 8.0 if inset is None else inset
    if not 0 <= inset < side / 2:
        raise ValueError(f"inset must be in [0, side/2), got {inset}")
    offsets = np.linspace(inset, side - inset, lines + 2)[1:-1] if lines > 1 else [side / 2.0]
    if lines > 1:
        offsets = np.linspace(inset, side - inset, lines)
    routes = []
    for y in offsets:
        routes.append(np.array([[inset, y], [side - inset, y]], dtype=np.float64))
    for x in offsets:
        routes.append(np.array([[x, inset], [x, side - inset]], dtype=np.float64))
    return Timetable(routes, dwell=dwell, headway=headway, capacity=capacity)


def _route_positions_at_arc(stops, seg_lengths, cum, length, arc) -> np.ndarray:
    """Positions along one route at the given arc lengths.

    Operation-for-operation the historical ``FerryPatrol._positions_at_arc``
    arithmetic — the bit-exactness anchor of the ferry refactor.
    """
    arc = np.mod(arc, length)
    seg = np.clip(np.searchsorted(cum, arc, side="right") - 1, 0, len(seg_lengths) - 1)
    offset = arc - cum[seg]
    start = stops[seg]
    nxt = stops[(seg + 1) % stops.shape[0]]
    direction = (nxt - start) / seg_lengths[seg][:, None]
    return start + direction * offset[:, None]


def _resolve_timetable(side, timetable, routes, dwell, headway, capacity) -> Timetable:
    """Shared facade plumbing: an explicit Timetable or config-shaped parts."""
    if timetable is not None:
        if routes is not None:
            raise ValueError("pass either timetable= or routes=, not both")
        if not isinstance(timetable, Timetable):
            raise ValueError(f"timetable must be a Timetable, got {type(timetable).__name__}")
        return timetable
    if routes is None:
        return loop_timetable(side, dwell=dwell, headway=headway, capacity=capacity)
    return Timetable(routes, dwell=dwell, headway=headway, capacity=capacity)


class _TimetableEngine:
    """Flat-array transit dynamics for ``len(rngs)`` replicas.

    The single driver behind :class:`TimetableMobility` (``B == 1``) and
    :class:`BatchTimetableMobility` — the mechanism that makes the two
    bit-identical seed for seed.  All state is flat: vehicle arrays are
    ``(B * V,)`` and rider arrays ``(B * R,)`` / ``(B * R, 2)``, grouped by
    replica in ascending order; every RNG draw goes through
    :func:`~repro.mobility.kinematics.replica_slices` so replica ``b``
    consumes randomness only from ``rngs[b]`` in scalar call order.
    Frozen replicas enter :meth:`advance` with zero budget and are excluded
    from the interaction masks: they neither move nor draw.
    """

    def __init__(self, timetable, n, side, speed, riders, board_radius, jitter, init, rngs):
        self.timetable = timetable
        self.side = float(side)
        self.speed = float(speed)
        self.rngs = list(rngs)
        self.batch_size = len(self.rngs)
        for stops in timetable.routes:
            if np.any(stops < 0) or np.any(stops > side):
                raise ValueError("route way-points must lie inside the square")
        riders = int(riders)
        if not 0 <= riders <= n - 1:
            raise ValueError(
                f"riders must be in [0, n - 1] (at least one vehicle), got {riders}"
            )
        self.n = int(n)
        self.R = riders
        self.V = self.n - riders
        if board_radius is None:
            board_radius = 0.05 * self.side
        if not board_radius > 0:
            raise ValueError(f"board_radius must be positive, got {board_radius}")
        self.board_radius = float(board_radius)
        if not 0 <= jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.jitter = float(jitter)
        self._eps = 1e-9 * max(self.side, 1.0)
        self._eps_t = self._eps / max(self.speed, 1.0)
        self._zero_dwell = timetable.zero_dwell

        self._build_route_tables()
        self._build_vehicles(init)
        self._build_riders(init)

        B, n_total = self.batch_size, self.n
        # Assembled flat positions, refreshed in place each step: riders
        # first, vehicles after, per replica (the composite block order).
        self.flat_pos = np.empty((B * n_total, 2), dtype=np.float64)
        base = np.arange(B, dtype=np.intp)[:, None] * n_total
        self._rider_rows = (base + np.arange(self.R, dtype=np.intp)[None, :]).ravel()
        self._veh_rows = (base + self.R + np.arange(self.V, dtype=np.intp)[None, :]).ravel()
        self._veh_pos = self._vehicle_positions()
        self._sync_positions()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_route_tables(self) -> None:
        tt = self.timetable
        nR = tt.n_routes
        kmax = max(stops.shape[0] for stops in tt.routes)
        self._k_arr = np.array([stops.shape[0] for stops in tt.routes], dtype=np.intp)
        self._len_by_route = np.array(tt.lengths, dtype=np.float64)
        self._cum_pad = np.full((nR, kmax + 1), np.inf, dtype=np.float64)
        self._dwell_pad = np.zeros((nR, kmax), dtype=np.float64)
        self._stops_pad = np.zeros((nR, kmax, 2), dtype=np.float64)
        for r in range(nR):
            k = self._k_arr[r]
            self._cum_pad[r, : k + 1] = tt.cum[r]
            self._dwell_pad[r, :k] = tt.dwell[r]
            self._stops_pad[r, :k] = tt.routes[r]

    def _build_vehicles(self, init) -> None:
        tt = self.timetable
        nR, V, B = tt.n_routes, self.V, self.batch_size
        # Contiguous route blocks, route-major: route r gets V//nR vehicles
        # plus one of the V % nR leftovers.
        counts = np.full(nR, V // nR, dtype=np.intp)
        counts[: V % nR] += 1
        route_tmpl = np.repeat(np.arange(nR, dtype=np.intp), counts)
        arc_tmpl = np.empty(V, dtype=np.float64)
        spacing_tmpl = np.empty(V, dtype=np.float64)
        start = 0
        for r in range(nR):
            v_r = int(counts[r])
            if v_r == 0:
                continue
            length = tt.lengths[r]
            if tt.headway is None:
                # Even spacing along the loop — the historical ferry
                # placement, expression preserved for bit-exactness.
                arc_tmpl[start : start + v_r] = (np.arange(v_r) / v_r) * length
            else:
                arc_tmpl[start : start + v_r] = np.mod(
                    np.arange(v_r) * (tt.headway * self.speed), length
                )
            spacing_tmpl[start : start + v_r] = length / v_r
            start += v_r

        self.veh_route = np.tile(route_tmpl, B)
        arcs = np.tile(arc_tmpl, B)
        if self.jitter > 0:
            # Honor the model's rng: per-replica phase jitter, a uniform
            # offset of up to ``jitter`` vehicle spacings along the loop.
            lengths = self._len_by_route[route_tmpl]
            for b in range(B):
                u = self.rngs[b].uniform(size=V)
                arcs[b * V : (b + 1) * V] = np.mod(
                    arc_tmpl + u * self.jitter * spacing_tmpl, lengths
                )
        self.veh_arc = arcs
        # First stop strictly ahead of the starting arc (a vehicle starting
        # exactly on a stop departs it; no initial dwell).
        next_stop = np.empty(B * V, dtype=np.intp)
        for r in range(nR):
            members = np.nonzero(self.veh_route == r)[0]
            if members.size:
                k = int(self._k_arr[r])
                ahead = np.searchsorted(tt.cum[r][:k], arcs[members], side="right")
                next_stop[members] = np.where(ahead == k, 0, ahead)
        self.veh_next_stop = next_stop
        self.veh_at_stop = np.full(B * V, -1, dtype=np.intp)
        self.veh_dwell_left = np.zeros(B * V, dtype=np.float64)
        self.veh_load = np.zeros(B * V, dtype=np.intp)
        self.veh_budget = np.empty(B * V, dtype=np.float64)
        self._route_members = [
            np.nonzero(self.veh_route == r)[0] for r in range(nR)
        ]

    def _build_riders(self, init) -> None:
        R, B = self.R, self.batch_size
        if R == 0:
            self.r_pos = np.empty((0, 2), dtype=np.float64)
            self.r_dest = np.empty((0, 2), dtype=np.float64)
            self.r_target = np.empty((0, 2), dtype=np.float64)
            self.r_second = np.empty(0, dtype=bool)
            self.r_vehicle = np.empty(0, dtype=np.intp)
            self.r_dest_stop = np.empty(0, dtype=np.intp)
            self.r_budget = np.empty(0, dtype=np.float64)
            self._scratch = None
            return
        states = [_initial_state(R, self.side, init, rng) for rng in self.rngs]
        self.r_pos = np.concatenate([s.positions for s in states], axis=0)
        self.r_dest = np.concatenate([s.destinations for s in states], axis=0)
        self.r_target = np.concatenate([s.targets for s in states], axis=0)
        self.r_second = np.concatenate([s.on_second_leg for s in states], axis=0)
        self.r_vehicle = np.full(B * R, -1, dtype=np.intp)
        self.r_dest_stop = np.full(B * R, -1, dtype=np.intp)
        self.r_budget = np.empty(B * R, dtype=np.float64)
        self._scratch = DenseLegScratch(B * R)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def advance(self, dt: float, active=None) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if active is None:
            active = np.ones(self.batch_size, dtype=bool)
        if self.R:
            self._interact(active)
        self._advance_vehicles(dt, active)
        self._veh_pos = self._vehicle_positions()
        if self.R:
            self._advance_riders(dt, active)
        self._sync_positions()

    def _advance_vehicles(self, dt: float, active) -> None:
        budget = self.veh_budget
        if active.all():
            budget.fill(float(dt))
        else:
            np.multiply(np.repeat(active, self.V), float(dt), out=budget)
        if self._zero_dwell:
            # Fast path: no stop ever observed, so the whole update is the
            # historical ferry arc advance — bit-exact with the
            # pre-refactor ``mod(arc + v*dt, length)`` arithmetic.
            lengths = self._len_by_route[self.veh_route]
            moving = budget > 0
            if moving.all():
                self.veh_arc = np.mod(self.veh_arc + self.speed * budget, lengths)
            elif np.any(moving):
                self.veh_arc[moving] = np.mod(
                    self.veh_arc[moving] + self.speed * budget[moving],
                    lengths[moving],
                )
            return
        arc, dwell_left = self.veh_arc, self.veh_dwell_left
        next_stop, at_stop = self.veh_next_stop, self.veh_at_stop
        k_arr, cum_pad, dwell_pad = self._k_arr, self._cum_pad, self._dwell_pad
        eps, eps_t, speed = self._eps, self._eps_t, self.speed
        for _ in range(_MAX_LEGS_PER_STEP):
            # Phase 1: dwelling vehicles burn dwell before moving.
            countdown_pauses(dwell_left, budget, min_budget=eps_t)
            # Phase 2: vehicles with no dwell left walk toward the next stop.
            moving = (dwell_left <= 0) & (budget > eps_t)
            idx = np.nonzero(moving)[0]
            if idx.size == 0:
                break
            at_stop[idx] = -1  # departures (and mid-segment no-ops)
            rid = self.veh_route[idx]
            s = next_stop[idx]
            k = k_arr[rid]
            target_arc = cum_pad[rid, np.where(s == 0, k, s)]
            d = target_arc - arc[idx]
            can = speed * budget[idx]
            arrive = can >= d - eps
            na = idx[~arrive]
            if na.size:
                # Mid-segment: additive advance (the mod-free half of the
                # fast-path arithmetic), full budget spent.
                arc[na] = arc[na] + can[~arrive]
                budget[na] = 0.0
            ar = idx[arrive]
            if ar.size == 0:
                continue
            s_ar = s[arrive]
            arc[ar] = np.where(s_ar == 0, 0.0, target_arc[arrive])
            budget[ar] -= d[arrive] / speed
            at_stop[ar] = s_ar
            dwell_left[ar] = dwell_pad[rid[arrive], s_ar]
            nxt = s_ar + 1
            next_stop[ar] = np.where(nxt == k[arrive], 0, nxt)
        else:  # pragma: no cover - defensive
            raise RuntimeError("vehicle carry-over loop did not converge")

    def _interact(self, active) -> None:
        """Start-of-step boarding and alighting (one decision point per step)."""
        B, R, V = self.batch_size, self.R, self.V
        rider_active = np.repeat(active, R)
        veh_active = np.repeat(active, V)
        dwelling = (self.veh_dwell_left > 0) & veh_active

        # Alight: the rider's vehicle is dwelling at its destination stop.
        riding = (self.r_vehicle >= 0) & rider_active
        ridx = np.nonzero(riding)[0]
        alighted = np.empty(0, dtype=np.intp)
        if ridx.size:
            v = self.r_vehicle[ridx]
            here = dwelling[v] & (self.veh_at_stop[v] == self.r_dest_stop[ridx])
            alighted = ridx[here]
            if alighted.size:
                va = self.r_vehicle[alighted]
                self.r_pos[alighted] = self._stops_pad[
                    self.veh_route[va], self.veh_at_stop[va]
                ]
                np.add.at(self.veh_load, va, -1)
                self.r_vehicle[alighted] = -1
                self.r_dest_stop[alighted] = -1
                # Fresh background trip from the stop (per-replica draws,
                # ascending agent order — the scalar sequence).
                redraw_manhattan_trips(
                    self.r_pos, self.r_dest, self.r_target, self.r_second,
                    alighted, self.side, self.rngs, R,
                )

        # Board: walking riders within board_radius of a stop where a
        # vehicle is dwelling with spare capacity.  Deterministic:
        # ascending rider id, lowest-index eligible vehicle.
        dw_all = np.nonzero(dwelling)[0]
        if dw_all.size == 0:
            return
        capacity = self.timetable.capacity
        walking = (self.r_vehicle < 0) & rider_active
        walking[alighted] = False  # no instant re-board on the alight step
        if not np.any(walking):
            return
        r2 = self.board_radius * self.board_radius
        boarded, boarded_veh = [], []
        for b, lo, hi in replica_slices(dw_all, V, B):
            dw = dw_all[lo:hi]
            spare = (
                np.full(dw.size, np.iinfo(np.intp).max, dtype=np.intp)
                if capacity is None
                else capacity - self.veh_load[dw]
            )
            if not np.any(spare > 0):
                continue
            w = np.nonzero(walking[b * R : (b + 1) * R])[0] + b * R
            if w.size == 0:
                continue
            pts = self._stops_pad[self.veh_route[dw], self.veh_at_stop[dw]]
            diff = self.r_pos[w][:, None, :] - pts[None, :, :]
            eligible = (diff * diff).sum(axis=2) <= r2
            for i in np.nonzero(eligible.any(axis=1))[0]:
                cols = np.nonzero(eligible[i] & (spare > 0))[0]
                if cols.size:
                    c = cols[0]
                    spare[c] -= 1
                    boarded.append(w[i])
                    boarded_veh.append(dw[c])
        if not boarded:
            return
        br = np.asarray(boarded, dtype=np.intp)
        bv = np.asarray(boarded_veh, dtype=np.intp)
        stop = self.veh_at_stop[bv]
        high = self._k_arr[self.veh_route[bv]] - 1
        draws = np.empty(br.size, dtype=np.int64)
        for b, lo, hi in replica_slices(br, R, B):
            # Destination stop uniform among the route's *other* stops.
            draws[lo:hi] = self.rngs[b].integers(0, high[lo:hi])
        self.r_dest_stop[br] = draws + (draws >= stop)
        self.r_vehicle[br] = bv
        np.add.at(self.veh_load, bv, 1)
        self.r_pos[br] = self._stops_pad[self.veh_route[bv], stop]

    def _advance_riders(self, dt: float, active) -> None:
        R, B = self.R, self.batch_size
        total = B * R
        budget = self.r_budget
        walking = (self.r_vehicle < 0) & np.repeat(active, R)
        np.multiply(walking, self.speed * dt, out=budget)
        eps = self._eps
        for _ in range(_MAX_LEGS_PER_STEP):
            moving = budget > eps
            n_moving = int(np.count_nonzero(moving))
            if n_moving == 0:
                break
            if 2 * n_moving >= total:
                done = advance_legs_dense(
                    self.r_pos, self.r_target, budget, moving, n_moving, eps,
                    self._scratch,
                )
            else:
                idx = np.nonzero(moving)[0]
                done = advance_legs(self.r_pos, self.r_target, budget, idx, eps)
            if done.size == 0:
                break
            _corner_done, trip_done = split_completed_legs(
                done, self.r_second, self.r_target, self.r_dest
            )
            if trip_done.size:
                redraw_manhattan_trips(
                    self.r_pos, self.r_dest, self.r_target, self.r_second,
                    trip_done, self.side, self.rngs, R,
                )
        else:  # pragma: no cover - defensive
            raise RuntimeError("rider carry-over loop did not converge")
        # Riding riders travel with their vehicle.
        aboard = np.nonzero(self.r_vehicle >= 0)[0]
        if aboard.size:
            self.r_pos[aboard] = self._veh_pos[self.r_vehicle[aboard]]

    # ------------------------------------------------------------------
    # Position synthesis
    # ------------------------------------------------------------------
    def _vehicle_positions(self) -> np.ndarray:
        tt = self.timetable
        out = np.empty((self.batch_size * self.V, 2), dtype=np.float64)
        for r, members in enumerate(self._route_members):
            if members.size:
                out[members] = _route_positions_at_arc(
                    tt.routes[r], tt.seg_lengths[r], tt.cum[r], tt.lengths[r],
                    self.veh_arc[members],
                )
        return out

    def _sync_positions(self) -> None:
        if self.R:
            self.flat_pos[self._rider_rows] = self.r_pos
        self.flat_pos[self._veh_rows] = self._veh_pos


class TimetableMobility(MobilityModel):
    """Scalar schedule-driven transit mobility (vehicles + riders).

    Agents ``0 .. riders-1`` are riders — MRWP pedestrians that board a
    dwelling vehicle when close enough to its stop (capacity permitting)
    and ride to a uniformly drawn destination stop; agents ``riders .. n-1``
    are vehicles running the timetable's stop→dwell→leg cycles.

    Args:
        n: total agents (riders + vehicles; at least one vehicle).
        side, speed, rng: see :class:`~repro.mobility.base.MobilityModel`
            (riders and vehicles share the speed).
        timetable: an explicit :class:`Timetable`; mutually exclusive with
            ``routes``.
        routes: config-shaped way-point routes (see :class:`Timetable`);
            defaults to :func:`loop_timetable`'s rectangular loop.
        dwell, headway, capacity: :class:`Timetable` fields, used when
            ``timetable`` is omitted.
        riders: rider count (default 0 — vehicles only, the ferry case).
        board_radius: boarding distance to a dwelling vehicle's stop
            (default ``0.05 * side``).
        jitter: per-vehicle phase jitter drawn from ``rng`` — a uniform
            arc offset of up to ``jitter`` vehicle spacings (default 0,
            fully deterministic placement).
        init: rider-background initialization mode (MRWP vocabulary).
    """

    def __init__(
        self, n: int, side: float, speed: float, rng=None,
        timetable: Timetable = None, routes=None, dwell=0.0, headway: float = None,
        capacity: int = None, riders: int = 0, board_radius: float = None,
        jitter: float = 0.0, init="stationary",
    ):
        super().__init__(n, side, speed, rng)
        self.timetable = _resolve_timetable(side, timetable, routes, dwell, headway, capacity)
        self._engine = _TimetableEngine(
            self.timetable, self.n, self.side, self.speed,
            riders, board_radius, jitter, init, [self.rng],
        )

    @property
    def n_riders(self) -> int:
        return self._engine.R

    @property
    def n_vehicles(self) -> int:
        return self._engine.V

    @property
    def positions(self) -> np.ndarray:
        return self._engine.flat_pos.copy()

    @property
    def vehicle_positions(self) -> np.ndarray:
        """Copy of the vehicle block's positions, shape ``(V, 2)``."""
        return self._engine._veh_pos.copy()

    @property
    def riding_mask(self) -> np.ndarray:
        """Per-rider bool: currently aboard a vehicle."""
        return self._engine.r_vehicle >= 0

    @property
    def vehicle_loads(self) -> np.ndarray:
        """Copy of the per-vehicle rider counts."""
        return self._engine.veh_load.copy()

    @property
    def dwelling_mask(self) -> np.ndarray:
        """Per-vehicle bool: currently dwelling at a stop."""
        return self._engine.veh_dwell_left > 0

    def step(self, dt: float = 1.0) -> np.ndarray:
        self._engine.advance(dt)
        self.time += dt
        return self.positions


class BatchTimetableMobility(BatchMobilityModel):
    """Timetable mobility for ``B`` replicas, advanced in lock-step.

    Same flat engine as :class:`TimetableMobility` with ``B`` generators:
    vehicle cycles are deterministic and riders' draws (alight redraws,
    boarding destination stops, background MRWP trips) are grouped by
    replica in ascending order — the exact scalar draw sequence, so batch
    trials are seed-for-seed bit-identical to scalar trials (asserted by
    the parity tests).

    Args: as :class:`TimetableMobility`, with ``rngs`` in place of ``rng``.
    """

    def __init__(
        self, n: int, side: float, speed: float, rngs,
        timetable: Timetable = None, routes=None, dwell=0.0, headway: float = None,
        capacity: int = None, riders: int = 0, board_radius: float = None,
        jitter: float = 0.0, init="stationary",
    ):
        super().__init__(n, side, speed, rngs)
        self.timetable = _resolve_timetable(side, timetable, routes, dwell, headway, capacity)
        self._engine = _TimetableEngine(
            self.timetable, self.n, self.side, self.speed,
            riders, board_radius, jitter, init, self.rngs,
        )
        # The engine refreshes this buffer in place; the base accessors
        # (positions / positions_view) read it directly.
        self._pos = self._engine.flat_pos

    @property
    def n_riders(self) -> int:
        return self._engine.R

    @property
    def n_vehicles(self) -> int:
        return self._engine.V

    def step(self, dt: float = 1.0, active=None, copy: bool = True) -> np.ndarray:
        active = self._active_mask(active)
        self._engine.advance(dt, active)
        self.time += dt
        return self.positions if copy else self.positions_view
