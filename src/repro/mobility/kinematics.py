"""Vectorized leg-kinematics core shared by every way-point mobility model.

Every trip-based model in this package advances agents the same way: walk
toward the current leg target, detect arrivals with an overshoot tolerance,
carry the unspent budget over to the next leg, and redraw trips (and pause
timers, and speeds) when a journey completes.  Before this module each model
carried its own copy of that arithmetic — four near-identical carry-over
loops in ``mrwp.py`` / ``rwp.py`` / ``pause.py`` / ``speed_range.py`` plus
their batch twins.  This module is the single implementation both the
scalar and the batch models drive.

Design constraints, in priority order:

1. **Bit-exactness.**  The helpers reproduce the historical per-model
   arithmetic operation for operation (same gathers, same guarded
   divisions, same comparison thresholds), so refactored models keep their
   seed-for-seed trajectories and a batch model that shares these helpers
   with its scalar counterpart is bit-identical to it by construction.
2. **One layout, two drivers.**  All state is flat ``(total, 2)`` /
   ``(total,)`` arrays where ``total`` is ``n`` for a scalar model and
   ``B * n`` for a batch model; the same helper serves both.  Randomness
   never lives here: models pass explicit index sets and draw from their
   own generators, replica by replica, via :func:`replica_slices` — the
   mechanism that preserves the scalar draw order under batching.
3. **Budget conventions.**  :func:`advance_legs` supports the two
   historical conventions: a *distance* budget (``speed=None`` — MRWP's
   ``v * dt`` units) and a *time* budget with a scalar or per-agent speed
   (the pause / RWP / random-speed models).  The convention is part of a
   model's observable arithmetic, so it is preserved, not unified.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.paths import path_corner
from repro.kernels import get_kernel

__all__ = [
    "advance_legs",
    "DenseLegScratch",
    "advance_legs_dense",
    "split_completed_legs",
    "countdown_pauses",
    "replica_slices",
    "redraw_manhattan_trips",
    "redraw_destinations",
    "reflect_into_square",
]

_EMPTY = np.empty(0, dtype=np.intp)


def advance_legs(pos, target, budget, idx, eps, speed=None, metric="manhattan"):
    """One masked carry-over iteration: move agents ``idx`` toward ``target``.

    Mutates ``pos`` and ``budget`` in place and snaps arrived agents onto
    their targets.

    Args:
        pos: ``(total, 2)`` positions (mutated).
        target: ``(total, 2)`` current leg targets.
        budget: ``(total,)`` remaining budget (mutated) — *distance* when
            ``speed`` is None, *time* otherwise.
        idx: flat indices of the agents to advance (the model's moving
            mask; callers pass only agents with budget left).
        eps: distance tolerance for arrival detection and the zero-length
            guard (the model's ``1e-9 * max(side, 1)``).
        speed: None (distance budget), a scalar speed, or a ``(total,)``
            per-agent speed array (the random-speed model).
        metric: ``"manhattan"`` for axis-aligned legs, ``"euclidean"``
            for straight-line legs (classic RWP).

    Returns:
        flat indices of the agents that reached their leg target this
        iteration (already snapped onto it), in ascending order.
    """
    kernel = get_kernel("advance_legs")
    if kernel is not None:
        # Compiled tier: one fused loop with the identical IEEE operation
        # sequence (bit-exact); falls through on unsupported layouts.
        done = kernel(pos, target, budget, idx, eps, speed, metric)
        if done is not None:
            return done
    delta = target[idx] - pos[idx]
    if metric == "manhattan":
        dist = np.abs(delta).sum(axis=1)  # legs are axis-aligned
    else:
        dist = np.sqrt(np.sum(delta * delta, axis=1))
    b = budget[idx]
    if speed is None:
        move = np.minimum(b, dist)
    else:
        s = speed[idx] if isinstance(speed, np.ndarray) else speed
        move = np.minimum(b * s, dist)
    with np.errstate(invalid="ignore", divide="ignore"):
        frac = np.where(dist > eps, move / np.where(dist > eps, dist, 1.0), 1.0)
    pos[idx] += delta * frac[:, None]
    if speed is None:
        budget[idx] = b - move
    else:
        budget[idx] = b - move / s
    reached = move >= dist - eps
    if not np.any(reached):
        return _EMPTY
    done = idx[reached]
    pos[done] = target[done]
    return done


class DenseLegScratch:
    """Preallocated buffers for :func:`advance_legs_dense`.

    At ``B * n`` scale a step's temporaries are fresh mmap'd pages each
    time, and the page faults cost more than the arithmetic — so the dense
    pass reuses these buffers every iteration (one instance per model).
    """

    def __init__(self, total: int):
        self.delta = np.empty((total, 2), dtype=np.float64)
        self.dist = np.empty(total, dtype=np.float64)
        self.dist_safe = np.empty(total, dtype=np.float64)
        self.move = np.empty(total, dtype=np.float64)
        self.frac = np.empty(total, dtype=np.float64)
        self.scratch = np.empty(total, dtype=np.float64)
        self.far = np.empty(total, dtype=bool)
        self.notfar = np.empty(total, dtype=bool)


def advance_legs_dense(pos, target, budget, moving, n_moving, eps, scratch, speed=None):
    """Dense full-array variant of :func:`advance_legs` (Manhattan legs).

    Used when most agents are moving (typically the first carry-over
    iteration): full-array arithmetic into preallocated scratch avoids
    both the gather/scatter of the fancy-indexed pass and fresh
    temporaries.  Masked rows see exact no-ops (``frac`` and ``move``
    forced to 0), and every per-agent operation consumes the same operand
    values as the sparse pass, so the two are bit-interchangeable —
    models switch on density freely without touching results.

    Args:
        moving: ``(total,)`` bool mask of agents with budget left.
        n_moving: precomputed ``count_nonzero(moving)``.
        speed: None (distance budget), a scalar speed, or a ``(total,)``
            per-agent speed array (time budgets, as in
            :func:`advance_legs`).

    Returns:
        flat indices of agents that reached their leg target (snapped).
    """
    kernel = get_kernel("advance_legs_dense")
    if kernel is not None:
        # Compiled tier: fused dense pass, masked rows included (their
        # ``+= delta * 0.0`` no-op is part of the bit-exact contract).
        done = kernel(pos, target, budget, moving, n_moving, eps, speed)
        if done is not None:
            return done
    total = budget.shape[0]
    delta = np.subtract(target, pos, out=scratch.delta)
    dist = np.abs(delta[:, 0], out=scratch.dist)  # legs are axis-aligned
    dist += np.abs(delta[:, 1], out=scratch.scratch)
    if speed is None:
        move = np.minimum(budget, dist, out=scratch.move)
    else:
        can = np.multiply(budget, speed, out=scratch.scratch)
        move = np.minimum(can, dist, out=scratch.move)
    far = np.greater(dist, eps, out=scratch.far)
    notfar = np.logical_not(far, out=scratch.notfar)
    dist_safe = scratch.dist_safe
    np.copyto(dist_safe, dist)
    dist_safe[notfar] = 1.0
    frac = np.divide(move, dist_safe, out=scratch.frac)
    frac[notfar] = 1.0
    if speed is None:
        spent = move
    else:
        spent = np.divide(move, speed, out=scratch.scratch)
    if n_moving == total:
        # Everyone moves: the masking below would be an exact identity.
        delta *= frac[:, None]
        pos += delta
        budget -= spent
        done = np.nonzero(move >= dist - eps)[0]
    else:
        frac[~moving] = 0.0
        delta *= frac[:, None]
        pos += delta
        budget -= np.where(moving, spent, 0.0)
        done = np.nonzero(moving & (move >= dist - eps))[0]
    if done.size:
        pos[done] = target[done]
    return done


def split_completed_legs(done, on_second_leg, target, dest, turn_counts=None):
    """Split leg completions into corner turns and finished trips.

    Agents that finished their *first* leg are promoted onto the second:
    ``on_second_leg`` set, ``target`` re-aimed at the trip destination (and
    the turn counted, when a counter is given).  Finished trips are
    returned for the model to redraw — trip sampling is model-specific.

    Returns:
        ``(corner_done, trip_done)`` flat index arrays.
    """
    second = on_second_leg[done]
    corner_done = done[~second]
    if corner_done.size:
        on_second_leg[corner_done] = True
        target[corner_done] = dest[corner_done]
        if turn_counts is not None:
            turn_counts[corner_done] += 1
    return corner_done, done[second]


def countdown_pauses(pause_left, time_budget, min_budget=0.0):
    """Burn pause time before motion; returns the pauses that just ended.

    Agents with a running pause and budget above ``min_budget`` spend the
    smaller of the two (both arrays mutated in place).

    Args:
        min_budget: the budget threshold for participating — the pause
            model's time epsilon, or ``0.0`` for RWP's strict ``> 0``.

    Returns:
        flat indices whose pause reached zero this call (they start their
        next trip immediately; the caller draws it).
    """
    pausing = (pause_left > 0) & (time_budget > min_budget)
    if not np.any(pausing):
        return _EMPTY
    spend = np.minimum(pause_left[pausing], time_budget[pausing])
    pause_left[pausing] -= spend
    time_budget[pausing] -= spend
    return np.nonzero(pausing)[0][pause_left[pausing] <= 0]


def replica_slices(flat_idx, n, batch_size):
    """Group ascending flat indices by replica for per-replica RNG draws.

    ``flat_idx`` is ascending over the flat ``B * n`` layout, so slicing by
    replica preserves the scalar model's per-replica draw order (replica
    ``b``'s generator sees draws for its own agents only, agents ascending)
    — the reproducibility mechanism of every batch model.

    Yields:
        ``(b, lo, hi)`` with ``flat_idx[lo:hi]`` the indices of replica
        ``b`` (empty replicas are skipped).  A scalar model is the
        ``batch_size == 1`` special case.
    """
    if batch_size == 1:  # scalar models: no grouping arithmetic needed
        if flat_idx.size:
            yield 0, 0, flat_idx.size
        return
    replicas = flat_idx // n
    starts = np.searchsorted(replicas, np.arange(batch_size + 1))
    for b in range(batch_size):
        lo, hi = starts[b], starts[b + 1]
        if lo < hi:
            yield b, int(lo), int(hi)


def redraw_manhattan_trips(pos, dest, target, on_second_leg, idx, side, rngs, n):
    """Draw fresh Manhattan trips for agents ``idx``, replica by replica.

    Per replica (ascending, via :func:`replica_slices`): destination
    uniforms first, then the path coin flips — exactly the scalar models'
    ``rng.uniform`` + ``choose_corners`` sequence.  The corner arithmetic
    itself is batched across replicas afterwards.
    """
    dests = np.empty((idx.size, 2), dtype=np.float64)
    choices = np.empty(idx.size, dtype=np.int64)
    for b, lo, hi in replica_slices(idx, n, len(rngs)):
        rng = rngs[b]
        dests[lo:hi] = rng.uniform(0.0, side, size=(hi - lo, 2))
        choices[lo:hi] = rng.integers(0, 2, size=hi - lo)
    dest[idx] = dests
    target[idx] = path_corner(pos[idx], dests, choices)
    on_second_leg[idx] = False


def redraw_destinations(dest, idx, side, rngs, n):
    """Draw fresh straight-line destinations (classic RWP), per replica."""
    for b, lo, hi in replica_slices(idx, n, len(rngs)):
        dest[idx[lo:hi]] = rngs[b].uniform(0.0, side, size=(hi - lo, 2))


def reflect_into_square(pos, heading, side, max_folds=64):
    """Fold positions back into ``[0, side]^2``, flipping heading components.

    The billiard reflection of the random-direction model: a per-step
    displacement is at most ``speed``, and folding is iterated to handle
    speeds larger than the square side.  Rows already inside the square are
    untouched, so the batch models may safely pass frozen replicas through.
    """
    for axis in range(2):
        for _ in range(max_folds):
            below = pos[:, axis] < 0.0
            above = pos[:, axis] > side
            if not (np.any(below) or np.any(above)):
                break
            pos[below, axis] = -pos[below, axis]
            heading[below, axis] = -heading[below, axis]
            pos[above, axis] = 2.0 * side - pos[above, axis]
            heading[above, axis] = -heading[above, axis]
