"""Numpy-side glue shared by every compiled-kernel provider.

:func:`make_kernels` turns a namespace of loop cores (pure-Python,
numba-jitted, or C adapters — all with the :mod:`repro.kernels._cores`
signatures) into the public kernel table consumed by the dispatch sites.

Every public kernel is *total over a guarded domain*: it validates dtypes,
contiguity, and size caps up front and returns ``None`` (or a ``None``
sentinel tuple) when the inputs fall outside the domain it is exact on,
in which case the dispatch site silently runs the numpy path instead.
That keeps the compiled tier an optimization, never a semantics fork.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["make_kernels", "KERNEL_NAMES", "MAX_KERNEL_CELLS"]

#: Public kernel names, in bench/report order.
KERNEL_NAMES = (
    "batch_any_within",
    "batch_contacts",
    "advance_legs",
    "advance_legs_dense",
    "grid_splice",
    "occupancy_delta",
    "union_fixpoint",
    "zone_counts",
)

#: Same total-cell cap as the numpy cell-cover strategy: beyond it the
#: bucket grid no longer pays for itself and the glue falls back.
MAX_KERNEL_CELLS = 4_000_000

# Cell side = radius * (1 + margin).  The margin keeps the effective bin
# width >= radius even after the 1-ulp rounding of ``1.0 / cell``, so two
# points within ``radius`` always land in adjacent bins (the 3x3 scan is
# complete) while the distance predicate itself stays exact.
_CELL_MARGIN = 1e-9

_EMPTY_F = np.empty(0, dtype=np.float64)
_EMPTY_I = np.empty(0, dtype=np.intp)


def _is_c_f64(arr) -> bool:
    return arr.dtype == np.float64 and arr.flags.c_contiguous


def _is_c_i64(arr) -> bool:
    return arr.dtype == np.intp and arr.itemsize == 8 and arr.flags.c_contiguous


def _grid_geometry(positions, side, radius):
    """Common setup for the pair kernels; ``None`` when out of domain."""
    if positions.ndim != 3 or positions.shape[2] != 2 or not _is_c_f64(positions):
        return None
    if not (radius > 0.0) or not (side > 0.0):
        return None
    cell = float(radius) * (1.0 + _CELL_MARGIN)
    m = max(1, int(math.ceil(float(side) / cell)))
    batch, n = positions.shape[0], positions.shape[1]
    cells = batch * m * m
    if cells > MAX_KERNEL_CELLS:
        return None
    return positions.reshape(-1, 2), n, m, 1.0 / cell, cells


def _flat_indices(mask):
    return np.nonzero(mask.reshape(-1))[0].astype(np.int64, copy=False)


def _speed_mode(speed, total):
    """Classify ``speed`` into (mode, array, scalar); ``None`` = unsupported."""
    if speed is None:
        return 0, _EMPTY_F, 0.0
    if isinstance(speed, np.ndarray):
        if speed.shape != (total,) or not _is_c_f64(speed):
            return None
        return 2, speed, 0.0
    return 1, _EMPTY_F, float(speed)


def make_kernels(cores):
    """Build the public kernel table from a namespace of loop cores."""

    def batch_any_within(positions, source_mask, query_mask, radius, side):
        geo = _grid_geometry(positions, side, radius)
        if geo is None:
            return None
        pos, n, m, inv_cell, cells = geo
        batch = positions.shape[0]
        out = np.zeros(batch * n, dtype=np.bool_)
        src = _flat_indices(source_mask)
        qry = _flat_indices(query_mask)
        if src.size and qry.size:
            cellk = np.empty(src.size, dtype=np.int64)
            starts = np.zeros(cells + 2, dtype=np.int64)
            srcsort = np.empty(src.size, dtype=np.int64)
            cores.any_within_core(
                pos, n, m, inv_cell, float(radius) * float(radius),
                src, qry, cellk, starts, srcsort, out,
            )
        return out.reshape(batch, n)

    def batch_contacts(positions, source_mask, query_mask, radius, side):
        geo = _grid_geometry(positions, side, radius)
        if geo is None:
            return None
        pos, n, m, inv_cell, cells = geo
        src = _flat_indices(source_mask)
        qry = _flat_indices(query_mask)
        if not src.size or not qry.size:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty.copy(), empty.copy()
        cellk = np.empty(src.size, dtype=np.int64)
        starts = np.zeros(cells + 2, dtype=np.int64)
        srcsort = np.empty(src.size, dtype=np.int64)
        r2 = float(radius) * float(radius)
        cap = max(64, 4 * max(src.size, qry.size))
        out_s = np.empty(cap, dtype=np.int64)
        out_q = np.empty(cap, dtype=np.int64)
        total = cores.contacts_core(
            pos, n, m, inv_cell, r2, src, qry, cellk, starts, srcsort, out_s, out_q, cap,
        )
        if total > cap:
            out_s = np.empty(total, dtype=np.int64)
            out_q = np.empty(total, dtype=np.int64)
            starts[:] = 0
            total = cores.contacts_core(
                pos, n, m, inv_cell, r2, src, qry, cellk, starts, srcsort,
                out_s, out_q, total,
            )
        s_flat = out_s[:total].astype(np.intp, copy=False)
        q_flat = out_q[:total].astype(np.intp, copy=False)
        return s_flat // n, s_flat % n, q_flat % n

    def advance_legs(pos, target, budget, idx, eps, speed=None, metric="manhattan"):
        total = budget.shape[0]
        if not (_is_c_f64(pos) and _is_c_f64(target) and _is_c_f64(budget)):
            return None
        if pos.shape != (total, 2) or target.shape != (total, 2):
            return None
        if not _is_c_i64(idx):
            return None
        mode = _speed_mode(speed, total)
        if mode is None:
            return None
        speed_mode, speed_arr, speed_scalar = mode
        done = np.empty(idx.shape[0], dtype=np.intp)
        cnt = cores.advance_legs_core(
            pos, target, budget, idx.view(np.int64), float(eps),
            speed_arr, speed_scalar, speed_mode,
            0 if metric == "manhattan" else 1,
            done.view(np.int64),
        )
        return done[: int(cnt)]

    def advance_legs_dense(pos, target, budget, moving, n_moving, eps, speed=None):
        total = budget.shape[0]
        if not (_is_c_f64(pos) and _is_c_f64(target) and _is_c_f64(budget)):
            return None
        if pos.shape != (total, 2) or target.shape != (total, 2):
            return None
        if moving.dtype != np.bool_ or not moving.flags.c_contiguous:
            return None
        mode = _speed_mode(speed, total)
        if mode is None:
            return None
        speed_mode, speed_arr, speed_scalar = mode
        done = np.empty(total, dtype=np.intp)
        cnt = cores.advance_legs_dense_core(
            pos, target, budget, moving, bool(n_moving == total), float(eps),
            speed_arr, speed_scalar, speed_mode, done.view(np.int64),
        )
        return done[: int(cnt)]

    def grid_splice(order, sorted_ids, removed, new_ids, new_pts):
        if not (_is_c_i64(order) and _is_c_i64(sorted_ids)):
            return None
        if not (_is_c_i64(new_ids) and _is_c_i64(new_pts)):
            return None
        if removed.dtype != np.bool_ or not removed.flags.c_contiguous:
            return None
        size = order.shape[0] - removed.sum() + new_ids.shape[0]
        out_order = np.empty(size, dtype=np.intp)
        out_ids = np.empty(size, dtype=np.intp)
        cores.splice_core(
            order.view(np.int64), sorted_ids.view(np.int64), removed,
            new_ids.view(np.int64), new_pts.view(np.int64),
            out_order.view(np.int64), out_ids.view(np.int64),
        )
        return out_order, out_ids

    def occupancy_delta(counts_flat, old_cells, new_cells):
        if counts_flat.dtype != np.int64 or not counts_flat.flags.c_contiguous:
            return None
        old64 = np.ascontiguousarray(old_cells, dtype=np.int64)
        new64 = np.ascontiguousarray(new_cells, dtype=np.int64)
        if old64.shape != new64.shape or old64.ndim != 1:
            return None
        cores.occupancy_delta_core(counts_flat, old64, new64)
        return True

    def union_fixpoint(parent, u, v):
        if not _is_c_i64(parent):
            return None
        u64 = np.ascontiguousarray(u, dtype=np.int64)
        v64 = np.ascontiguousarray(v, dtype=np.int64)
        if u64.shape != v64.shape or u64.ndim != 1:
            return None
        cores.union_core(parent.view(np.int64), u64, v64)
        return True

    def zone_counts(positions, informed, ell, m, cz_mask):
        if positions.ndim != 3 or positions.shape[2] != 2 or not _is_c_f64(positions):
            return None
        k, n = positions.shape[0], positions.shape[1]
        if informed.shape != (k, n) or informed.dtype != np.bool_:
            return None
        if not informed.flags.c_contiguous:
            return None
        m = int(m)
        if cz_mask.shape != (m, m) or cz_mask.dtype != np.bool_:
            return None
        if not cz_mask.flags.c_contiguous or not (ell > 0.0):
            return None
        cz_total = np.zeros(k, dtype=np.intp)
        cz_informed = np.zeros(k, dtype=np.intp)
        cores.zone_counts_core(
            positions.reshape(-1, 2), n, float(ell), m,
            cz_mask.reshape(-1), informed.reshape(-1),
            cz_total.view(np.int64), cz_informed.view(np.int64),
        )
        return cz_total, cz_informed

    return {
        "batch_any_within": batch_any_within,
        "batch_contacts": batch_contacts,
        "advance_legs": advance_legs,
        "advance_legs_dense": advance_legs_dense,
        "grid_splice": grid_splice,
        "occupancy_delta": occupancy_delta,
        "union_fixpoint": union_fixpoint,
        "zone_counts": zone_counts,
    }
