"""C provider for the compiled kernel tier.

Mirrors :mod:`repro.kernels._cores` statement for statement in C99 and
builds a shared object on first use with the system compiler (``cc``),
cached under a source-hash directory so rebuilds only happen when the
source changes.  Compiled **without** ``-ffast-math``: the float kernels
must execute the same IEEE operation sequence as the numpy reference
(libm ``sqrt`` is correctly rounded, ``(int64_t)`` casts truncate like
``int()``), so results stay bit-identical.

The adapters exported through :func:`load_cores` take the same array
arguments as the Python cores, which lets :mod:`repro.kernels._glue`
drive either provider unchanged.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from types import SimpleNamespace

import numpy as np

__all__ = ["load_cores", "build_error"]

C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

static void grid_build(const double *restrict pos, int64_t n, int64_t m, double inv_cell,
                       const int64_t *restrict src, int64_t S,
                       int64_t *restrict cellk, int64_t *restrict starts, int64_t n_starts,
                       int64_t *restrict srcsort)
{
    int64_t mm = m * m;
    for (int64_t k = 0; k < S; k++) {
        int64_t i = src[k];
        int64_t b = i / n;
        int64_t ci = (int64_t)(pos[2 * i] * inv_cell);
        if (ci < 0) ci = 0; else if (ci >= m) ci = m - 1;
        int64_t cj = (int64_t)(pos[2 * i + 1] * inv_cell);
        if (cj < 0) cj = 0; else if (cj >= m) cj = m - 1;
        int64_t c = b * mm + ci * m + cj;
        cellk[k] = c;
        starts[c + 2] += 1;
    }
    for (int64_t c = 1; c < n_starts; c++)
        starts[c] += starts[c - 1];
    for (int64_t k = 0; k < S; k++) {
        int64_t c = cellk[k];
        srcsort[starts[c + 1]] = src[k];
        starts[c + 1] += 1;
    }
}

void repro_any_within(const double *restrict pos, int64_t n, int64_t m, double inv_cell,
                      double r2, const int64_t *restrict src, int64_t S,
                      const int64_t *restrict qry, int64_t Q,
                      int64_t *restrict cellk, int64_t *restrict starts, int64_t n_starts,
                      int64_t *restrict srcsort, uint8_t *restrict out)
{
    grid_build(pos, n, m, inv_cell, src, S, cellk, starts, n_starts, srcsort);
    int64_t mm = m * m;
    for (int64_t k = 0; k < Q; k++) {
        int64_t i = qry[k];
        int64_t b = i / n;
        double qx = pos[2 * i];
        double qy = pos[2 * i + 1];
        int64_t ci = (int64_t)(qx * inv_cell);
        if (ci < 0) ci = 0; else if (ci >= m) ci = m - 1;
        int64_t cj = (int64_t)(qy * inv_cell);
        if (cj < 0) cj = 0; else if (cj >= m) cj = m - 1;
        int hit = 0;
        int64_t base = b * mm;
        for (int64_t ii = ci - 1; ii <= ci + 1 && !hit; ii++) {
            if (ii < 0 || ii >= m) continue;
            for (int64_t jj = cj - 1; jj <= cj + 1 && !hit; jj++) {
                if (jj < 0 || jj >= m) continue;
                int64_t c = base + ii * m + jj;
                for (int64_t t = starts[c]; t < starts[c + 1]; t++) {
                    int64_t j = srcsort[t];
                    double dx = qx - pos[2 * j];
                    double dy = qy - pos[2 * j + 1];
                    if (dx * dx + dy * dy <= r2) { hit = 1; break; }
                }
            }
        }
        if (hit) out[i] = 1;
    }
}

int64_t repro_contacts(const double *restrict pos, int64_t n, int64_t m, double inv_cell,
                       double r2, const int64_t *restrict src, int64_t S,
                       const int64_t *restrict qry, int64_t Q,
                       int64_t *restrict cellk, int64_t *restrict starts, int64_t n_starts,
                       int64_t *restrict srcsort, int64_t *restrict out_s, int64_t *restrict out_q,
                       int64_t cap)
{
    grid_build(pos, n, m, inv_cell, src, S, cellk, starts, n_starts, srcsort);
    int64_t mm = m * m;
    int64_t total = 0;
    for (int64_t k = 0; k < Q; k++) {
        int64_t i = qry[k];
        int64_t b = i / n;
        double qx = pos[2 * i];
        double qy = pos[2 * i + 1];
        int64_t ci = (int64_t)(qx * inv_cell);
        if (ci < 0) ci = 0; else if (ci >= m) ci = m - 1;
        int64_t cj = (int64_t)(qy * inv_cell);
        if (cj < 0) cj = 0; else if (cj >= m) cj = m - 1;
        int64_t base = b * mm;
        for (int64_t ii = ci - 1; ii <= ci + 1; ii++) {
            if (ii < 0 || ii >= m) continue;
            for (int64_t jj = cj - 1; jj <= cj + 1; jj++) {
                if (jj < 0 || jj >= m) continue;
                int64_t c = base + ii * m + jj;
                for (int64_t t = starts[c]; t < starts[c + 1]; t++) {
                    int64_t j = srcsort[t];
                    double dx = qx - pos[2 * j];
                    double dy = qy - pos[2 * j + 1];
                    if (dx * dx + dy * dy <= r2) {
                        if (total < cap) { out_s[total] = j; out_q[total] = i; }
                        total++;
                    }
                }
            }
        }
    }
    return total;
}

int64_t repro_advance_legs(double *restrict pos, const double *restrict target, double *restrict budget,
                           const int64_t *restrict idx, int64_t K, double eps,
                           const double *restrict speed_arr, double speed_scalar,
                           int speed_mode, int metric, int64_t *restrict done)
{
    int64_t cnt = 0;
    for (int64_t k = 0; k < K; k++) {
        int64_t i = idx[k];
        double d0 = target[2 * i] - pos[2 * i];
        double d1 = target[2 * i + 1] - pos[2 * i + 1];
        double dist = (metric == 0) ? (fabs(d0) + fabs(d1))
                                    : sqrt(d0 * d0 + d1 * d1);
        double b = budget[i];
        double move, s = 1.0;
        if (speed_mode == 0) {
            move = (b < dist) ? b : dist;
        } else {
            s = (speed_mode == 1) ? speed_scalar : speed_arr[i];
            double can = b * s;
            move = (can < dist) ? can : dist;
        }
        double frac = (dist > eps) ? (move / dist) : 1.0;
        pos[2 * i] += d0 * frac;
        pos[2 * i + 1] += d1 * frac;
        budget[i] = (speed_mode == 0) ? (b - move) : (b - move / s);
        if (move >= dist - eps) { done[cnt] = i; cnt++; }
    }
    for (int64_t k = 0; k < cnt; k++) {
        int64_t i = done[k];
        pos[2 * i] = target[2 * i];
        pos[2 * i + 1] = target[2 * i + 1];
    }
    return cnt;
}

int64_t repro_advance_legs_dense(double *restrict pos, const double *restrict target,
                                 double *restrict budget, const uint8_t *restrict moving,
                                 int64_t total, int all_moving, double eps,
                                 const double *restrict speed_arr, double speed_scalar,
                                 int speed_mode, int64_t *restrict done)
{
    int64_t cnt = 0;
    for (int64_t i = 0; i < total; i++) {
        double d0 = target[2 * i] - pos[2 * i];
        double d1 = target[2 * i + 1] - pos[2 * i + 1];
        double dist = fabs(d0) + fabs(d1);
        double b = budget[i];
        double move, s = 1.0;
        if (speed_mode == 0) {
            move = (b < dist) ? b : dist;
        } else {
            s = (speed_mode == 1) ? speed_scalar : speed_arr[i];
            double can = b * s;
            move = (can < dist) ? can : dist;
        }
        double frac = (dist > eps) ? (move / dist) : 1.0;
        double spent = (speed_mode == 0) ? move : (move / s);
        int is_moving = all_moving || moving[i];
        if (!is_moving) { frac = 0.0; spent = 0.0; }
        pos[2 * i] += d0 * frac;
        pos[2 * i + 1] += d1 * frac;
        budget[i] = b - spent;
        if (is_moving && move >= dist - eps) { done[cnt] = i; cnt++; }
    }
    for (int64_t k = 0; k < cnt; k++) {
        int64_t i = done[k];
        pos[2 * i] = target[2 * i];
        pos[2 * i + 1] = target[2 * i + 1];
    }
    return cnt;
}

void repro_splice(const int64_t *restrict order, const int64_t *restrict sorted_ids,
                  const uint8_t *restrict removed, int64_t N,
                  const int64_t *restrict new_ids, const int64_t *restrict new_pts, int64_t nn,
                  int64_t *restrict out_order, int64_t *restrict out_ids)
{
    int64_t k = 0, j = 0;
    for (int64_t t = 0; t < N; t++) {
        if (removed[t]) continue;
        int64_t idv = sorted_ids[t];
        while (j < nn && new_ids[j] <= idv) {
            out_ids[k] = new_ids[j];
            out_order[k] = new_pts[j];
            k++; j++;
        }
        out_ids[k] = idv;
        out_order[k] = order[t];
        k++;
    }
    while (j < nn) {
        out_ids[k] = new_ids[j];
        out_order[k] = new_pts[j];
        k++; j++;
    }
}

void repro_union(int64_t *restrict parent, int64_t N, const int64_t *restrict u,
                 const int64_t *restrict v, int64_t E)
{
    for (int64_t k = 0; k < E; k++) {
        int64_t x = u[k];
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        int64_t y = v[k];
        while (parent[y] != y) {
            parent[y] = parent[parent[y]];
            y = parent[y];
        }
        if (x == y) continue;
        if (x < y) parent[y] = x; else parent[x] = y;
    }
    for (int64_t i = 0; i < N; i++)
        parent[i] = parent[parent[i]];
}

void repro_occupancy_delta(int64_t *restrict counts, const int64_t *restrict old_cells,
                           const int64_t *restrict new_cells, int64_t K)
{
    for (int64_t k = 0; k < K; k++) {
        counts[old_cells[k]] -= 1;
        counts[new_cells[k]] += 1;
    }
}

void repro_zone_counts(const double *restrict pos, int64_t total, int64_t n, double ell,
                       int64_t m, const uint8_t *restrict cz_mask,
                       const uint8_t *restrict informed, int64_t *restrict cz_total,
                       int64_t *restrict cz_informed)
{
    for (int64_t t = 0; t < total; t++) {
        int64_t b = t / n;
        int64_t ix = (int64_t)(pos[2 * t] / ell);
        if (ix < 0) ix = 0; else if (ix >= m) ix = m - 1;
        int64_t iy = (int64_t)(pos[2 * t + 1] / ell);
        if (iy < 0) iy = 0; else if (iy >= m) iy = m - 1;
        if (cz_mask[ix * m + iy]) {
            cz_total[b] += 1;
            if (informed[t]) cz_informed[b] += 1;
        }
    }
}
"""

_BUILD_ERROR: str | None = None
_BUILD_COUNT = 0


def build_error() -> str | None:
    """Why the last build attempt failed (``None`` if it succeeded / never ran)."""
    return _BUILD_ERROR


def build_count() -> int:
    """How many times this process actually invoked the compiler."""
    return _BUILD_COUNT


def _cache_dir(digest: str) -> str:
    root = os.environ.get("REPRO_CEXT_CACHE")
    if not root:
        root = os.path.join(tempfile.gettempdir(), "repro-cext")
    return os.path.join(root, digest)


def _build_library() -> str:
    """Compile (or reuse) the shared object; returns its path."""
    global _BUILD_COUNT
    digest = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:16]
    directory = _cache_dir(digest)
    lib_path = os.path.join(directory, "libreprokernels.so")
    if os.path.exists(lib_path):
        return lib_path
    _BUILD_COUNT += 1
    os.makedirs(directory, exist_ok=True)
    src_path = os.path.join(directory, "kernels.c")
    with open(src_path, "w") as fh:
        fh.write(C_SOURCE)
    tmp_path = lib_path + f".tmp{os.getpid()}"
    cmd = ["cc", "-O3", "-fPIC", "-shared", "-o", tmp_path, src_path, "-lm"]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        raise RuntimeError(f"cc failed: {proc.stderr.strip()[:500]}")
    os.replace(tmp_path, lib_path)  # atomic: concurrent builders race safely
    return lib_path


_f64_p = ctypes.POINTER(ctypes.c_double)
_i64_p = ctypes.POINTER(ctypes.c_int64)
_u8_p = ctypes.POINTER(ctypes.c_uint8)
_i64 = ctypes.c_int64
_f64 = ctypes.c_double
_int = ctypes.c_int


def _fp(arr):
    return arr.ctypes.data_as(_f64_p)


def _ip(arr):
    return arr.ctypes.data_as(_i64_p)


def _bp(arr):
    return arr.ctypes.data_as(_u8_p)


def _declare(lib):
    lib.repro_any_within.restype = None
    lib.repro_any_within.argtypes = [
        _f64_p, _i64, _i64, _f64, _f64, _i64_p, _i64, _i64_p, _i64,
        _i64_p, _i64_p, _i64, _i64_p, _u8_p,
    ]
    lib.repro_contacts.restype = _i64
    lib.repro_contacts.argtypes = [
        _f64_p, _i64, _i64, _f64, _f64, _i64_p, _i64, _i64_p, _i64,
        _i64_p, _i64_p, _i64, _i64_p, _i64_p, _i64_p, _i64,
    ]
    lib.repro_advance_legs.restype = _i64
    lib.repro_advance_legs.argtypes = [
        _f64_p, _f64_p, _f64_p, _i64_p, _i64, _f64, _f64_p, _f64, _int, _int, _i64_p,
    ]
    lib.repro_advance_legs_dense.restype = _i64
    lib.repro_advance_legs_dense.argtypes = [
        _f64_p, _f64_p, _f64_p, _u8_p, _i64, _int, _f64, _f64_p, _f64, _int, _i64_p,
    ]
    lib.repro_splice.restype = None
    lib.repro_splice.argtypes = [
        _i64_p, _i64_p, _u8_p, _i64, _i64_p, _i64_p, _i64, _i64_p, _i64_p,
    ]
    lib.repro_union.restype = None
    lib.repro_union.argtypes = [_i64_p, _i64, _i64_p, _i64_p, _i64]
    lib.repro_occupancy_delta.restype = None
    lib.repro_occupancy_delta.argtypes = [_i64_p, _i64_p, _i64_p, _i64]
    lib.repro_zone_counts.restype = None
    lib.repro_zone_counts.argtypes = [
        _f64_p, _i64, _i64, _f64, _i64, _u8_p, _u8_p, _i64_p, _i64_p,
    ]


def load_cores():
    """Build + load the library; returns a ``_cores``-shaped namespace.

    Raises on any failure (no compiler, build error, missing symbol); the
    registry treats that as "provider unavailable" and caches the reason.
    """
    global _BUILD_ERROR
    try:
        lib = ctypes.CDLL(_build_library())
        _declare(lib)
    except Exception as exc:  # noqa: BLE001 - any failure disables the provider
        _BUILD_ERROR = str(exc)
        raise

    def any_within_core(pos, n, m, inv_cell, r2, src, qry, cellk, starts, srcsort, out):
        lib.repro_any_within(
            _fp(pos), _i64(n), _i64(m), _f64(inv_cell), _f64(r2),
            _ip(src), _i64(src.shape[0]), _ip(qry), _i64(qry.shape[0]),
            _ip(cellk), _ip(starts), _i64(starts.shape[0]), _ip(srcsort), _bp(out),
        )

    def contacts_core(pos, n, m, inv_cell, r2, src, qry, cellk, starts, srcsort, out_s, out_q, cap):
        return lib.repro_contacts(
            _fp(pos), _i64(n), _i64(m), _f64(inv_cell), _f64(r2),
            _ip(src), _i64(src.shape[0]), _ip(qry), _i64(qry.shape[0]),
            _ip(cellk), _ip(starts), _i64(starts.shape[0]), _ip(srcsort),
            _ip(out_s), _ip(out_q), _i64(cap),
        )

    def advance_legs_core(pos, target, budget, idx, eps, speed_arr, speed_scalar, speed_mode, metric, done):
        return lib.repro_advance_legs(
            _fp(pos), _fp(target), _fp(budget), _ip(idx), _i64(idx.shape[0]),
            _f64(eps), _fp(speed_arr), _f64(speed_scalar), _int(speed_mode),
            _int(metric), _ip(done),
        )

    def advance_legs_dense_core(pos, target, budget, moving, all_moving, eps, speed_arr, speed_scalar, speed_mode, done):
        return lib.repro_advance_legs_dense(
            _fp(pos), _fp(target), _fp(budget), _bp(moving),
            _i64(budget.shape[0]), _int(1 if all_moving else 0), _f64(eps),
            _fp(speed_arr), _f64(speed_scalar), _int(speed_mode), _ip(done),
        )

    def splice_core(order, sorted_ids, removed, new_ids, new_pts, out_order, out_ids):
        lib.repro_splice(
            _ip(order), _ip(sorted_ids), _bp(removed), _i64(order.shape[0]),
            _ip(new_ids), _ip(new_pts), _i64(new_ids.shape[0]),
            _ip(out_order), _ip(out_ids),
        )

    def union_core(parent, u, v):
        lib.repro_union(_ip(parent), _i64(parent.shape[0]), _ip(u), _ip(v), _i64(u.shape[0]))

    def occupancy_delta_core(counts, old_cells, new_cells):
        lib.repro_occupancy_delta(_ip(counts), _ip(old_cells), _ip(new_cells), _i64(old_cells.shape[0]))

    def zone_counts_core(pos, n, ell, m, cz_mask, informed, cz_total, cz_informed):
        lib.repro_zone_counts(
            _fp(pos), _i64(pos.shape[0]), _i64(n), _f64(ell), _i64(m),
            _bp(cz_mask), _bp(informed), _ip(cz_total), _ip(cz_informed),
        )

    _BUILD_ERROR = None
    return SimpleNamespace(
        any_within_core=any_within_core,
        contacts_core=contacts_core,
        advance_legs_core=advance_legs_core,
        advance_legs_dense_core=advance_legs_dense_core,
        splice_core=splice_core,
        union_core=union_core,
        occupancy_delta_core=occupancy_delta_core,
        zone_counts_core=zone_counts_core,
    )
