"""Loop-level kernel cores: the executable spec of the compiled tier.

Each function here is written in the restricted style that both compiled
providers consume directly:

* the **numba provider** (:mod:`repro.kernels._numba`) applies ``@njit``
  to these exact functions — nopython mode, no fastmath, so the float
  arithmetic is the same IEEE operation sequence as the interpreted body;
* the **C provider** (:mod:`repro.kernels._cext`) mirrors them statement
  for statement in C (same operation order, correctly-rounded ``sqrt`` /
  truncating casts), exposed through adapters with these signatures.

They are also runnable as plain Python, which is how the parity tests pin
the semantics against the numpy reference paths without requiring either
provider to be installed.

Exactness contracts (enforced by ``tests/test_kernels.py``):

* ``any_within_core`` / ``contacts_core`` — boolean OR / enumeration of
  the exact inclusive predicate ``(qx-sx)^2 + (qy-sy)^2 <= radius^2``
  over a bucket grid with cell side ``>= radius``; bit-identical to the
  grid/brute engines for any enumeration order.
* ``advance_legs_core`` / ``advance_legs_dense_core`` — the identical
  IEEE operation sequence as :func:`repro.mobility.kinematics.advance_legs`
  (same gathers, same guarded division, same ``move >= dist - eps``
  threshold, masked rows of the dense pass included), so positions and
  budgets are bit-identical.
* ``splice_core`` — reproduces ``np.insert(..., searchsorted(...,
  side='left'))`` exactly: inserted points land *before* equal-bucket
  survivors, in stable sorted order.
* ``union_core`` — union by minimum root + a final ascending compression
  pass; the result is the fully-compressed min-rooted parent array, the
  same canonical fixpoint the vectorized min-hooking loop converges to.
* ``occupancy_delta_core`` — integer +/-1 scatter, trivially exact.
* ``zone_counts_core`` — the exact cell classification of
  ``CellGrid.cell_indices`` (``p / ell``, truncating cast, clip to
  ``[0, m-1]``) followed by integer per-replica counts; the fractions the
  caller derives from them are bit-identical to the numpy reduction.
"""

from __future__ import annotations

import math

__all__ = [
    "any_within_core",
    "contacts_core",
    "advance_legs_core",
    "advance_legs_dense_core",
    "splice_core",
    "union_core",
    "occupancy_delta_core",
    "zone_counts_core",
]


def any_within_core(pos, n, m, inv_cell, r2, src, qry, cellk, starts, srcsort, out):
    """Exact per-replica ``any_within`` over a fused source grid.

    The grid build is a counting sort of ``src`` (flat ``B*n`` indices)
    into per-replica cells: ``starts`` has length ``cells + 2`` (zeroed by
    the caller) and after the build cell ``c``'s slice of ``srcsort`` is
    ``starts[c] : starts[c+1]``.  The build is inlined (here and in
    ``contacts_core``) so each core is a self-contained jit unit.

    ``out`` is the flat ``(B*n,)`` bool result (zeroed by the caller);
    entries outside ``qry`` are never written.
    """
    mm = m * m
    for k in range(src.shape[0]):
        i = src[k]
        b = i // n
        ci = int(pos[i, 0] * inv_cell)
        if ci < 0:
            ci = 0
        elif ci >= m:
            ci = m - 1
        cj = int(pos[i, 1] * inv_cell)
        if cj < 0:
            cj = 0
        elif cj >= m:
            cj = m - 1
        c = b * mm + ci * m + cj
        cellk[k] = c
        starts[c + 2] += 1
    for c in range(1, starts.shape[0]):
        starts[c] += starts[c - 1]
    for k in range(src.shape[0]):
        c = cellk[k]
        srcsort[starts[c + 1]] = src[k]
        starts[c + 1] += 1
    for k in range(qry.shape[0]):
        i = qry[k]
        b = i // n
        qx = pos[i, 0]
        qy = pos[i, 1]
        ci = int(qx * inv_cell)
        if ci < 0:
            ci = 0
        elif ci >= m:
            ci = m - 1
        cj = int(qy * inv_cell)
        if cj < 0:
            cj = 0
        elif cj >= m:
            cj = m - 1
        hit = False
        base = b * mm
        for ii in range(ci - 1, ci + 2):
            if ii < 0 or ii >= m:
                continue
            for jj in range(cj - 1, cj + 2):
                if jj < 0 or jj >= m:
                    continue
                c = base + ii * m + jj
                for t in range(starts[c], starts[c + 1]):
                    j = srcsort[t]
                    dx = qx - pos[j, 0]
                    dy = qy - pos[j, 1]
                    if dx * dx + dy * dy <= r2:
                        hit = True
                        break
                if hit:
                    break
            if hit:
                break
        if hit:
            out[i] = True


def contacts_core(pos, n, m, inv_cell, r2, src, qry, cellk, starts, srcsort, out_s, out_q, cap):
    """Enumerate exact (source, query) contacts; returns the total count.

    Fills ``out_s`` / ``out_q`` (flat ``B*n`` indices) up to ``cap`` and
    keeps counting past it, so a too-small capacity is detected by the
    caller (``total > cap``) and the pass re-run with an exact allocation.
    Emission order is query-major then grid-scan order — callers treat the
    order as unspecified, like every other contacts backend.
    """
    mm = m * m
    for k in range(src.shape[0]):
        i = src[k]
        b = i // n
        ci = int(pos[i, 0] * inv_cell)
        if ci < 0:
            ci = 0
        elif ci >= m:
            ci = m - 1
        cj = int(pos[i, 1] * inv_cell)
        if cj < 0:
            cj = 0
        elif cj >= m:
            cj = m - 1
        c = b * mm + ci * m + cj
        cellk[k] = c
        starts[c + 2] += 1
    for c in range(1, starts.shape[0]):
        starts[c] += starts[c - 1]
    for k in range(src.shape[0]):
        c = cellk[k]
        srcsort[starts[c + 1]] = src[k]
        starts[c + 1] += 1
    total = 0
    for k in range(qry.shape[0]):
        i = qry[k]
        b = i // n
        qx = pos[i, 0]
        qy = pos[i, 1]
        ci = int(qx * inv_cell)
        if ci < 0:
            ci = 0
        elif ci >= m:
            ci = m - 1
        cj = int(qy * inv_cell)
        if cj < 0:
            cj = 0
        elif cj >= m:
            cj = m - 1
        base = b * mm
        for ii in range(ci - 1, ci + 2):
            if ii < 0 or ii >= m:
                continue
            for jj in range(cj - 1, cj + 2):
                if jj < 0 or jj >= m:
                    continue
                c = base + ii * m + jj
                for t in range(starts[c], starts[c + 1]):
                    j = srcsort[t]
                    dx = qx - pos[j, 0]
                    dy = qy - pos[j, 1]
                    if dx * dx + dy * dy <= r2:
                        if total < cap:
                            out_s[total] = j
                            out_q[total] = i
                        total += 1
    return total


def advance_legs_core(pos, target, budget, idx, eps, speed_arr, speed_scalar, speed_mode, metric, done):
    """Masked carry-over iteration; mirrors ``kinematics.advance_legs``.

    ``speed_mode``: 0 = distance budget, 1 = scalar speed, 2 = per-agent
    speed array.  ``metric``: 0 = manhattan, 1 = euclidean.  Fills ``done``
    with the reached indices (in ``idx`` order) and returns their count;
    reached agents are snapped onto their targets.
    """
    cnt = 0
    for k in range(idx.shape[0]):
        i = idx[k]
        d0 = target[i, 0] - pos[i, 0]
        d1 = target[i, 1] - pos[i, 1]
        if metric == 0:
            dist = abs(d0) + abs(d1)
        else:
            dist = math.sqrt(d0 * d0 + d1 * d1)
        b = budget[i]
        if speed_mode == 0:
            move = b if b < dist else dist
        else:
            if speed_mode == 1:
                s = speed_scalar
            else:
                s = speed_arr[i]
            can = b * s
            move = can if can < dist else dist
        if dist > eps:
            frac = move / dist
        else:
            frac = 1.0
        pos[i, 0] += d0 * frac
        pos[i, 1] += d1 * frac
        if speed_mode == 0:
            budget[i] = b - move
        else:
            budget[i] = b - move / s
        if move >= dist - eps:
            done[cnt] = i
            cnt += 1
    for k in range(cnt):
        i = done[k]
        pos[i, 0] = target[i, 0]
        pos[i, 1] = target[i, 1]
    return cnt


def advance_legs_dense_core(pos, target, budget, moving, all_moving, eps, speed_arr, speed_scalar, speed_mode, done):
    """Dense full-array pass; mirrors ``kinematics.advance_legs_dense``.

    Masked rows run the same arithmetic with ``frac`` and the budget spend
    forced to 0 — including the ``pos += delta * 0.0`` no-op, which the
    numpy pass also performs (it can flip a ``-0.0`` position to ``+0.0``,
    so skipping it would not be bit-exact).
    """
    total = budget.shape[0]
    cnt = 0
    for i in range(total):
        d0 = target[i, 0] - pos[i, 0]
        d1 = target[i, 1] - pos[i, 1]
        dist = abs(d0) + abs(d1)
        b = budget[i]
        if speed_mode == 0:
            move = b if b < dist else dist
        else:
            if speed_mode == 1:
                s = speed_scalar
            else:
                s = speed_arr[i]
            can = b * s
            move = can if can < dist else dist
        if dist > eps:
            frac = move / dist
        else:
            frac = 1.0
        if speed_mode == 0:
            spent = move
        else:
            spent = move / s
        is_moving = all_moving or moving[i]
        if not is_moving:
            frac = 0.0
            spent = 0.0
        pos[i, 0] += d0 * frac
        pos[i, 1] += d1 * frac
        budget[i] = b - spent
        if is_moving and move >= dist - eps:
            done[cnt] = i
            cnt += 1
    for k in range(cnt):
        i = done[k]
        pos[i, 0] = target[i, 0]
        pos[i, 1] = target[i, 1]
    return cnt


def splice_core(order, sorted_ids, removed, new_ids, new_pts, out_order, out_ids):
    """Single-pass merge of surviving layout + bucket-sorted moved points.

    ``removed`` marks positions of the old layout to drop; ``new_ids`` /
    ``new_pts`` are the moved points stably sorted by new bucket.  Inserted
    points land before equal-bucket survivors (``<=``), matching
    ``np.insert`` at ``searchsorted(..., side='left')`` positions.
    """
    nn = new_ids.shape[0]
    k = 0
    j = 0
    for t in range(order.shape[0]):
        if removed[t]:
            continue
        idv = sorted_ids[t]
        while j < nn and new_ids[j] <= idv:
            out_ids[k] = new_ids[j]
            out_order[k] = new_pts[j]
            k += 1
            j += 1
        out_ids[k] = idv
        out_order[k] = order[t]
        k += 1
    while j < nn:
        out_ids[k] = new_ids[j]
        out_order[k] = new_pts[j]
        k += 1
        j += 1


def union_core(parent, u, v):
    """Union endpoint pairs; restore the fully-compressed min-rooted invariant.

    Classic union-find with path halving and union-by-minimum, followed by
    one ascending compression pass — valid because hooking larger roots
    onto smaller keeps ``parent[i] <= i``, so ``parent[parent[i]]`` is
    already a root when row ``i`` is reached.  The final array is the
    canonical min-vertex labeling, identical to the vectorized
    min-hooking + pointer-doubling fixpoint.
    """
    for k in range(u.shape[0]):
        x = u[k]
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        y = v[k]
        while parent[y] != y:
            parent[y] = parent[parent[y]]
            y = parent[y]
        if x == y:
            continue
        if x < y:
            parent[y] = x
        else:
            parent[x] = y
    for i in range(parent.shape[0]):
        parent[i] = parent[parent[i]]


def occupancy_delta_core(counts, old_cells, new_cells):
    """+/-1 repair of flat occupancy counts at the cells agents left/entered."""
    for k in range(old_cells.shape[0]):
        counts[old_cells[k]] -= 1
        counts[new_cells[k]] += 1


def zone_counts_core(pos, n, ell, m, cz_mask, informed, cz_total, cz_informed):
    """Per-replica Central-Zone membership and informed counts.

    ``pos`` is the flat ``(k*n, 2)`` position block, ``informed`` the flat
    bool mask, ``cz_mask`` the flat ``(m*m,)`` CZ cell mask.  The cell of a
    point is ``int(p / ell)`` clipped to ``[0, m-1]`` — the same division,
    truncating cast, and clip as ``CellGrid.cell_indices``.  ``cz_total``
    and ``cz_informed`` are ``(k,)`` accumulators (zeroed by the caller).
    """
    for t in range(pos.shape[0]):
        b = t // n
        ix = int(pos[t, 0] / ell)
        if ix < 0:
            ix = 0
        elif ix >= m:
            ix = m - 1
        iy = int(pos[t, 1] / ell)
        if iy < 0:
            iy = 0
        elif iy >= m:
            iy = m - 1
        if cz_mask[ix * m + iy]:
            cz_total[b] += 1
            if informed[t]:
                cz_informed[b] += 1
