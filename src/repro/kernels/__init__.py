"""Compiled kernel tier: registry, probes, and dispatch.

The library has three kernel tiers, selected per run through the
``kernels`` config knob (threaded from config/CLI down to the dispatch
sites in geometry, mobility, and network):

``"numpy"``
    The vectorized reference paths — always available, bit-exact default.
``"compiled"``
    Loop kernels from the first available *provider*: ``numba`` (``@njit``
    of :mod:`repro.kernels._cores`, preferred when importable) or ``cext``
    (the bundled C mirror built on demand with the system compiler).
    Requesting this tier with no provider available raises.
``"auto"``
    ``"compiled"`` when a provider exists, else ``"numpy"``.

Dispatch is *pull-based*: hot paths call :func:`get_kernel` and fall back
to their numpy bodies when it returns ``None`` (tier inactive, provider
missing, or inputs outside the kernel's guarded domain).  The active tier
is process-global but scoped: the default is ``"numpy"`` so direct library
calls keep exercising the reference paths, and the runners activate the
configured tier around a simulation via :func:`use_kernel_tier`.

Probes are cached per process, with escape hatches for tests and CI:
``REPRO_NO_NUMBA=1`` blocks the numba provider, ``REPRO_NO_CEXT=1`` the C
provider (together they force the numpy tier everywhere).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from ._glue import KERNEL_NAMES, make_kernels

__all__ = [
    "KERNEL_NAMES",
    "KERNEL_TIERS",
    "numba_available",
    "cext_available",
    "kernel_backend",
    "available_kernel_backends",
    "resolve_kernel_tier",
    "kernel_tier_label",
    "use_kernel_tier",
    "active_kernel_tier",
    "get_kernel",
    "provider_kernels",
    "reference_kernels",
    "warm_kernels",
    "compile_events",
]

#: Valid values of the ``kernels`` config knob.
KERNEL_TIERS = ("auto", "compiled", "numpy")

_NUMBA_OK: bool | None = None
_CEXT_CORES = None
_CEXT_OK: bool | None = None
_TABLES: dict = {}

_ACTIVE_TIER = "numpy"
_ACTIVE_KERNELS: dict | None = None


def numba_available() -> bool:
    """Cached probe for the numba provider (``REPRO_NO_NUMBA=1`` blocks it)."""
    global _NUMBA_OK
    if _NUMBA_OK is None:
        if os.environ.get("REPRO_NO_NUMBA") == "1":
            _NUMBA_OK = False
        else:
            try:
                from . import _numba

                # Force one real compile so a broken numba install is
                # detected here (jit decoration alone defers all errors).
                cores = _numba.load_cores()
                counts = np.zeros(1, dtype=np.int64)
                cell = np.zeros(1, dtype=np.int64)
                cores.occupancy_delta_core(counts, cell, cell)
            except Exception:
                _NUMBA_OK = False
            else:
                _NUMBA_OK = True
    return _NUMBA_OK


def cext_available() -> bool:
    """Cached probe for the C provider (``REPRO_NO_CEXT=1`` blocks it).

    The first probe builds the shared object with the system compiler
    (cached on disk by source hash), so it is deliberately lazy: numpy-tier
    runs never trigger a build.
    """
    global _CEXT_OK, _CEXT_CORES
    if _CEXT_OK is None:
        if os.environ.get("REPRO_NO_CEXT") == "1":
            _CEXT_OK = False
        else:
            try:
                from . import _cext

                _CEXT_CORES = _cext.load_cores()
            except Exception:
                _CEXT_OK = False
            else:
                _CEXT_OK = True
    return _CEXT_OK


def kernel_backend() -> str | None:
    """The compiled provider the ``"compiled"`` tier would use, or ``None``."""
    if numba_available():
        return "numba"
    if cext_available():
        return "cext"
    return None


def available_kernel_backends() -> list:
    """All usable kernel backends, best first; ``"numpy"`` is always last."""
    names = []
    if numba_available():
        names.append("numba")
    if cext_available():
        names.append("cext")
    names.append("numpy")
    return names


def resolve_kernel_tier(tier: str) -> str:
    """Resolve a config-level tier to the effective one.

    ``"auto"`` degrades to ``"numpy"`` when no provider is available;
    ``"compiled"`` is an explicit demand and raises instead.
    """
    if tier not in KERNEL_TIERS:
        raise ValueError(f"unknown kernel tier {tier!r}; expected one of {KERNEL_TIERS}")
    if tier == "numpy":
        return "numpy"
    backend = kernel_backend()
    if backend is None:
        if tier == "compiled":
            raise RuntimeError(
                "kernels='compiled' requested but no compiled provider is available "
                "(numba not importable and the C extension did not build)"
            )
        return "numpy"
    return "compiled"


def kernel_tier_label(tier: str = "auto") -> str:
    """Human/JSON label of the resolved tier: ``numpy``, ``numba-<ver>``, ``cext``."""
    if resolve_kernel_tier(tier) == "numpy":
        return "numpy"
    backend = kernel_backend()
    if backend == "numba":
        from . import _numba

        return f"numba-{_numba.numba_version()}"
    return "cext"


def _provider_table(backend: str) -> dict:
    if backend not in _TABLES:
        if backend == "numba":
            from . import _numba

            _TABLES[backend] = make_kernels(_numba.load_cores())
        elif backend == "cext":
            cext_available()
            if _CEXT_CORES is None:
                raise RuntimeError("cext kernel provider unavailable")
            _TABLES[backend] = make_kernels(_CEXT_CORES)
        else:
            raise ValueError(f"unknown kernel backend {backend!r}")
    return _TABLES[backend]


def provider_kernels(backend: str | None = None) -> dict:
    """Kernel table of ``backend`` (default: the best available provider)."""
    if backend is None:
        backend = kernel_backend()
        if backend is None:
            raise RuntimeError("no compiled kernel provider available")
    return _provider_table(backend)


def reference_kernels() -> dict:
    """Pure-Python kernel table (the spec, interpreted — for tests only)."""
    from . import _cores

    return make_kernels(_cores)


@contextmanager
def use_kernel_tier(tier: str):
    """Activate a kernel tier for the dynamic extent of the ``with`` block.

    Yields the effective tier (``"numpy"`` or ``"compiled"``).  Re-entrant;
    restores the previous tier on exit.
    """
    resolved = resolve_kernel_tier(tier)
    global _ACTIVE_TIER, _ACTIVE_KERNELS
    prev = (_ACTIVE_TIER, _ACTIVE_KERNELS)
    if resolved == "compiled":
        _ACTIVE_TIER, _ACTIVE_KERNELS = "compiled", provider_kernels()
    else:
        _ACTIVE_TIER, _ACTIVE_KERNELS = "numpy", None
    try:
        yield _ACTIVE_TIER
    finally:
        _ACTIVE_TIER, _ACTIVE_KERNELS = prev


def active_kernel_tier() -> str:
    """The currently active tier (``"numpy"`` unless a runner activated one)."""
    return _ACTIVE_TIER


def get_kernel(name: str):
    """The active compiled kernel for ``name``, or ``None`` (= run numpy)."""
    table = _ACTIVE_KERNELS
    if table is None:
        return None
    return table[name]


def warm_kernels(backend: str | None = None) -> str:
    """Exercise every compiled kernel once on tiny inputs.

    Covers each kernel's single runtime type signature (all speed modes and
    metrics of the leg kernels), so with numba no compilation can happen
    after this returns.  Returns the tier label that was warmed (``"numpy"``
    when no provider is available — nothing to warm).
    """
    if backend is None and kernel_backend() is None:
        return "numpy"
    table = provider_kernels(backend)
    pos3 = np.array([[[0.1, 0.2], [0.6, 0.7]]] * 2, dtype=np.float64)
    src_mask = np.array([[True, False], [True, True]])
    qry_mask = np.array([[False, True], [True, False]])
    table["batch_any_within"](pos3, src_mask, qry_mask, 0.5, 1.0)
    table["batch_contacts"](pos3, src_mask, qry_mask, 0.5, 1.0)
    target = np.array([[1.0, 1.0], [0.0, 0.5], [0.3, 0.3]], dtype=np.float64)
    idx = np.arange(3, dtype=np.intp)
    moving = np.array([True, False, True])
    speeds = (None, 1.5, np.array([1.0, 2.0, 0.5], dtype=np.float64))
    for speed in speeds:
        for metric in ("manhattan", "euclidean"):
            table["advance_legs"](
                np.zeros((3, 2)), target, np.full(3, 0.25), idx, 1e-9, speed, metric
            )
        for n_moving in (2, 3):
            table["advance_legs_dense"](
                np.zeros((3, 2)), target, np.full(3, 0.25), moving, n_moving, 1e-9, speed
            )
    order = np.array([2, 0, 1], dtype=np.intp)
    sorted_ids = np.array([0, 1, 3], dtype=np.intp)
    removed = np.array([False, True, False])
    table["grid_splice"](
        order, sorted_ids, removed,
        np.array([2], dtype=np.intp), np.array([0], dtype=np.intp),
    )
    counts = np.zeros(4, dtype=np.int64)
    table["occupancy_delta"](counts, np.array([1]), np.array([2]))
    parent = np.arange(4, dtype=np.intp)
    table["union_fixpoint"](parent, np.array([3]), np.array([1]))
    table["zone_counts"](
        pos3, src_mask, 0.5, 2, np.array([[True, False], [False, True]])
    )
    warmed = backend if backend is not None else kernel_backend()
    if warmed == "numba":
        from . import _numba

        return f"numba-{_numba.numba_version()}"
    return warmed or "numpy"


def compile_events() -> int:
    """Monotone counter of compilation work done by this process.

    Counts C builds plus, when the numba provider is loaded, the total
    number of jitted signatures — so a delta of zero across a timed region
    proves warm-path-only measurement.
    """
    total = 0
    try:
        from . import _cext

        total += _cext.build_count()
    except Exception:
        pass
    if _NUMBA_OK:
        from . import _numba

        total += sum(len(d.signatures) for d in _numba.dispatchers().values())
    return total


def _reset_probe_cache_for_tests() -> None:
    """Forget cached probe results (tests toggle the env escape hatches)."""
    global _NUMBA_OK, _CEXT_OK, _CEXT_CORES
    _NUMBA_OK = None
    _CEXT_OK = None
    _CEXT_CORES = None
    _TABLES.clear()
