"""Numba provider: ``@njit`` the shared loop cores.

Jit options are deliberately strict — nopython (implicit with ``njit``),
``fastmath=False`` (the default) so the float kernels keep the exact IEEE
operation sequence of the interpreted cores, and ``cache=True`` so CI can
warm the JIT cache once and reuse it across processes.  Every core in
:mod:`repro.kernels._cores` is a self-contained module-level function, so
this is the plainest possible jit application.

Importing this module raises if numba is unavailable; the registry
handles the ``REPRO_NO_NUMBA=1`` escape hatch *before* importing us and
treats any import/jit failure as "provider unavailable".
"""

from __future__ import annotations

from types import SimpleNamespace

import numba

from . import _cores

__all__ = ["load_cores", "dispatchers", "numba_version"]

_CORE_NAMES = (
    "any_within_core",
    "contacts_core",
    "advance_legs_core",
    "advance_legs_dense_core",
    "splice_core",
    "union_core",
    "occupancy_delta_core",
    "zone_counts_core",
)

_DISPATCHERS = None


def _jit_all():
    global _DISPATCHERS
    if _DISPATCHERS is None:
        jit = numba.njit(cache=True, nogil=True)
        _DISPATCHERS = {name: jit(getattr(_cores, name)) for name in _CORE_NAMES}
    return _DISPATCHERS


def load_cores():
    """Jit the cores; returns a ``_cores``-shaped namespace."""
    return SimpleNamespace(**_jit_all())


def dispatchers():
    """The live numba dispatchers (for compile-event accounting)."""
    return dict(_jit_all())


def numba_version() -> str:
    return numba.__version__
