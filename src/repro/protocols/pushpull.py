"""Push-pull gossip.

The other classic randomized-broadcast primitive: per step every agent —
informed or not — contacts one uniform neighbor within range; the message
crosses the contact in *either* direction (informed pushes, uninformed
pulls).  Pull makes the endgame exponentially faster than pure push in
well-mixed graphs; over the Manhattan Suburb both directions still have to
wait for Lemma-16 meetings, so the gap narrows — one more lens on the
paper's geometry in the baselines experiment.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import BroadcastProtocol

__all__ = ["PushPullGossip"]


class PushPullGossip(BroadcastProtocol):
    """Push-pull gossip: every agent contacts one random in-range neighbor."""

    name = "push-pull"

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        pairs = self.engine.pairs_within(positions, self.radius)
        if pairs.size == 0:
            return np.empty(0, dtype=np.intp)
        # Each agent picks one uniform neighbor: rank directed contacts by a
        # random key per initiator, keep rank 0.
        src = np.concatenate([pairs[:, 0], pairs[:, 1]])
        dst = np.concatenate([pairs[:, 1], pairs[:, 0]])
        key = self.rng.uniform(size=src.size)
        order = np.lexsort((key, src))
        src = src[order]
        dst = dst[order]
        first = np.searchsorted(src, src, side="left") == np.arange(src.size)
        chosen_src = src[first]
        chosen_dst = dst[first]
        # The message crosses each chosen contact in either direction.
        informed_src = self.informed[chosen_src]
        informed_dst = self.informed[chosen_dst]
        push_targets = chosen_dst[informed_src & ~informed_dst]
        pull_targets = chosen_src[~informed_src & informed_dst]
        newly = np.unique(np.concatenate([push_targets, pull_targets]))
        return self._mark_informed(newly)
