"""Push-pull gossip.

The other classic randomized-broadcast primitive: per step every agent —
informed or not — contacts one uniform neighbor within range; the message
crosses the contact in *either* direction (informed pushes, uninformed
pulls).  Pull makes the endgame exponentially faster than pure push in
well-mixed graphs; over the Manhattan Suburb both directions still have to
wait for Lemma-16 meetings, so the gap narrows — one more lens on the
paper's geometry in the baselines experiment.

Like gossip, both implementations sample by neighbor index against the
informed/uninformed cut: an agent's uniform contact crosses the cut iff
its picked index falls below the agent's cut-degree, so only the
cut-incident agents draw (one uniform each) and only the cut contacts are
materialized — ``O(cut)`` per step.  Draw order is canonical (initiators
ascending, cut-neighbors ascending), so scalar trajectories are
backend-independent and the batched state replays them seed-for-seed.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import (
    BatchBroadcastState,
    BroadcastProtocol,
    group_segments,
)

__all__ = ["PushPullGossip", "BatchPushPullState"]


class PushPullGossip(BroadcastProtocol):
    """Push-pull gossip: every agent contacts one random in-range neighbor."""

    name = "push-pull"

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        uninformed_idx = np.nonzero(~self.informed)[0]
        if uninformed_idx.size == 0:
            return np.empty(0, dtype=np.intp)
        informed_idx = np.nonzero(self.informed)[0]
        snapshot = self.engine.bind(positions, self.radius)
        s_cut, t_cut = snapshot.contacts_within(informed_idx, uninformed_idx)
        if s_cut.size == 0:
            return np.empty(0, dtype=np.intp)
        # Both endpoints of every cut contact initiate; agents without a
        # cut-neighbor cannot move the message, so their picks are skipped.
        init = np.concatenate([s_cut, t_cut])
        neighbor = np.concatenate([t_cut, s_cut])
        order = np.argsort(init * self.n + neighbor)
        init = init[order]
        neighbor = neighbor[order]
        initiators, cut_degree, offsets = group_segments(init)
        degree = snapshot.count_within(self._all_idx, initiators) - 1
        r = self.rng.uniform(size=initiators.size)
        pick = np.floor(r * degree).astype(np.intp)
        np.minimum(pick, np.maximum(degree - 1, 0), out=pick)
        cross = pick < cut_degree
        partner = neighbor[offsets[cross] + pick[cross]]
        who = initiators[cross]
        who_informed = self.informed[who]
        # Informed initiators push to their picked uninformed neighbor;
        # uninformed initiators pull and inform themselves.
        newly = np.unique(np.concatenate([partner[who_informed], who[~who_informed]]))
        return self._mark_informed(newly)


class BatchPushPullState(BatchBroadcastState):
    """``B`` independent push-pull runs in lock-step.

    One batched cut materialization and one batched degree count serve
    every replica; the uniform draws stay per replica — one
    ``uniform(S_b)`` call per replica per step over its cut-incident
    initiators, the scalar draw exactly.
    """

    name = "push-pull"
    uses_rng = True

    def _exchange(self, snapshot, active: np.ndarray) -> np.ndarray:
        newly = np.zeros((self.batch_size, self.n), dtype=bool)
        source_mask = self.informed & active[:, None]
        query_mask = ~self.informed & active[:, None]
        rep, s_cut, t_cut = snapshot.contacts_within(source_mask, query_mask, self.radius)
        if rep.size == 0:
            return newly
        rep2 = np.concatenate([rep, rep])
        init = np.concatenate([s_cut, t_cut])
        neighbor = np.concatenate([t_cut, s_cut])
        init_gid = rep2 * self.n + init
        order = np.argsort(init_gid * self.n + neighbor)
        rep2 = rep2[order]
        neighbor = neighbor[order]
        init_gid = init_gid[order]
        gids, cut_degree, offsets = group_segments(init_gid)
        init_rep = gids // self.n
        init_agent = gids % self.n
        init_mask = np.zeros((self.batch_size, self.n), dtype=bool)
        init_mask[init_rep, init_agent] = True
        counts = snapshot.count_within(
            np.broadcast_to(active[:, None], init_mask.shape), init_mask, self.radius
        )
        degree = counts[init_rep, init_agent] - 1
        r = self._draw_uniform_blocks(init_rep, 1)[0]
        pick = np.floor(r * degree).astype(np.intp)
        np.minimum(pick, np.maximum(degree - 1, 0), out=pick)
        cross = pick < cut_degree
        pos_sel = offsets[cross] + pick[cross]
        partner_agent = neighbor[pos_sel]
        partner_rep = rep2[pos_sel]
        who_rep = init_rep[cross]
        who_agent = init_agent[cross]
        who_informed = self.informed[who_rep, who_agent]
        newly[partner_rep[who_informed], partner_agent[who_informed]] = True
        newly[who_rep[~who_informed], who_agent[~who_informed]] = True
        return self._mark_informed(newly)
