"""Flooding under crash faults.

Robustness probe (an extension beyond the paper): at every step each agent
independently crashes with probability ``crash_prob``; crashed agents stop
transmitting and receiving forever but keep moving (a dead radio on a live
vehicle).  Completion means informing every *surviving* agent.  The paper's
mechanism predicts graceful degradation: the Central Zone has massive path
redundancy, while the Suburb depends on individual Lemma-16 emissaries, so
crashes should hurt the corner tail first — measurable with the zone
recorders.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import BatchBroadcastState, BroadcastProtocol

__all__ = ["CrashFaultFlooding", "BatchCrashFaultState"]


class CrashFaultFlooding(BroadcastProtocol):
    """Flooding where agents crash-stop independently each step."""

    name = "crash-flooding"

    def __init__(self, *args, crash_prob: float = 0.001, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= crash_prob <= 1.0:
            raise ValueError(f"crash_prob must be in [0, 1], got {crash_prob}")
        self.crash_prob = float(crash_prob)
        self.crashed = np.zeros(self.n, dtype=bool)

    @property
    def alive(self) -> np.ndarray:
        """Mask of non-crashed agents."""
        return ~self.crashed

    def is_complete(self) -> bool:
        """Every surviving agent informed (crashed agents are out of scope)."""
        return bool(np.all(self.informed[self.alive]))

    def can_progress(self) -> bool:
        if self.is_complete():
            return False
        # Progress requires at least one live transmitter.
        return bool(np.any(self.informed & self.alive))

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        transmitters = self.informed & self.alive
        newly = np.empty(0, dtype=np.intp)
        if np.any(transmitters):
            receivers = np.nonzero(~self.informed & self.alive)[0]
            if receivers.size:
                hits = self.engine.any_within(
                    positions[transmitters], positions[receivers], self.radius
                )
                newly = self._mark_informed(receivers[hits])
        # Crashes strike after the exchange.
        strikes = self.rng.uniform(size=self.n) < self.crash_prob
        self.crashed |= strikes
        return newly

    def final_metrics(self, positions: np.ndarray, zones=None) -> dict:
        out = super().final_metrics(positions, zones)
        out["crashed"] = int(np.count_nonzero(self.crashed))
        missing = self.alive & ~self.informed
        out["uninformed_survivors"] = int(np.count_nonzero(missing))
        if zones is not None:
            suburb = zones.in_suburb(positions)
            out["uninformed_survivors_suburb"] = int(np.count_nonzero(missing & suburb))
            out["uninformed_survivors_cz"] = int(np.count_nonzero(missing & ~suburb))
        return out


class BatchCrashFaultState(BatchBroadcastState):
    """``B`` independent crash-fault flooding runs in lock-step.

    The exchange restricts both sides of the batched infection test to
    live agents; the crash strikes stay per replica — one ``uniform(n)``
    call per active replica per step, after the exchange, matching the
    scalar draw.  Completion means informing every *surviving* agent, so
    :meth:`complete_mask` is overridden accordingly.
    """

    name = "crash-flooding"
    uses_rng = True

    def __init__(self, *args, crash_prob: float = 0.001, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= crash_prob <= 1.0:
            raise ValueError(f"crash_prob must be in [0, 1], got {crash_prob}")
        self.crash_prob = float(crash_prob)
        self.crashed = np.zeros((self.batch_size, self.n), dtype=bool)

    @property
    def alive(self) -> np.ndarray:
        """``(B, n)`` mask of non-crashed agents."""
        return ~self.crashed

    def complete_mask(self) -> np.ndarray:
        """Every surviving agent informed (crashed agents are out of scope)."""
        return np.all(self.informed | self.crashed, axis=1)

    def can_progress_mask(self) -> np.ndarray:
        return ~self.complete_mask() & np.any(self.informed & self.alive, axis=1)

    def _exchange(self, snapshot, active: np.ndarray) -> np.ndarray:
        alive = self.alive
        source_mask = self.informed & alive & active[:, None]
        query_mask = ~self.informed & alive & active[:, None]
        if source_mask.any() and query_mask.any():
            newly = self._mark_informed(
                snapshot.any_within(source_mask, query_mask, self.radius)
            )
        else:
            newly = np.zeros((self.batch_size, self.n), dtype=bool)
        # Crashes strike after the exchange, per replica.
        for b in np.nonzero(active)[0]:
            strikes = self.rngs[b].uniform(size=self.n) < self.crash_prob
            self.crashed[b] |= strikes
        return newly

    def final_metrics(self, positions: np.ndarray, zones=None) -> list:
        out = super().final_metrics(positions, zones)
        missing = self.alive & ~self.informed
        suburb = None
        if zones is not None:
            flat = np.asarray(positions, dtype=np.float64).reshape(-1, 2)
            suburb = zones.in_suburb(flat).reshape(self.batch_size, self.n)
        for b in range(self.batch_size):
            out[b]["crashed"] = int(np.count_nonzero(self.crashed[b]))
            out[b]["uninformed_survivors"] = int(np.count_nonzero(missing[b]))
            if suburb is not None:
                out[b]["uninformed_survivors_suburb"] = int(
                    np.count_nonzero(missing[b] & suburb[b])
                )
                out[b]["uninformed_survivors_cz"] = int(
                    np.count_nonzero(missing[b] & ~suburb[b])
                )
        return out
