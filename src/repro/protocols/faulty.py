"""Flooding under crash faults.

Robustness probe (an extension beyond the paper): at every step each agent
independently crashes with probability ``crash_prob``; crashed agents stop
transmitting and receiving forever but keep moving (a dead radio on a live
vehicle).  Completion means informing every *surviving* agent.  The paper's
mechanism predicts graceful degradation: the Central Zone has massive path
redundancy, while the Suburb depends on individual Lemma-16 emissaries, so
crashes should hurt the corner tail first — measurable with the zone
recorders.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import BroadcastProtocol

__all__ = ["CrashFaultFlooding"]


class CrashFaultFlooding(BroadcastProtocol):
    """Flooding where agents crash-stop independently each step."""

    name = "crash-flooding"

    def __init__(self, *args, crash_prob: float = 0.001, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= crash_prob <= 1.0:
            raise ValueError(f"crash_prob must be in [0, 1], got {crash_prob}")
        self.crash_prob = float(crash_prob)
        self.crashed = np.zeros(self.n, dtype=bool)

    @property
    def alive(self) -> np.ndarray:
        """Mask of non-crashed agents."""
        return ~self.crashed

    def is_complete(self) -> bool:
        """Every surviving agent informed (crashed agents are out of scope)."""
        return bool(np.all(self.informed[self.alive]))

    def can_progress(self) -> bool:
        if self.is_complete():
            return False
        # Progress requires at least one live transmitter.
        return bool(np.any(self.informed & self.alive))

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        transmitters = self.informed & self.alive
        newly = np.empty(0, dtype=np.intp)
        if np.any(transmitters):
            receivers = np.nonzero(~self.informed & self.alive)[0]
            if receivers.size:
                hits = self.engine.any_within(
                    positions[transmitters], positions[receivers], self.radius
                )
                newly = self._mark_informed(receivers[hits])
        # Crashes strike after the exchange.
        strikes = self.rng.uniform(size=self.n) < self.crash_prob
        self.crashed |= strikes
        return newly
