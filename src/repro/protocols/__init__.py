"""Broadcast protocols: the paper's flooding plus baseline comparators."""

from repro.protocols.base import BroadcastProtocol
from repro.protocols.epidemic import SIREpidemic
from repro.protocols.faulty import CrashFaultFlooding
from repro.protocols.flooding import BatchFloodingState, FloodingProtocol
from repro.protocols.gossip import GossipProtocol
from repro.protocols.parsimonious import ParsimoniousFlooding
from repro.protocols.probabilistic import ProbabilisticFlooding
from repro.protocols.pushpull import PushPullGossip

PROTOCOL_REGISTRY = {
    "flooding": FloodingProtocol,
    "gossip": GossipProtocol,
    "push-pull": PushPullGossip,
    "parsimonious": ParsimoniousFlooding,
    "probabilistic": ProbabilisticFlooding,
    "sir": SIREpidemic,
    "crash-flooding": CrashFaultFlooding,
}
"""Name -> class mapping used by the CLI and the baselines experiment."""

__all__ = [
    "BroadcastProtocol",
    "FloodingProtocol",
    "BatchFloodingState",
    "GossipProtocol",
    "PushPullGossip",
    "ParsimoniousFlooding",
    "ProbabilisticFlooding",
    "SIREpidemic",
    "CrashFaultFlooding",
    "PROTOCOL_REGISTRY",
]
