"""Broadcast protocols: the paper's flooding plus baseline comparators.

Every protocol ships in two forms sharing one semantics: the scalar
:class:`BroadcastProtocol` (the reference, one run at a time) and a
:class:`BatchBroadcastState` subclass advancing ``B`` independent replicas
in lock-step with seed-for-seed parity (see
:mod:`repro.simulation.batch`).  The two registries below map protocol
names to the respective classes; they must stay key-identical so the batch
engine covers every protocol (asserted by the tests).
"""

from repro.protocols.base import (
    BatchBroadcastState,
    BroadcastProtocol,
    group_segments,
    sample_indices,
)
from repro.protocols.epidemic import BatchSIRState, SIREpidemic
from repro.protocols.faulty import BatchCrashFaultState, CrashFaultFlooding
from repro.protocols.flooding import BatchFloodingState, FloodingProtocol
from repro.protocols.gossip import BatchGossipState, GossipProtocol
from repro.protocols.parsimonious import BatchParsimoniousState, ParsimoniousFlooding
from repro.protocols.probabilistic import BatchProbabilisticState, ProbabilisticFlooding
from repro.protocols.pushpull import BatchPushPullState, PushPullGossip

PROTOCOL_REGISTRY = {
    "flooding": FloodingProtocol,
    "gossip": GossipProtocol,
    "push-pull": PushPullGossip,
    "parsimonious": ParsimoniousFlooding,
    "probabilistic": ProbabilisticFlooding,
    "sir": SIREpidemic,
    "crash-flooding": CrashFaultFlooding,
}
"""Name -> scalar class mapping used by the CLI and the baselines experiment."""

BATCH_PROTOCOL_REGISTRY = {
    "flooding": BatchFloodingState,
    "gossip": BatchGossipState,
    "push-pull": BatchPushPullState,
    "parsimonious": BatchParsimoniousState,
    "probabilistic": BatchProbabilisticState,
    "sir": BatchSIRState,
    "crash-flooding": BatchCrashFaultState,
}
"""Name -> batched state mapping; a protocol listed here runs under
``engine="batch"`` (and is what ``engine="auto"`` keys off)."""

__all__ = [
    "BroadcastProtocol",
    "BatchBroadcastState",
    "group_segments",
    "sample_indices",
    "FloodingProtocol",
    "BatchFloodingState",
    "GossipProtocol",
    "BatchGossipState",
    "PushPullGossip",
    "BatchPushPullState",
    "ParsimoniousFlooding",
    "BatchParsimoniousState",
    "ProbabilisticFlooding",
    "BatchProbabilisticState",
    "SIREpidemic",
    "BatchSIRState",
    "CrashFaultFlooding",
    "BatchCrashFaultState",
    "PROTOCOL_REGISTRY",
    "BATCH_PROTOCOL_REGISTRY",
]
