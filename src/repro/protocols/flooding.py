"""The flooding protocol (Section 4).

Every informed agent transmits at every time step; a non-informed agent
becomes informed at step ``t`` iff some informed agent is within distance
``R`` during ``t``.  Flooding time — the first step at which everyone is
informed — lower-bounds every broadcast protocol and plays the role of the
diameter in static networks.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import BroadcastProtocol

__all__ = ["FloodingProtocol"]


class FloodingProtocol(BroadcastProtocol):
    """Classic synchronous flooding.

    Args:
        multi_hop: paper semantics when False (one hop per step: agents
            informed during this step do not retransmit until the next).
            When True, the message saturates entire connected components of
            the current snapshot within the step ("infinite bandwidth"
            comparison mode).
    """

    name = "flooding"

    def __init__(self, *args, multi_hop: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.multi_hop = bool(multi_hop)

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        newly_all = []
        while True:
            uninformed = np.nonzero(~self.informed)[0]
            if uninformed.size == 0:
                break
            hits = self.engine.any_within(
                positions[self.informed], positions[uninformed], self.radius
            )
            newly = uninformed[hits]
            if newly.size == 0:
                break
            self._mark_informed(newly)
            newly_all.append(newly)
            if not self.multi_hop:
                break
        if not newly_all:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(newly_all)
