"""The flooding protocol (Section 4).

Every informed agent transmits at every time step; a non-informed agent
becomes informed at step ``t`` iff some informed agent is within distance
``R`` during ``t``.  Flooding time — the first step at which everyone is
informed — lower-bounds every broadcast protocol and plays the role of the
diameter in static networks.

Both implementations exploit two structural facts of flooding (DESIGN.md,
"Incremental and frontier-pruned neighbor subsystem"):

* the informed set is **monotone**, so the uninformed/informed index lists
  are maintained incrementally instead of re-scanning the boolean mask
  every hop;
* positions are **frozen within a round**, so hop ``k >= 2`` of a
  multi-hop exchange only needs the agents informed at hop ``k - 1`` as
  sources — every older source was already tested against a superset of
  the still-uninformed queries at the same positions.  The per-round
  engine state is shared across hops through the bound-snapshot API.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.neighbors import BatchNeighborQuery
from repro.protocols.base import BroadcastProtocol

__all__ = ["FloodingProtocol", "BatchFloodingState"]


class FloodingProtocol(BroadcastProtocol):
    """Classic synchronous flooding.

    Args:
        multi_hop: paper semantics when False (one hop per step: agents
            informed during this step do not retransmit until the next).
            When True, the message saturates entire connected components of
            the current snapshot within the step ("infinite bandwidth"
            comparison mode).
        prune: frontier pruning (default True) — hops ``>= 2`` of a
            multi-hop round transmit from the just-informed frontier only.
            Exact: results are identical either way (asserted by the
            parity tests); False replays the pre-pruning behaviour for
            comparison benchmarks.
    """

    name = "flooding"

    def __init__(self, *args, multi_hop: bool = False, prune: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self.multi_hop = bool(multi_hop)
        self.prune = bool(prune)
        self._informed_idx = None
        self._uninformed_idx = None

    def _index_lists(self) -> tuple:
        """Incremental informed/uninformed index lists (re-derived from the
        boolean mask only when they drifted, e.g. after external state
        surgery in tests).  The membership scan catches count-preserving
        surgery too (a moved informed bit), and costs one boolean gather —
        far less than the ``nonzero`` scans it avoids."""
        count = self.informed_count
        if (
            self._informed_idx is None
            or self._informed_idx.size != count
            or self._uninformed_idx.size != self.n - count
            or not self.informed[self._informed_idx].all()
        ):
            self._informed_idx = np.nonzero(self.informed)[0]
            self._uninformed_idx = np.nonzero(~self.informed)[0]
        return self._informed_idx, self._uninformed_idx

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        informed_idx, uninformed = self._index_lists()
        if uninformed.size == 0:
            return np.empty(0, dtype=np.intp)
        snapshot = self.engine.bind(positions, self.radius)
        frontier = informed_idx
        newly_all = []
        while uninformed.size:
            hits = snapshot.any_within(frontier, uninformed)
            newly = uninformed[hits]
            if newly.size == 0:
                break
            self._mark_informed(newly)
            newly_all.append(newly)
            uninformed = uninformed[~hits]
            if not self.multi_hop:
                break
            # Positions are frozen within the round, so agents informed
            # before this hop were already tested against every remaining
            # uninformed agent — only the fresh frontier can matter.
            frontier = newly if self.prune else np.concatenate([frontier, newly])
        self._uninformed_idx = uninformed
        if not newly_all:
            return np.empty(0, dtype=np.intp)
        newly_cat = np.concatenate(newly_all) if len(newly_all) > 1 else newly_all[0]
        self._informed_idx = np.concatenate([informed_idx, newly_cat])
        return newly_cat


class BatchFloodingState:
    """Informed state of ``B`` independent flooding runs, updated in lock-step.

    The batch counterpart of :class:`FloodingProtocol`: one
    :class:`~repro.geometry.neighbors.BatchNeighborQuery` call per round
    answers every replica's infection test at once, and informed masks live
    in a ``(B, n)`` tensor.  Flooding consumes no randomness, so batch
    updates are trivially seed-equivalent to ``B`` scalar protocols; the
    update order within a round matches the scalar ``_exchange`` loop
    exactly (including ``multi_hop`` saturation).

    Args:
        n: number of agents per replica.
        side: region side (for the neighbor query tiling).
        radius: transmission radius ``R``.
        sources: ``(B,)`` initial informed agent per replica.
        backend: neighbor-engine backend name.
        multi_hop: scalar :class:`FloodingProtocol` semantics, per replica.
        neighbor_options: tuning knobs for the neighbor subsystem —
            ``incremental`` (persistent cell assignments across rounds)
            and ``prune`` (frontier source pruning + frontier-only
            multi-hop sources).  Both default True; both are exact, so
            results never depend on them (asserted by the parity tests).
    """

    def __init__(
        self,
        n: int,
        side: float,
        radius: float,
        sources,
        backend: str = "auto",
        multi_hop: bool = False,
        neighbor_options: dict = None,
    ):
        sources = np.asarray(sources, dtype=np.intp)
        if sources.ndim != 1 or sources.size < 1:
            raise ValueError(f"sources must be a non-empty 1-d array, got shape {sources.shape}")
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if np.any((sources < 0) | (sources >= n)):
            raise ValueError(f"sources must be in [0, {n})")
        options = dict(neighbor_options or {})
        options.pop("cell_size", None)  # scalar grid-engine knob
        incremental = bool(options.pop("incremental", True))
        prune = bool(options.pop("prune", True))
        if options:
            raise ValueError(f"unknown neighbor options: {sorted(options)}")
        self.n = int(n)
        self.side = float(side)
        self.radius = float(radius)
        self.sources = sources
        self.batch_size = int(sources.size)
        self.multi_hop = bool(multi_hop)
        self.prune = prune
        self.query = BatchNeighborQuery(
            self.side, self.batch_size, backend, incremental=incremental, prune=prune
        )
        self.informed = np.zeros((self.batch_size, self.n), dtype=bool)
        self.informed[np.arange(self.batch_size), sources] = True
        self.informed_at = np.full((self.batch_size, self.n), np.inf)
        self.informed_at[np.arange(self.batch_size), sources] = 0.0
        self.step_count = 0

    @property
    def informed_counts(self) -> np.ndarray:
        """``(B,)`` number of informed agents per replica."""
        return np.count_nonzero(self.informed, axis=1)

    def complete_mask(self) -> np.ndarray:
        """``(B,)`` bool — replicas with every agent informed."""
        return self.informed_counts == self.n

    def step(self, positions: np.ndarray, active=None) -> np.ndarray:
        """One communication round over the ``(B, n, 2)`` snapshot.

        Args:
            active: optional ``(B,)`` bool mask of replicas still running;
                frozen replicas are excluded from both sides of the query.

        Returns:
            ``(B, n)`` bool mask of newly informed agents.
        """
        self.step_count += 1
        rows = None
        if active is None:
            active = np.ones(self.batch_size, dtype=bool)
        else:
            active = np.asarray(active, dtype=bool)
            if not active.all():
                rows = np.nonzero(active)[0]
        snapshot = self.query.bind(positions, rows=rows)
        newly_total = np.zeros((self.batch_size, self.n), dtype=bool)
        frontier = None
        while True:
            if frontier is None:
                source_mask = self.informed & active[:, None]
            else:
                source_mask = frontier  # already a subset of the active replicas
            query_mask = ~self.informed & active[:, None]
            if not query_mask.any():
                break
            hits = snapshot.any_within(source_mask, query_mask, self.radius)
            if not hits.any():
                break
            self.informed |= hits
            self.informed_at[hits] = self.step_count
            newly_total |= hits
            if not self.multi_hop:
                break
            # Frontier hop: older sources were already tested against every
            # remaining uninformed agent at these same positions.
            frontier = hits if self.prune else None
        return newly_total
