"""The flooding protocol (Section 4).

Every informed agent transmits at every time step; a non-informed agent
becomes informed at step ``t`` iff some informed agent is within distance
``R`` during ``t``.  Flooding time — the first step at which everyone is
informed — lower-bounds every broadcast protocol and plays the role of the
diameter in static networks.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.neighbors import BatchNeighborQuery
from repro.protocols.base import BroadcastProtocol

__all__ = ["FloodingProtocol", "BatchFloodingState"]


class FloodingProtocol(BroadcastProtocol):
    """Classic synchronous flooding.

    Args:
        multi_hop: paper semantics when False (one hop per step: agents
            informed during this step do not retransmit until the next).
            When True, the message saturates entire connected components of
            the current snapshot within the step ("infinite bandwidth"
            comparison mode).
    """

    name = "flooding"

    def __init__(self, *args, multi_hop: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.multi_hop = bool(multi_hop)

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        newly_all = []
        while True:
            uninformed = np.nonzero(~self.informed)[0]
            if uninformed.size == 0:
                break
            hits = self.engine.any_within(
                positions[self.informed], positions[uninformed], self.radius
            )
            newly = uninformed[hits]
            if newly.size == 0:
                break
            self._mark_informed(newly)
            newly_all.append(newly)
            if not self.multi_hop:
                break
        if not newly_all:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(newly_all)


class BatchFloodingState:
    """Informed state of ``B`` independent flooding runs, updated in lock-step.

    The batch counterpart of :class:`FloodingProtocol`: one
    :class:`~repro.geometry.neighbors.BatchNeighborQuery` call per round
    answers every replica's infection test at once, and informed masks live
    in a ``(B, n)`` tensor.  Flooding consumes no randomness, so batch
    updates are trivially seed-equivalent to ``B`` scalar protocols; the
    update order within a round matches the scalar ``_exchange`` loop
    exactly (including ``multi_hop`` saturation).

    Args:
        n: number of agents per replica.
        side: region side (for the neighbor query tiling).
        radius: transmission radius ``R``.
        sources: ``(B,)`` initial informed agent per replica.
        backend: neighbor-engine backend name.
        multi_hop: scalar :class:`FloodingProtocol` semantics, per replica.
    """

    def __init__(
        self,
        n: int,
        side: float,
        radius: float,
        sources,
        backend: str = "auto",
        multi_hop: bool = False,
    ):
        sources = np.asarray(sources, dtype=np.intp)
        if sources.ndim != 1 or sources.size < 1:
            raise ValueError(f"sources must be a non-empty 1-d array, got shape {sources.shape}")
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if np.any((sources < 0) | (sources >= n)):
            raise ValueError(f"sources must be in [0, {n})")
        self.n = int(n)
        self.side = float(side)
        self.radius = float(radius)
        self.sources = sources
        self.batch_size = int(sources.size)
        self.multi_hop = bool(multi_hop)
        self.query = BatchNeighborQuery(self.side, self.batch_size, backend)
        self.informed = np.zeros((self.batch_size, self.n), dtype=bool)
        self.informed[np.arange(self.batch_size), sources] = True
        self.informed_at = np.full((self.batch_size, self.n), np.inf)
        self.informed_at[np.arange(self.batch_size), sources] = 0.0
        self.step_count = 0

    @property
    def informed_counts(self) -> np.ndarray:
        """``(B,)`` number of informed agents per replica."""
        return np.count_nonzero(self.informed, axis=1)

    def complete_mask(self) -> np.ndarray:
        """``(B,)`` bool — replicas with every agent informed."""
        return self.informed_counts == self.n

    def step(self, positions: np.ndarray, active=None) -> np.ndarray:
        """One communication round over the ``(B, n, 2)`` snapshot.

        Args:
            active: optional ``(B,)`` bool mask of replicas still running;
                frozen replicas are excluded from both sides of the query.

        Returns:
            ``(B, n)`` bool mask of newly informed agents.
        """
        self.step_count += 1
        if active is None:
            active = np.ones(self.batch_size, dtype=bool)
        else:
            active = np.asarray(active, dtype=bool)
        newly_total = np.zeros((self.batch_size, self.n), dtype=bool)
        while True:
            source_mask = self.informed & active[:, None]
            query_mask = ~self.informed & active[:, None]
            if not query_mask.any():
                break
            hits = self.query.any_within(positions, source_mask, query_mask, self.radius)
            if not hits.any():
                break
            self.informed |= hits
            self.informed_at[hits] = self.step_count
            newly_total |= hits
            if not self.multi_hop:
                break
        return newly_total
