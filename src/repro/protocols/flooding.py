"""The flooding protocol (Section 4).

Every informed agent transmits at every time step; a non-informed agent
becomes informed at step ``t`` iff some informed agent is within distance
``R`` during ``t``.  Flooding time — the first step at which everyone is
informed — lower-bounds every broadcast protocol and plays the role of the
diameter in static networks.

Both implementations exploit two structural facts of flooding (DESIGN.md,
"Incremental and frontier-pruned neighbor subsystem"):

* the informed set is **monotone**, so the uninformed/informed index lists
  are maintained incrementally instead of re-scanning the boolean mask
  every hop;
* positions are **frozen within a round**, so hop ``k >= 2`` of a
  multi-hop exchange only needs the agents informed at hop ``k - 1`` as
  sources — every older source was already tested against a superset of
  the still-uninformed queries at the same positions.  The per-round
  engine state is shared across hops through the bound-snapshot API.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import BatchBroadcastState, BroadcastProtocol

__all__ = ["FloodingProtocol", "BatchFloodingState"]


class FloodingProtocol(BroadcastProtocol):
    """Classic synchronous flooding.

    Args:
        multi_hop: paper semantics when False (one hop per step: agents
            informed during this step do not retransmit until the next).
            When True, the message saturates entire connected components of
            the current snapshot within the step ("infinite bandwidth"
            comparison mode).
        prune: frontier pruning (default True) — hops ``>= 2`` of a
            multi-hop round transmit from the just-informed frontier only.
            Exact: results are identical either way (asserted by the
            parity tests); False replays the pre-pruning behaviour for
            comparison benchmarks.
    """

    name = "flooding"

    def __init__(self, *args, multi_hop: bool = False, prune: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self.multi_hop = bool(multi_hop)
        self.prune = bool(prune)
        self._informed_idx = None
        self._uninformed_idx = None

    def _index_lists(self) -> tuple:
        """Incremental informed/uninformed index lists (re-derived from the
        boolean mask only when they drifted, e.g. after external state
        surgery in tests).  The membership scan catches count-preserving
        surgery too (a moved informed bit), and costs one boolean gather —
        far less than the ``nonzero`` scans it avoids."""
        count = self.informed_count
        if (
            self._informed_idx is None
            or self._informed_idx.size != count
            or self._uninformed_idx.size != self.n - count
            or not self.informed[self._informed_idx].all()
        ):
            self._informed_idx = np.nonzero(self.informed)[0]
            self._uninformed_idx = np.nonzero(~self.informed)[0]
        return self._informed_idx, self._uninformed_idx

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        informed_idx, uninformed = self._index_lists()
        if uninformed.size == 0:
            return np.empty(0, dtype=np.intp)
        snapshot = self.engine.bind(positions, self.radius)
        frontier = informed_idx
        newly_all = []
        while uninformed.size:
            hits = snapshot.any_within(frontier, uninformed)
            newly = uninformed[hits]
            if newly.size == 0:
                break
            self._mark_informed(newly)
            newly_all.append(newly)
            uninformed = uninformed[~hits]
            if not self.multi_hop:
                break
            # Positions are frozen within the round, so agents informed
            # before this hop were already tested against every remaining
            # uninformed agent — only the fresh frontier can matter.
            frontier = newly if self.prune else np.concatenate([frontier, newly])
        self._uninformed_idx = uninformed
        if not newly_all:
            return np.empty(0, dtype=np.intp)
        newly_cat = np.concatenate(newly_all) if len(newly_all) > 1 else newly_all[0]
        self._informed_idx = np.concatenate([informed_idx, newly_cat])
        return newly_cat


class BatchFloodingState(BatchBroadcastState):
    """Informed state of ``B`` independent flooding runs, updated in lock-step.

    The batch counterpart of :class:`FloodingProtocol`: one
    :class:`~repro.geometry.neighbors.BatchNeighborQuery` call per round
    answers every replica's infection test at once, and informed masks live
    in a ``(B, n)`` tensor.  Flooding consumes no randomness, so batch
    updates are trivially seed-equivalent to ``B`` scalar protocols; the
    update order within a round matches the scalar ``_exchange`` loop
    exactly (including ``multi_hop`` saturation).

    Args:
        multi_hop: scalar :class:`FloodingProtocol` semantics, per replica.

    (Shared arguments: :class:`~repro.protocols.base.BatchBroadcastState`.)
    """

    name = "flooding"

    def __init__(
        self,
        n: int,
        side: float,
        radius: float,
        sources,
        backend: str = "auto",
        multi_hop: bool = False,
        neighbor_options: dict = None,
        rngs=None,
    ):
        super().__init__(
            n, side, radius, sources,
            rngs=rngs, backend=backend, neighbor_options=neighbor_options,
        )
        self.multi_hop = bool(multi_hop)

    def _exchange(self, snapshot, active: np.ndarray) -> np.ndarray:
        newly_total = np.zeros((self.batch_size, self.n), dtype=bool)
        frontier = None
        while True:
            if frontier is None:
                source_mask = self.informed & active[:, None]
            else:
                source_mask = frontier  # already a subset of the active replicas
            query_mask = ~self.informed & active[:, None]
            if not query_mask.any():
                break
            hits = snapshot.any_within(source_mask, query_mask, self.radius)
            if not hits.any():
                break
            self._mark_informed(hits)
            newly_total |= hits
            if not self.multi_hop:
                break
            # Frontier hop: older sources were already tested against every
            # remaining uninformed agent at these same positions.
            frontier = hits if self.prune else None
        return newly_total
