"""Probabilistic flooding.

Each informed agent transmits independently with probability ``p`` at each
step.  ``p = 1`` recovers exact flooding; smaller ``p`` models duty-cycled
radios.  Expected slowdown in the well-connected Central Zone is roughly a
``1/p`` factor per hop; in the Suburb, missing the brief meeting windows
(Lemma 16) costs much more — a contrast the baselines experiment surfaces.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import BatchBroadcastState, BroadcastProtocol

__all__ = ["ProbabilisticFlooding", "BatchProbabilisticState"]


class ProbabilisticFlooding(BroadcastProtocol):
    """Flooding with per-step transmission probability ``p``."""

    name = "probabilistic"

    def __init__(self, *args, p: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = float(p)

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        transmitting = self.informed & (self.rng.uniform(size=self.n) < self.p)
        if not np.any(transmitting):
            return np.empty(0, dtype=np.intp)
        uninformed = np.nonzero(~self.informed)[0]
        if uninformed.size == 0:
            return np.empty(0, dtype=np.intp)
        hits = self.engine.any_within(positions[transmitting], positions[uninformed], self.radius)
        return self._mark_informed(uninformed[hits])


class BatchProbabilisticState(BatchBroadcastState):
    """``B`` independent probabilistic-flooding runs in lock-step.

    Each active replica draws one ``uniform(n)`` duty-cycle vector per step
    from its own generator — the scalar draw exactly — and the combined
    transmit masks feed a single batched infection test.
    """

    name = "probabilistic"
    uses_rng = True

    def __init__(self, *args, p: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = float(p)

    def _exchange(self, snapshot, active: np.ndarray) -> np.ndarray:
        transmit = np.zeros((self.batch_size, self.n), dtype=bool)
        for b in np.nonzero(active)[0]:
            transmit[b] = self.rngs[b].uniform(size=self.n) < self.p
        source_mask = self.informed & transmit
        query_mask = ~self.informed & active[:, None]
        if not source_mask.any() or not query_mask.any():
            return np.zeros((self.batch_size, self.n), dtype=bool)
        hits = snapshot.any_within(source_mask, query_mask, self.radius)
        return self._mark_informed(hits)
