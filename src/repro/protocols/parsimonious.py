"""Parsimonious flooding (Baumann, Crescenzi, Fraigniaud — PODC 2009, ref [3]).

Each agent transmits only during the ``active_window`` steps following the
step at which it became informed, then falls silent forever.  In static or
dense networks this saves energy at little cost; over a sparse mobile
Suburb, silence can strand the message — which is exactly what the
``protocol_baselines`` experiment measures against the paper's flooding.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import BatchBroadcastState, BroadcastProtocol

__all__ = ["ParsimoniousFlooding", "BatchParsimoniousState"]


class ParsimoniousFlooding(BroadcastProtocol):
    """Flooding where transmitters stay active only ``active_window`` steps."""

    name = "parsimonious"

    def __init__(self, *args, active_window: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        if active_window < 1:
            raise ValueError(f"active_window must be at least 1, got {active_window}")
        self.active_window = int(active_window)

    def _active_mask(self) -> np.ndarray:
        """Agents still within their transmission window at the current step."""
        age = self.step_count - self.informed_at
        return self.informed & (age >= 1) & (age <= self.active_window)

    def can_progress(self) -> bool:
        if self.is_complete():
            return False
        # Progress is impossible once every informed agent's window closes
        # before the next step (an agent informed at s transmits during
        # steps s+1 .. s+active_window).
        informed_times = self.informed_at[self.informed]
        return bool(np.any(informed_times + self.active_window >= self.step_count + 1))

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        active = self._active_mask()
        if not np.any(active):
            return np.empty(0, dtype=np.intp)
        uninformed = np.nonzero(~self.informed)[0]
        if uninformed.size == 0:
            return np.empty(0, dtype=np.intp)
        hits = self.engine.any_within(positions[active], positions[uninformed], self.radius)
        return self._mark_informed(uninformed[hits])


class BatchParsimoniousState(BatchBroadcastState):
    """``B`` independent parsimonious-flooding runs in lock-step.

    Deterministic given the informed history (no randomness), so parity
    with the scalar protocol reduces to the shared exact neighbor kernels.
    Window bookkeeping is the ``informed_at`` tensor the base class
    already maintains; a replica retires (stalls) once every informed
    agent's transmission window has closed — the batch counterpart of
    :meth:`ParsimoniousFlooding.can_progress`.
    """

    name = "parsimonious"

    def __init__(self, *args, active_window: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        if active_window < 1:
            raise ValueError(f"active_window must be at least 1, got {active_window}")
        self.active_window = int(active_window)

    def can_progress_mask(self) -> np.ndarray:
        # An agent informed at s transmits during steps s+1 .. s+window.
        open_window = self.informed & (
            self.informed_at + self.active_window >= self.step_count + 1
        )
        return ~self.complete_mask() & np.any(open_window, axis=1)

    def _exchange(self, snapshot, active: np.ndarray) -> np.ndarray:
        age = self.step_count - self.informed_at
        window = self.informed & (age >= 1) & (age <= self.active_window)
        source_mask = window & active[:, None]
        query_mask = ~self.informed & active[:, None]
        if not source_mask.any() or not query_mask.any():
            return np.zeros((self.batch_size, self.n), dtype=bool)
        hits = snapshot.any_within(source_mask, query_mask, self.radius)
        return self._mark_informed(hits)
