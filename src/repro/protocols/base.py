"""Broadcast-protocol interface over MANET snapshots.

A protocol owns the per-agent message state and is driven by the simulation
engine: once per time step it receives the fresh agent positions and decides
who becomes informed.  All protocols share the paper's synchronous semantics
— an agent informed during step ``t`` transmits from step ``t + 1`` on —
and the inclusive distance-``R`` reception rule.

Implementations:

* :class:`~repro.protocols.flooding.FloodingProtocol` — the paper's protocol;
* :class:`~repro.protocols.gossip.GossipProtocol` — push gossip, fanout k;
* :class:`~repro.protocols.parsimonious.ParsimoniousFlooding` — informed
  agents transmit only for a bounded window (Baumann-Crescenzi-Fraigniaud);
* :class:`~repro.protocols.probabilistic.ProbabilisticFlooding` — each
  informed agent transmits independently with probability p per step;
* :class:`~repro.protocols.epidemic.SIREpidemic` — transmitters recover
  (stop forever) at a geometric rate, so coverage can stall.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.geometry.neighbors import NeighborEngine, make_engine

__all__ = ["BroadcastProtocol"]


class BroadcastProtocol(abc.ABC):
    """Abstract synchronous broadcast protocol.

    Args:
        n: number of agents.
        side: region side (for the neighbor engine).
        radius: transmission radius ``R``.
        source: index of the initially informed agent.
        rng: generator for randomized protocols.
        backend: neighbor-engine backend name (``"auto"`` by default).
        engine_options: extra keyword arguments for
            :func:`~repro.geometry.neighbors.make_engine` (e.g.
            ``{"incremental": False}`` to disable the persistent grid
            index).
    """

    name = "abstract"

    def __init__(
        self,
        n: int,
        side: float,
        radius: float,
        source: int,
        rng: np.random.Generator = None,
        backend: str = "auto",
        engine_options: dict = None,
    ):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if not 0 <= source < n:
            raise ValueError(f"source must be in [0, {n}), got {source}")
        self.n = int(n)
        self.side = float(side)
        self.radius = float(radius)
        self.source = int(source)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.engine: NeighborEngine = make_engine(backend, self.side, **(engine_options or {}))
        self.informed = np.zeros(self.n, dtype=bool)
        self.informed[self.source] = True
        self.informed_at = np.full(self.n, np.inf)
        self.informed_at[self.source] = 0.0
        self.step_count = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def informed_count(self) -> int:
        """Number of informed agents."""
        return int(np.count_nonzero(self.informed))

    def is_complete(self) -> bool:
        """All agents informed?"""
        return self.informed_count == self.n

    def can_progress(self) -> bool:
        """Whether the protocol may still inform new agents in the future.

        Always True for flooding-like protocols; SIR-style protocols return
        False once no transmitter remains.
        """
        return not self.is_complete()

    def _mark_informed(self, idx: np.ndarray) -> np.ndarray:
        """Record agents ``idx`` as informed at the current step; returns ``idx``."""
        idx = np.asarray(idx, dtype=np.intp)
        if idx.size:
            self.informed[idx] = True
            self.informed_at[idx] = self.step_count
        return idx

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, positions: np.ndarray) -> np.ndarray:
        """Run one communication round over the given snapshot.

        Returns:
            indices of newly informed agents.
        """
        self.step_count += 1
        return self._exchange(positions)

    @abc.abstractmethod
    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        """Protocol-specific exchange; must call :meth:`_mark_informed`."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, radius={self.radius}, "
            f"informed={self.informed_count}/{self.n})"
        )
