"""Broadcast-protocol interface over MANET snapshots.

A protocol owns the per-agent message state and is driven by the simulation
engine: once per time step it receives the fresh agent positions and decides
who becomes informed.  All protocols share the paper's synchronous semantics
— an agent informed during step ``t`` transmits from step ``t + 1`` on —
and the inclusive distance-``R`` reception rule.

Implementations:

* :class:`~repro.protocols.flooding.FloodingProtocol` — the paper's protocol;
* :class:`~repro.protocols.gossip.GossipProtocol` — push gossip, fanout k;
* :class:`~repro.protocols.parsimonious.ParsimoniousFlooding` — informed
  agents transmit only for a bounded window (Baumann-Crescenzi-Fraigniaud);
* :class:`~repro.protocols.probabilistic.ProbabilisticFlooding` — each
  informed agent transmits independently with probability p per step;
* :class:`~repro.protocols.epidemic.SIREpidemic` — transmitters recover
  (stop forever) at a geometric rate, so coverage can stall.

Every protocol also has a **batched counterpart** deriving from
:class:`BatchBroadcastState`: the informed state of ``B`` independent
replicas in one ``(B, n)`` tensor, updated in lock-step with the
neighbor work of all replicas answered by a single
:class:`~repro.geometry.neighbors.BatchNeighborQuery` call per round.
Stochastic draws stay **per replica** (one generator per replica,
replaying the scalar draw order exactly), so the batch engine is
seed-for-seed identical to ``B`` scalar runs — the design constraint of
the whole batch layer (DESIGN.md, "Batched protocol framework").
"""

from __future__ import annotations

import abc

import numpy as np

from repro.geometry.neighbors import BatchNeighborQuery, NeighborEngine, make_engine

__all__ = ["BroadcastProtocol", "BatchBroadcastState", "group_segments", "sample_indices"]


def group_segments(sorted_ids: np.ndarray) -> tuple:
    """``(unique_ids, counts, offsets)`` of a nondecreasing id array.

    The grouping primitive behind the neighbor-sampling protocols: a
    canonical-sorted contact list grouped by its initiator, without a
    ``np.unique`` re-sort.
    """
    m = sorted_ids.shape[0]
    if m == 0:
        empty = np.empty(0, dtype=np.intp)
        return sorted_ids, empty, empty
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    counts = np.diff(np.append(starts, m))
    return sorted_ids[starts], counts, starts


def sample_indices(r: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Uniform without-replacement index samples from ``[0, d)`` per column.

    ``r`` is a ``(k, S)`` block of i.i.d. uniforms (one column per
    sampler, consumed row by row); ``d`` the per-column population sizes.
    Row ``i`` draws the ``i``-th index via the classic skip-adjusted
    sequential scheme: a uniform pick from the ``d - i`` remaining
    positions, shifted past the already-picked indices — so the ``k``
    picks of a column are a uniform ordered sample without replacement.
    Entries where ``d <= i`` (population exhausted) are ``-1``.

    This is the neighbor-sampling core of gossip and push-pull: a sender
    with ``d`` neighbors picks ``k`` of them by *index* — no per-contact
    keys, no sort — and the caller resolves picked indices below the
    sender's informed/uninformed cut-degree to actual targets.  Both
    engines share this code path (the batch engine feeds per-replica
    column blocks), so trajectories stay engine-identical.
    """
    k, cols = r.shape
    picks = np.full((k, cols), -1, dtype=np.intp)
    for i in range(k):
        valid = d > i
        j = np.floor(r[i] * (d - i)).astype(np.intp)
        # r < 1 guarantees j < d - i mathematically; guard the float
        # rounding edge where r*(d-i) rounds up to d-i.
        np.minimum(j, np.maximum(d - i - 1, 0), out=j)
        if i:
            # Shift past the previously picked indices, smallest first.
            prev = np.sort(picks[:i], axis=0)
            for row in range(i):
                j += j >= prev[row]
        picks[i, valid] = j[valid]
    return picks


class BroadcastProtocol(abc.ABC):
    """Abstract synchronous broadcast protocol.

    Args:
        n: number of agents.
        side: region side (for the neighbor engine).
        radius: transmission radius ``R``.
        source: index of the initially informed agent.
        rng: generator for randomized protocols.
        backend: neighbor-engine backend name (``"auto"`` by default).
        engine_options: extra keyword arguments for
            :func:`~repro.geometry.neighbors.make_engine` (e.g.
            ``{"incremental": False}`` to disable the persistent grid
            index).
    """

    name = "abstract"

    def __init__(
        self,
        n: int,
        side: float,
        radius: float,
        source: int,
        rng: np.random.Generator = None,
        backend: str = "auto",
        engine_options: dict = None,
    ):
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if not 0 <= source < n:
            raise ValueError(f"source must be in [0, {n}), got {source}")
        self.n = int(n)
        self.side = float(side)
        self.radius = float(radius)
        self.source = int(source)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.engine: NeighborEngine = make_engine(backend, self.side, **(engine_options or {}))
        self.informed = np.zeros(self.n, dtype=bool)
        self.informed[self.source] = True
        self.informed_at = np.full(self.n, np.inf)
        self.informed_at[self.source] = 0.0
        self.step_count = 0
        self._all_idx = np.arange(self.n, dtype=np.intp)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def informed_count(self) -> int:
        """Number of informed agents."""
        return int(np.count_nonzero(self.informed))

    def is_complete(self) -> bool:
        """All agents informed?"""
        return self.informed_count == self.n

    def can_progress(self) -> bool:
        """Whether the protocol may still inform new agents in the future.

        Always True for flooding-like protocols; SIR-style protocols return
        False once no transmitter remains.
        """
        return not self.is_complete()

    def _mark_informed(self, idx: np.ndarray) -> np.ndarray:
        """Record agents ``idx`` as informed at the current step; returns ``idx``."""
        idx = np.asarray(idx, dtype=np.intp)
        if idx.size:
            self.informed[idx] = True
            self.informed_at[idx] = self.step_count
        return idx

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, positions: np.ndarray) -> np.ndarray:
        """Run one communication round over the given snapshot.

        Returns:
            indices of newly informed agents.
        """
        self.step_count += 1
        return self._exchange(positions)

    @abc.abstractmethod
    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        """Protocol-specific exchange; must call :meth:`_mark_informed`."""

    # ------------------------------------------------------------------
    # End-of-run reporting
    # ------------------------------------------------------------------
    def final_metrics(self, positions: np.ndarray, zones=None) -> dict:
        """Protocol-specific end-of-run metrics, merged into result extras.

        The base implementation reports where the uninformed agents sit
        (by their *final* position's zone) when a
        :class:`~repro.core.zones.ZonePartition` is available; subclasses
        extend with their own state (crashed counts, recovered counts, …).
        """
        out = {}
        if zones is not None:
            missing = ~self.informed
            suburb = zones.in_suburb(positions)
            out["uninformed_suburb"] = int(np.count_nonzero(missing & suburb))
            out["uninformed_cz"] = int(np.count_nonzero(missing & ~suburb))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, radius={self.radius}, "
            f"informed={self.informed_count}/{self.n})"
        )


class BatchBroadcastState(abc.ABC):
    """Informed state of ``B`` independent protocol runs, updated in lock-step.

    The batch counterpart of :class:`BroadcastProtocol`: informed masks of
    all replicas live in a ``(B, n)`` tensor, one
    :class:`~repro.geometry.neighbors.BatchNeighborQuery` bind per round
    serves every replica's neighbor queries, and per-replica
    ``can_progress`` masks let stalled or died-out replicas retire early
    while live ones keep lock-stepping.

    **Seed-for-seed parity contract**: with per-replica generators spawned
    exactly like the scalar runner's protocol streams, a subclass must
    consume randomness in the scalar protocol's per-step draw order for
    each replica — vectorized neighbor work (which dominates) is shared,
    stochastic draws are not.  The parity is asserted protocol-by-protocol
    in ``tests/test_protocol_batch_parity.py``.

    Args:
        n: number of agents per replica.
        side: region side (for the neighbor query tiling).
        radius: transmission radius ``R``.
        sources: ``(B,)`` initial informed agent per replica.
        rngs: per-replica generators for the protocol's stochastic draws
            (None for deterministic protocols such as flooding).
        backend: neighbor-engine backend name.
        neighbor_options: tuning knobs for the neighbor subsystem —
            ``incremental`` (persistent cell assignments across rounds)
            and ``prune`` (frontier source pruning).  Both default True;
            both are exact, so results never depend on them.
    """

    name = "abstract"
    #: Whether the protocol consumes per-replica randomness (subclasses
    #: that do must be given ``rngs``).
    uses_rng = False

    def __init__(
        self,
        n: int,
        side: float,
        radius: float,
        sources,
        rngs=None,
        backend: str = "auto",
        neighbor_options: dict = None,
    ):
        sources = np.asarray(sources, dtype=np.intp)
        if sources.ndim != 1 or sources.size < 1:
            raise ValueError(f"sources must be a non-empty 1-d array, got shape {sources.shape}")
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        if np.any((sources < 0) | (sources >= n)):
            raise ValueError(f"sources must be in [0, {n})")
        options = dict(neighbor_options or {})
        options.pop("cell_size", None)  # scalar grid-engine knob
        incremental = bool(options.pop("incremental", True))
        prune = bool(options.pop("prune", True))
        if options:
            raise ValueError(f"unknown neighbor options: {sorted(options)}")
        self.n = int(n)
        self.side = float(side)
        self.radius = float(radius)
        self.sources = sources
        self.batch_size = int(sources.size)
        self.prune = prune
        if self.uses_rng:
            if rngs is None or len(rngs) != self.batch_size:
                raise ValueError(
                    f"{type(self).__name__} needs one RNG per replica "
                    f"({self.batch_size}), got "
                    f"{'none' if rngs is None else len(rngs)}"
                )
            self.rngs = list(rngs)
        else:
            self.rngs = None
        self.query = BatchNeighborQuery(
            self.side, self.batch_size, backend, incremental=incremental, prune=prune
        )
        self.informed = np.zeros((self.batch_size, self.n), dtype=bool)
        self.informed[np.arange(self.batch_size), sources] = True
        self.informed_at = np.full((self.batch_size, self.n), np.inf)
        self.informed_at[np.arange(self.batch_size), sources] = 0.0
        self.step_count = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def informed_counts(self) -> np.ndarray:
        """``(B,)`` number of informed agents per replica."""
        return np.count_nonzero(self.informed, axis=1)

    def complete_mask(self) -> np.ndarray:
        """``(B,)`` bool — replicas that reached their completion criterion
        (every agent informed; fault models may restrict the requirement)."""
        return self.informed_counts == self.n

    def can_progress_mask(self) -> np.ndarray:
        """``(B,)`` bool — replicas that may still inform new agents.

        The batch counterpart of
        :meth:`BroadcastProtocol.can_progress`; the default (flooding-like)
        rule is "not yet complete".  Subclasses with die-out semantics
        (SIR, parsimonious windows, crash faults) override it, and the
        batch simulation retires replicas whose mask turns False — exactly
        when the scalar loop would stop stepping them.  **Contract**:
        complete replicas must report False (every override starts from
        ``~self.complete_mask()``); the lock-step driver uses this mask
        directly as its active mask.
        """
        return ~self.complete_mask()

    def stalled_mask(self) -> np.ndarray:
        """``(B,)`` bool — incomplete replicas that can no longer progress."""
        return ~self.complete_mask() & ~self.can_progress_mask()

    def _mark_informed(self, hits: np.ndarray) -> np.ndarray:
        """Record the ``(B, n)`` hit mask as informed at the current step."""
        self.informed |= hits
        self.informed_at[hits] = self.step_count
        return hits

    def _draw_uniform_blocks(self, group_rep: np.ndarray, k: int) -> np.ndarray:
        """``(k, S)`` uniforms drawn per replica (``group_rep`` must be
        nondecreasing), matching the scalar per-replica draw shapes — the
        seed-for-seed draw-order core shared by the neighbor-sampling
        protocols."""
        out = np.empty((k, group_rep.size))
        counts = np.bincount(group_rep, minlength=self.batch_size)
        pos = 0
        for b in np.nonzero(counts)[0]:
            count = int(counts[b])
            out[:, pos:pos + count] = self.rngs[b].uniform(size=(k, count))
            pos += count
        return out

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, positions: np.ndarray, active=None) -> np.ndarray:
        """One communication round over the ``(B, n, 2)`` snapshot.

        Args:
            positions: ``(B, n, 2)`` replica position tensor.
            active: optional ``(B,)`` bool mask of replicas still running;
                retired replicas are excluded from both sides of every
                query and consume **no randomness** (their generators
                freeze exactly where the scalar engine would have stopped
                drawing).

        Returns:
            ``(B, n)`` bool mask of newly informed agents.
        """
        self.step_count += 1
        rows = None
        if active is None:
            active = np.ones(self.batch_size, dtype=bool)
        else:
            active = np.asarray(active, dtype=bool)
            if not active.all():
                rows = np.nonzero(active)[0]
        snapshot = self.query.bind(positions, rows=rows)
        return self._exchange(snapshot, active)

    @abc.abstractmethod
    def _exchange(self, snapshot, active: np.ndarray) -> np.ndarray:
        """Protocol-specific batched exchange over a bound snapshot.

        Receives the :class:`~repro.geometry.neighbors.BatchBoundQuery`
        of the current round and the ``(B,)`` active mask; must return the
        ``(B, n)`` newly-informed mask (and record it via
        :meth:`_mark_informed`).
        """

    # ------------------------------------------------------------------
    # End-of-run reporting
    # ------------------------------------------------------------------
    def final_metrics(self, positions: np.ndarray, zones=None) -> list:
        """Per-replica end-of-run metrics; one dict per replica.

        Must mirror :meth:`BroadcastProtocol.final_metrics` of the scalar
        protocol exactly (the parity tests compare them key-for-key).
        """
        out = [{} for _ in range(self.batch_size)]
        if zones is not None:
            missing = ~self.informed
            flat = np.asarray(positions, dtype=np.float64).reshape(-1, 2)
            suburb = zones.in_suburb(flat).reshape(self.batch_size, self.n)
            for b in range(self.batch_size):
                out[b]["uninformed_suburb"] = int(np.count_nonzero(missing[b] & suburb[b]))
                out[b]["uninformed_cz"] = int(np.count_nonzero(missing[b] & ~suburb[b]))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(B={self.batch_size}, n={self.n}, "
            f"radius={self.radius})"
        )
