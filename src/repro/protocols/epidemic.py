"""SIR epidemic broadcast.

Agents are Susceptible / Infected (transmitting) / Recovered (informed but
silent).  Each infected agent recovers independently with probability
``recovery_prob`` per step after transmitting, giving a geometric active
lifetime of mean ``1 / recovery_prob`` steps.  Unlike flooding, the process
can *die out* before full coverage — the classic epidemic-threshold
behaviour that the baselines experiment contrasts with flooding's
guaranteed completion.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import BatchBroadcastState, BroadcastProtocol

__all__ = ["SIREpidemic", "BatchSIRState"]


class SIREpidemic(BroadcastProtocol):
    """SIR dynamics over the MANET snapshots."""

    name = "sir"

    def __init__(self, *args, recovery_prob: float = 0.1, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= recovery_prob <= 1.0:
            raise ValueError(f"recovery_prob must be in [0, 1], got {recovery_prob}")
        self.recovery_prob = float(recovery_prob)
        self.recovered = np.zeros(self.n, dtype=bool)

    @property
    def infected(self) -> np.ndarray:
        """Mask of currently transmitting agents."""
        return self.informed & ~self.recovered

    @property
    def active_count(self) -> int:
        return int(np.count_nonzero(self.infected))

    def can_progress(self) -> bool:
        return not self.is_complete() and self.active_count > 0

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        infected = self.infected
        newly = np.empty(0, dtype=np.intp)
        if np.any(infected):
            uninformed = np.nonzero(~self.informed)[0]
            if uninformed.size:
                hits = self.engine.any_within(
                    positions[infected], positions[uninformed], self.radius
                )
                newly = self._mark_informed(uninformed[hits])
            # Recovery happens after this step's transmissions.
            active_idx = np.nonzero(infected)[0]
            recover = self.rng.uniform(size=active_idx.size) < self.recovery_prob
            self.recovered[active_idx[recover]] = True
        return newly

    def final_metrics(self, positions: np.ndarray, zones=None) -> dict:
        out = super().final_metrics(positions, zones)
        out["recovered"] = int(np.count_nonzero(self.recovered))
        return out


class BatchSIRState(BatchBroadcastState):
    """``B`` independent SIR runs in lock-step.

    The infection test is one batched query over the infected masks; the
    recovery coin-flips stay per replica — one ``uniform(#infected)`` call
    per active replica per step, after the transmissions, in the scalar
    order.  A replica retires once its infected set empties (die-out),
    exactly when the scalar loop would stop.
    """

    name = "sir"
    uses_rng = True

    def __init__(self, *args, recovery_prob: float = 0.1, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= recovery_prob <= 1.0:
            raise ValueError(f"recovery_prob must be in [0, 1], got {recovery_prob}")
        self.recovery_prob = float(recovery_prob)
        self.recovered = np.zeros((self.batch_size, self.n), dtype=bool)

    @property
    def infected(self) -> np.ndarray:
        """``(B, n)`` mask of currently transmitting agents."""
        return self.informed & ~self.recovered

    def can_progress_mask(self) -> np.ndarray:
        return ~self.complete_mask() & np.any(self.infected, axis=1)

    def _exchange(self, snapshot, active: np.ndarray) -> np.ndarray:
        infected = self.infected
        source_mask = infected & active[:, None]
        query_mask = ~self.informed & active[:, None]
        if source_mask.any() and query_mask.any():
            newly = self._mark_informed(
                snapshot.any_within(source_mask, query_mask, self.radius)
            )
        else:
            newly = np.zeros((self.batch_size, self.n), dtype=bool)
        # Recovery after this step's transmissions, per replica.
        for b in np.nonzero(active)[0]:
            idx = np.nonzero(infected[b])[0]
            if idx.size:
                recover = self.rngs[b].uniform(size=idx.size) < self.recovery_prob
                self.recovered[b, idx[recover]] = True
        return newly

    def final_metrics(self, positions: np.ndarray, zones=None) -> list:
        out = super().final_metrics(positions, zones)
        for b in range(self.batch_size):
            out[b]["recovered"] = int(np.count_nonzero(self.recovered[b]))
        return out
