"""SIR epidemic broadcast.

Agents are Susceptible / Infected (transmitting) / Recovered (informed but
silent).  Each infected agent recovers independently with probability
``recovery_prob`` per step after transmitting, giving a geometric active
lifetime of mean ``1 / recovery_prob`` steps.  Unlike flooding, the process
can *die out* before full coverage — the classic epidemic-threshold
behaviour that the baselines experiment contrasts with flooding's
guaranteed completion.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import BroadcastProtocol

__all__ = ["SIREpidemic"]


class SIREpidemic(BroadcastProtocol):
    """SIR dynamics over the MANET snapshots."""

    name = "sir"

    def __init__(self, *args, recovery_prob: float = 0.1, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= recovery_prob <= 1.0:
            raise ValueError(f"recovery_prob must be in [0, 1], got {recovery_prob}")
        self.recovery_prob = float(recovery_prob)
        self.recovered = np.zeros(self.n, dtype=bool)

    @property
    def infected(self) -> np.ndarray:
        """Mask of currently transmitting agents."""
        return self.informed & ~self.recovered

    @property
    def active_count(self) -> int:
        return int(np.count_nonzero(self.infected))

    def can_progress(self) -> bool:
        return not self.is_complete() and self.active_count > 0

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        infected = self.infected
        newly = np.empty(0, dtype=np.intp)
        if np.any(infected):
            uninformed = np.nonzero(~self.informed)[0]
            if uninformed.size:
                hits = self.engine.any_within(
                    positions[infected], positions[uninformed], self.radius
                )
                newly = self._mark_informed(uninformed[hits])
            # Recovery happens after this step's transmissions.
            active_idx = np.nonzero(infected)[0]
            recover = self.rng.uniform(size=active_idx.size) < self.recovery_prob
            self.recovered[active_idx[recover]] = True
        return newly
