"""Push gossip with bounded fanout.

Instead of broadcasting to everyone in range (flooding), each informed agent
pushes the message to at most ``fanout`` uniformly chosen neighbors per
step.  This is the classic bandwidth-limited baseline: coverage grows more
slowly than flooding, bounded below by it, and the gap quantifies how much
the paper's flooding-time bound depends on unlimited local bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import BroadcastProtocol

__all__ = ["GossipProtocol"]


class GossipProtocol(BroadcastProtocol):
    """Push gossip: ``fanout`` random in-range targets per informed agent per step.

    Targets are drawn among *all* neighbors within ``R`` (informed or not),
    modelling wasted transmissions as in standard gossip analyses.
    """

    name = "gossip"

    def __init__(self, *args, fanout: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        if fanout < 1:
            raise ValueError(f"fanout must be at least 1, got {fanout}")
        self.fanout = int(fanout)

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        pairs = self.engine.pairs_within(positions, self.radius)
        if pairs.size == 0:
            return np.empty(0, dtype=np.intp)
        # Directed contact list, both directions.
        src = np.concatenate([pairs[:, 0], pairs[:, 1]])
        dst = np.concatenate([pairs[:, 1], pairs[:, 0]])
        sending = self.informed[src]
        src = src[sending]
        dst = dst[sending]
        if src.size == 0:
            return np.empty(0, dtype=np.intp)
        # Per sender, keep `fanout` uniformly random contacts: shuffle via a
        # random key, then rank within each sender group.
        key = self.rng.uniform(size=src.size)
        order = np.lexsort((key, src))
        src = src[order]
        dst = dst[order]
        group_start = np.searchsorted(src, src, side="left")
        rank = np.arange(src.size) - group_start
        chosen = rank < self.fanout
        targets = dst[chosen]
        newly = np.unique(targets[~self.informed[targets]])
        return self._mark_informed(newly)
