"""Push gossip with bounded fanout.

Instead of broadcasting to everyone in range (flooding), each informed agent
pushes the message to at most ``fanout`` uniformly chosen neighbors per
step.  This is the classic bandwidth-limited baseline: coverage grows more
slowly than flooding, bounded below by it, and the gap quantifies how much
the paper's flooding-time bound depends on unlimited local bandwidth.

Both implementations sample by **neighbor index** against the
informed/uninformed cut instead of materializing the full contact list
(DESIGN.md, "Batched protocol framework"): a sender picking ``fanout``
uniform neighbors spreads the message iff a picked index falls below its
cut-degree, so only the cut contacts
(:meth:`~repro.geometry.neighbors.BoundSnapshot.contacts_within`), the
senders' total degrees (one ``count_within``), and ``fanout`` uniform
draws per cut-incident sender are needed — ``O(cut)`` per step instead of
``O(edges)``, which collapses the early (few informed) and late (few
uninformed) phases of a run.  Draw order is canonical — senders ascending,
their cut-neighbors ascending — so trajectories are independent of the
neighbor backend and the batched state replays the scalar draws
seed-for-seed.
"""

from __future__ import annotations

import numpy as np

from repro.protocols.base import (
    BatchBroadcastState,
    BroadcastProtocol,
    group_segments,
    sample_indices,
)

__all__ = ["GossipProtocol", "BatchGossipState"]


class GossipProtocol(BroadcastProtocol):
    """Push gossip: ``fanout`` random in-range targets per informed agent per step.

    Targets are drawn among *all* neighbors within ``R`` (informed or not),
    modelling wasted transmissions as in standard gossip analyses; senders
    whose picks all land on informed neighbors simply waste the step.
    """

    name = "gossip"

    def __init__(self, *args, fanout: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        if fanout < 1:
            raise ValueError(f"fanout must be at least 1, got {fanout}")
        self.fanout = int(fanout)

    def _exchange(self, positions: np.ndarray) -> np.ndarray:
        uninformed_idx = np.nonzero(~self.informed)[0]
        if uninformed_idx.size == 0:
            return np.empty(0, dtype=np.intp)
        informed_idx = np.nonzero(self.informed)[0]
        snapshot = self.engine.bind(positions, self.radius)
        s_cut, t_cut = snapshot.contacts_within(informed_idx, uninformed_idx)
        if s_cut.size == 0:
            return np.empty(0, dtype=np.intp)
        # Canonical order: senders ascending, cut-neighbors ascending.
        order = np.argsort(s_cut * self.n + t_cut)
        s_cut = s_cut[order]
        t_cut = t_cut[order]
        senders, cut_degree, offsets = group_segments(s_cut)
        # Total degree: every agent within R (minus the sender itself).
        degree = snapshot.count_within(self._all_idx, senders) - 1
        r = self.rng.uniform(size=(self.fanout, senders.size))
        picks = sample_indices(r, degree)
        # A sender's neighbors are canonically ordered cut-first, so a
        # picked index below the cut-degree informs that cut-neighbor.
        hit = (picks >= 0) & (picks < cut_degree[None, :])
        targets = t_cut[(offsets[None, :] + picks)[hit]]
        return self._mark_informed(np.unique(targets))


class BatchGossipState(BatchBroadcastState):
    """``B`` independent push-gossip runs in lock-step.

    One batched
    :meth:`~repro.geometry.neighbors.BatchBoundQuery.contacts_within` call
    materializes every replica's informed/uninformed cut, one batched
    ``count_within`` the sender degrees, and a single
    :func:`~repro.protocols.base.sample_indices` pass picks every sender's
    neighbors at once.  Only the uniform draws stay per replica — one
    ``uniform((fanout, S_b))`` call per replica per step, sized and
    ordered exactly like the scalar protocol's draw (replicas without
    cut-incident senders draw nothing, as the scalar early-returns before
    its draw).
    """

    name = "gossip"
    uses_rng = True

    def __init__(self, *args, fanout: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        if fanout < 1:
            raise ValueError(f"fanout must be at least 1, got {fanout}")
        self.fanout = int(fanout)

    def _exchange(self, snapshot, active: np.ndarray) -> np.ndarray:
        newly = np.zeros((self.batch_size, self.n), dtype=bool)
        source_mask = self.informed & active[:, None]
        query_mask = ~self.informed & active[:, None]
        rep, s_cut, t_cut = snapshot.contacts_within(source_mask, query_mask, self.radius)
        if rep.size == 0:
            return newly
        sender_gid = rep * self.n + s_cut
        order = np.argsort(sender_gid * self.n + t_cut)
        rep = rep[order]
        t_cut = t_cut[order]
        sender_gid = sender_gid[order]
        gids, cut_degree, offsets = group_segments(sender_gid)
        sender_rep = gids // self.n
        sender_agent = gids % self.n
        sender_mask = np.zeros((self.batch_size, self.n), dtype=bool)
        sender_mask[sender_rep, sender_agent] = True
        counts = snapshot.count_within(
            np.broadcast_to(active[:, None], sender_mask.shape), sender_mask, self.radius
        )
        degree = counts[sender_rep, sender_agent] - 1
        r = self._draw_uniform_blocks(sender_rep, self.fanout)
        picks = sample_indices(r, degree)
        hit = (picks >= 0) & (picks < cut_degree[None, :])
        pick_pos = (offsets[None, :] + picks)[hit]
        newly[rep[pick_pos], t_cut[pick_pos]] = True
        return self._mark_informed(newly)
