"""Experiment framework.

Each paper artifact (Figure 1, each theorem/lemma's supporting simulation)
is one module under :mod:`repro.experiments` exposing an
:class:`ExperimentSpec`.  Running a spec produces an
:class:`ExperimentResult`: a table (headers + rows), free-form notes, ASCII
artifacts (heatmaps), and a pass/fail verdict for the artifact's
shape-validation criterion.  The registry (:mod:`repro.experiments.registry`)
indexes the specs for the CLI and the benchmark suite.

Scales:

* ``"quick"`` — seconds; used by benchmarks and CI;
* ``"full"`` — the EXPERIMENTS.md numbers (minutes for the largest sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.viz.csvout import rows_to_csv_string
from repro.viz.tables import format_table

__all__ = ["ExperimentSpec", "ExperimentResult", "scale_params", "SCALES"]

SCALES = ("quick", "full")


def scale_params(scale: str, quick: dict, full: dict) -> dict:
    """Pick the parameter dict for a scale (with validation)."""
    if scale == "quick":
        return dict(quick)
    if scale == "full":
        return dict(full)
    raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    paper_ref: str
    headers: list
    rows: list
    notes: list = field(default_factory=list)
    artifacts: dict = field(default_factory=dict)
    passed: bool = None

    def to_text(self) -> str:
        """Full human-readable report."""
        lines = [f"== {self.experiment_id}: {self.title} ({self.paper_ref}) =="]
        if self.rows:
            lines.append(format_table(self.headers, self.rows))
        for name, artifact in self.artifacts.items():
            lines.append(f"-- {name} --")
            lines.append(artifact)
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.passed is not None:
            lines.append(f"shape check: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The table as CSV."""
        return rows_to_csv_string(self.headers, self.rows)


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered, runnable experiment."""

    id: str
    title: str
    paper_ref: str
    description: str
    runner: object  # callable (scale: str, seed: int) -> ExperimentResult

    def run(self, scale: str = "quick", seed: int = 0) -> ExperimentResult:
        """Execute the experiment at the given scale."""
        result = self.runner(scale=scale, seed=seed)
        if result.experiment_id != self.id:  # defensive consistency check
            raise RuntimeError(f"runner for {self.id!r} returned id {result.experiment_id!r}")
        return result
