"""Experiment framework.

Each paper artifact (Figure 1, each theorem/lemma's supporting simulation)
is one module under :mod:`repro.experiments` exposing an
:class:`ExperimentSpec`.  Running a spec produces an
:class:`ExperimentResult`: a table (headers + rows), free-form notes, ASCII
artifacts (heatmaps), and a pass/fail verdict for the artifact's
shape-validation criterion.  The registry (:mod:`repro.experiments.registry`)
indexes the specs for the CLI and the benchmark suite.

Scales:

* ``"quick"`` — seconds; used by benchmarks and CI;
* ``"full"`` — the EXPERIMENTS.md numbers (minutes for the largest sweeps).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.viz.csvout import rows_to_csv_string
from repro.viz.tables import format_table

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "scale_params",
    "adaptive_note",
    "SCALES",
]

SCALES = ("quick", "full")


def scale_params(scale: str, quick: dict, full: dict) -> dict:
    """Pick the parameter dict for a scale (with validation)."""
    if scale == "quick":
        return dict(quick)
    if scale == "full":
        return dict(full)
    raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


def adaptive_note(points, plan) -> str:
    """The standard adaptive-savings note for sweep experiments.

    Reports executed vs fixed-budget trial totals in a fixed format —
    ``repro.bench`` parses it to record adaptive savings, so the wording
    is load-bearing.
    """
    executed = sum(p.n_trials for p in points)
    fixed = sum(p.n_trials for p in plan)
    return f"adaptive stopping: {executed} trials vs {fixed} fixed budget"


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    ``passed`` is a tri-state: ``True`` / ``False`` for a decided shape
    check, ``None`` for "not applicable / not evaluated" — compare with
    ``is True`` / ``is False``, never truthiness (``None`` and ``False``
    must not collapse into one branch).
    """

    experiment_id: str
    title: str
    paper_ref: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    artifacts: dict[str, str] = field(default_factory=dict)
    passed: bool | None = None

    def to_text(self) -> str:
        """Full human-readable report."""
        lines = [f"== {self.experiment_id}: {self.title} ({self.paper_ref}) =="]
        if self.rows:
            lines.append(format_table(self.headers, self.rows))
        for name, artifact in self.artifacts.items():
            lines.append(f"-- {name} --")
            lines.append(artifact)
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.passed is not None:
            lines.append(f"shape check: {'PASS' if self.passed is True else 'FAIL'}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The table as CSV."""
        return rows_to_csv_string(self.headers, self.rows)


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered, runnable experiment.

    Runners take ``(scale, seed)``; sweep-scheduler experiments additionally
    accept ``engine`` (execution-engine override) and ``jobs`` (worker
    processes) — :meth:`run` threads those through only when the runner's
    signature accepts them, and refuses a non-default request otherwise.
    """

    id: str
    title: str
    paper_ref: str
    description: str
    runner: object  # callable (scale, seed[, engine, jobs, stopping, ...]) -> ExperimentResult

    def _runner_accepts(self, name: str) -> bool:
        parameters = inspect.signature(self.runner).parameters
        return name in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )

    @property
    def accepts_engine(self) -> bool:
        """Whether the runner supports the ``engine`` override."""
        return self._runner_accepts("engine")

    @property
    def accepts_jobs(self) -> bool:
        """Whether the runner supports multi-process ``jobs`` fan-out."""
        return self._runner_accepts("jobs")

    @property
    def accepts_stopping(self) -> bool:
        """Whether the runner supports adaptive sequential stopping."""
        return self._runner_accepts("stopping")

    @property
    def accepts_checkpoint(self) -> bool:
        """Whether the runner supports checkpoint/resume."""
        return self._runner_accepts("checkpoint")

    @property
    def accepts_workers(self) -> bool:
        """Whether the runner supports cooperative multi-worker execution."""
        return self._runner_accepts("workers")

    def run(
        self,
        scale: str = "quick",
        seed: int = 0,
        engine: str | None = None,
        jobs: int = 1,
        stopping=None,
        checkpoint: str | None = None,
        resume: bool = False,
        workers: int = 1,
        lease_ttl: float | None = None,
        max_retries: int | None = None,
    ) -> ExperimentResult:
        """Execute the experiment at the given scale.

        Args:
            scale: ``"quick"`` or ``"full"``.
            seed: root seed.
            engine: optional execution-engine override (``"scalar"`` /
                ``"batch"`` / ``"auto"``) for sweep-scheduler experiments;
                results are engine-independent by construction.
            jobs: worker processes for sweep-scheduler experiments.
            stopping: optional
                :class:`~repro.simulation.sweep.StoppingRule` — adaptive
                sequential stopping for sweep-scheduler experiments (the
                result is a bit-exact prefix of the fixed-budget run).
            checkpoint: optional checkpoint directory for sweep-scheduler
                experiments (partial results persisted after each batch).
            resume: continue the checkpoint in ``checkpoint`` bit-exactly.
            workers: cooperative worker processes to self-spawn against the
                shared ``checkpoint`` (lease-coordinated; results identical
                to a solo run).
            lease_ttl: cooperative lease time-to-live in seconds — joins
                this invocation to the workers already draining
                ``checkpoint``.
            max_retries: per-job crash retries before poison-job quarantine.
        """
        kwargs = {"scale": scale, "seed": seed}
        # Only thread a *requested* engine through: runners keep their own
        # defaults (e.g. protocol_baselines defaults to the batch engine).
        if engine is not None:
            if not self.accepts_engine:
                raise ValueError(
                    f"experiment {self.id!r} does not run through the sweep scheduler "
                    "and has no engine selection"
                )
            kwargs["engine"] = engine
        if jobs not in (None, 1):
            if not self.accepts_jobs:
                raise ValueError(
                    f"experiment {self.id!r} does not run through the sweep scheduler "
                    "and has no multi-process fan-out"
                )
            kwargs["jobs"] = jobs
        if stopping is not None:
            if not self.accepts_stopping:
                raise ValueError(
                    f"experiment {self.id!r} does not run through the sweep scheduler "
                    "and has no adaptive stopping"
                )
            kwargs["stopping"] = stopping
        if checkpoint is not None or resume:
            if not self.accepts_checkpoint:
                raise ValueError(
                    f"experiment {self.id!r} does not run through the sweep scheduler "
                    "and cannot checkpoint or resume"
                )
            kwargs["checkpoint"] = checkpoint
            kwargs["resume"] = resume
        if workers not in (None, 1) or lease_ttl is not None or max_retries is not None:
            if not self.accepts_workers:
                raise ValueError(
                    f"experiment {self.id!r} does not run through the sweep scheduler "
                    "and has no fault-tolerant multi-worker execution"
                )
            if workers not in (None, 1):
                kwargs["workers"] = workers
            if lease_ttl is not None:
                kwargs["lease_ttl"] = lease_ttl
            if max_retries is not None:
                kwargs["max_retries"] = max_retries
        result = self.runner(**kwargs)
        if result.experiment_id != self.id:  # defensive consistency check
            raise RuntimeError(f"runner for {self.id!r} returned id {result.experiment_id!r}")
        return result
