"""Registry of all experiments (one per paper artifact).

Modules self-describe via a module-level ``EXPERIMENT`` spec; the registry
imports them lazily so that ``import repro`` stays fast.
"""

from __future__ import annotations

import importlib

from repro.experiments.base import ExperimentResult, ExperimentSpec

__all__ = ["EXPERIMENT_MODULES", "all_ids", "get_spec", "run_experiment", "run_all"]

#: Experiment id -> module path.  Ordered as in DESIGN.md's index.
EXPERIMENT_MODULES = {
    "fig1_spatial": "repro.experiments.fig1_spatial",
    "fig1_destination": "repro.experiments.fig1_destination",
    "thm1_spatial": "repro.experiments.thm1_spatial",
    "thm2_destination": "repro.experiments.thm2_destination",
    "lemma6_rows": "repro.experiments.lemma6_rows",
    "lemma7_density": "repro.experiments.lemma7_density",
    "cor12_large_r": "repro.experiments.cor12_large_r",
    "thm3_radius": "repro.experiments.thm3_radius",
    "thm3_speed": "repro.experiments.thm3_speed",
    "thm3_scaling": "repro.experiments.thm3_scaling",
    "suburb_vs_cz": "repro.experiments.suburb_vs_cz",
    "connectivity": "repro.experiments.connectivity",
    "lemma13_turns": "repro.experiments.lemma13_turns",
    "lemma14_segments": "repro.experiments.lemma14_segments",
    "lemma15_suburb": "repro.experiments.lemma15_suburb",
    "thm18_lower": "repro.experiments.thm18_lower",
    "meeting_suburb": "repro.experiments.meeting_suburb",
    "protocol_baselines": "repro.experiments.protocol_baselines",
    "mobility_ablation": "repro.experiments.mobility_ablation",
    "transit_backbone": "repro.experiments.transit_backbone",
    "init_bias": "repro.experiments.init_bias",
    "thm10_growth": "repro.experiments.thm10_growth",
    "regime_map": "repro.experiments.regime_map",
    "trip_lengths": "repro.experiments.trip_lengths",
    "pause_extension": "repro.experiments.pause_extension",
    "speed_decay": "repro.experiments.speed_decay",
    "fault_tolerance": "repro.experiments.fault_tolerance",
}


def all_ids() -> list:
    """All experiment ids, in index order."""
    return list(EXPERIMENT_MODULES)


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Load the spec for an experiment id."""
    if experiment_id not in EXPERIMENT_MODULES:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENT_MODULES)}"
        )
    module = importlib.import_module(EXPERIMENT_MODULES[experiment_id])
    return module.EXPERIMENT


def run_experiment(
    experiment_id: str,
    scale: str = "quick",
    seed: int = 0,
    engine: str | None = None,
    jobs: int = 1,
    stopping=None,
    checkpoint: str | None = None,
    resume: bool = False,
    workers: int = 1,
    lease_ttl: float | None = None,
    max_retries: int | None = None,
) -> ExperimentResult:
    """Run one experiment by id.

    ``engine`` / ``jobs`` / ``stopping`` / ``checkpoint`` / ``resume`` /
    ``workers`` / ``lease_ttl`` / ``max_retries`` thread through to
    sweep-scheduler experiments (see
    :meth:`~repro.experiments.base.ExperimentSpec.run`); requesting any of
    them on an experiment without scheduler support raises.
    """
    return get_spec(experiment_id).run(
        scale=scale,
        seed=seed,
        engine=engine,
        jobs=jobs,
        stopping=stopping,
        checkpoint=checkpoint,
        resume=resume,
        workers=workers,
        lease_ttl=lease_ttl,
        max_retries=max_retries,
    )


def run_all(
    scale: str = "quick",
    seed: int = 0,
    engine: str | None = None,
    jobs: int = 1,
    stopping=None,
) -> list:
    """Run every registered experiment; returns the results in index order.

    ``engine`` / ``jobs`` / ``stopping`` apply to the experiments that
    support them (the sweep-scheduler suite) and are skipped for the rest —
    a whole-suite run must not fail because closed-form experiments have no
    engine knob.  Checkpoints are per-sweep (one directory per plan), so
    ``run_all`` deliberately has no checkpoint parameter.
    """
    results = []
    for eid in all_ids():
        spec = get_spec(eid)
        results.append(
            spec.run(
                scale=scale,
                seed=seed,
                engine=engine if spec.accepts_engine else None,
                jobs=jobs if spec.accepts_jobs else 1,
                stopping=stopping if spec.accepts_stopping else None,
            )
        )
    return results
