"""Lemma 15: the Suburb's corner regions reach at most ``S`` into the square.

``S = 3 L^3 log n / (2 l^2 n)`` bounds both coordinates of every point in
the south-west Suburb corner.  We build the Definition-4 partition across
parameter settings and compare the measured corner extent with ``S``
(also reporting the slack, which the asymptotically un-optimized constant
makes large).
"""

from __future__ import annotations

import math

from repro.core.cells import CellGrid
from repro.core.zones import ZonePartition
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params

EXPERIMENT_ID = "lemma15_suburb"


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    del seed  # deterministic
    params = scale_params(
        scale,
        quick={"settings": [(2_000, 1.2), (2_000, 1.6), (10_000, 1.3), (10_000, 2.0)]},
        full={
            "settings": [
                (2_000, 1.2),
                (2_000, 1.6),
                (10_000, 1.3),
                (10_000, 2.0),
                (100_000, 1.2),
                (100_000, 1.8),
                (1_000_000, 1.2),
            ]
        },
    )
    rows = []
    checks = []
    for n, radius_factor in params["settings"]:
        side = math.sqrt(n)
        radius = radius_factor * math.sqrt(math.log(n))
        grid = CellGrid.for_radius(side, radius)
        zones = ZonePartition(grid, n)
        extent = zones.suburb_corner_extent()
        bound = zones.suburb_bound
        ok = extent <= bound + 1e-9
        checks.append(ok)
        rows.append(
            [
                n,
                round(radius, 2),
                grid.m,
                zones.n_suburb_cells,
                round(extent, 2),
                round(bound, 2),
                round(bound / extent, 1) if extent > 0 else "-",
                "ok" if ok else "VIOLATED",
            ]
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Suburb corner extent vs S (Lemma 15)",
        paper_ref="Lemma 15",
        headers=[
            "n",
            "R",
            "m",
            "suburb cells",
            "measured extent",
            "S bound",
            "slack factor",
            "verdict",
        ],
        rows=rows,
        notes=[
            "extent = furthest reach (in x or y) of SW-corner Suburb cells;",
            "S's constant is loose by design — the check is extent <= S.",
        ],
        passed=all(checks),
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Suburb corner extent vs S (Lemma 15)",
    paper_ref="Lemma 15",
    description="Measured Suburb reach against the closed-form diameter bound S.",
    runner=run,
)
