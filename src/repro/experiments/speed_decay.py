"""Extension: random trip speeds — the speed-decay trap and its exact fix.

When each trip draws its speed from ``Uniform[v_min, v_max]``, a cold-
started simulation's average speed *decays* over time toward the
duration-biased mean ``(v_max - v_min)/ln(v_max/v_min)`` — the classic
"random waypoint considered harmful" artifact that skews any
mobility-dependent measurement (flooding time included).  Perfect
simulation starts at the stationary law and shows no transient; the
spatial law meanwhile stays Theorem 1 exactly (speed and geometry
factorize).  All three facts are measured here.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.validation import spatial_distribution_tv
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.speed_range import (
    RandomSpeedManhattanWaypoint,
    cold_start_speed_decay,
    stationary_mean_speed,
)

EXPERIMENT_ID = "speed_decay"
SIDE = 30.0


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"agents": 10_000, "steps": 200, "checkpoints": 4},
        full={"agents": 50_000, "steps": 1_000, "checkpoints": 8},
    )
    v_min, v_max = 0.05, 1.0
    agents = params["agents"]

    # Cold start: the decay curve.
    decay = cold_start_speed_decay(
        agents, SIDE, v_min, v_max, steps=params["steps"],
        rng=np.random.default_rng(seed),
        every=max(1, params["steps"] // params["checkpoints"]),
    )
    rows = [["-- cold start --", "", ""]]
    for step, speed in zip(decay["steps"], decay["mean_speed"]):
        rows.append([int(step), round(float(speed), 4), ""])

    # Perfect simulation: no transient.
    model = RandomSpeedManhattanWaypoint(
        agents, SIDE, v_min, v_max, rng=np.random.default_rng(seed + 1)
    )
    start_speed = model.mean_current_speed
    model.advance(params["steps"] // 4)
    end_speed = model.mean_current_speed
    tv = spatial_distribution_tv(model.positions, SIDE, bins=8)
    stationary = stationary_mean_speed(v_min, v_max)
    rows.append(["-- perfect simulation --", "", ""])
    rows.append(["step 0", round(start_speed, 4), ""])
    rows.append([f"step {params['steps'] // 4}", round(end_speed, 4), ""])
    rows.append(["stationary mean (theory)", round(stationary, 4), ""])
    rows.append(["uniform mean (biased start)", round(decay["uniform_mean"], 4), ""])
    rows.append(["spatial TV vs Theorem 1", round(tv, 4), ""])

    series = decay["mean_speed"]
    gap0 = series[0] - stationary
    gap_end = series[-1] - stationary
    decays = series[-1] < series[0] and gap_end < 0.5 * gap0
    no_transient = (
        abs(start_speed - stationary) <= 0.03 * stationary
        and abs(end_speed - stationary) <= 0.03 * stationary
    )
    spatial_ok = tv < 0.05
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Random trip speeds: decay transient vs perfect simulation",
        paper_ref="Section 3 direction / Random-Trip literature (refs [21-23])",
        headers=["checkpoint", "mean current speed", ""],
        rows=rows,
        notes=[
            f"speed range [{v_min}, {v_max}]: uniform mean {decay['uniform_mean']:.3f}, "
            f"stationary (duration-biased) mean {stationary:.3f};",
            "cold starts decay toward the stationary mean — the 'considered",
            "harmful' artifact; perfect simulation starts there (no transient)",
            "and the spatial law remains Theorem 1 (speed/geometry factorize).",
        ],
        passed=decays and no_transient and spatial_ok,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Random trip speeds: decay transient vs perfect simulation",
    paper_ref="Section 3 direction / Random-Trip literature (refs [21-23])",
    description="Speed-decay transient of cold starts vs the exact stationary speed law.",
    runner=run,
)
