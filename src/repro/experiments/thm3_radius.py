"""Theorem 3, radius sweep: flooding time is decreasing in ``R``.

With ``L = sqrt n`` and fixed speed, the bound ``O(L/R + S/v)`` falls as
``R`` grows (both terms: ``S ~ 1/R^2``).  The sweep measures mean flooding
time across radii, reports the bound alongside, and checks that the measured
series is (noise-tolerantly) decreasing and stays above the trivial
information-speed lower bound.

Runs through the sweep scheduler (``engine="auto"`` batch dispatch,
optional ``jobs=`` fan-out) with the same per-point seed schedule — and
therefore the same table — as the pre-scheduler loop.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import theory
from repro.experiments.base import (
    ExperimentResult,
    ExperimentSpec,
    adaptive_note,
    scale_params,
)
from repro.simulation.config import FloodingConfig
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "thm3_radius"


def run(
    scale: str = "quick",
    seed: int = 0,
    engine: str | None = None,
    jobs: int = 1,
    stopping=None,
    checkpoint: str | None = None,
    resume: bool = False,
    workers: int = 1,
    lease_ttl: float | None = None,
    max_retries: int | None = None,
) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 2_000, "factors": [1.2, 1.6, 2.2, 3.0], "trials": 3},
        full={"n": 8_000, "factors": [1.2, 1.5, 2.0, 2.6, 3.4, 4.5, 6.0], "trials": 10},
    )
    n = params["n"]
    side = math.sqrt(n)
    speed = 0.25 * params["factors"][0] * math.sqrt(math.log(n))  # fixed across the sweep

    plan = SweepPlan()
    for k, factor in enumerate(params["factors"]):
        plan.add(
            FloodingConfig(
                n=n,
                side=side,
                radius=factor * math.sqrt(math.log(n)),
                speed=speed,
                max_steps=20_000,
                seed=seed + 1000 * k,
            ),
            params["trials"],
            key=factor,
        )
    points = run_sweep(
        plan,
        engine=engine or "auto",
        jobs=jobs,
        stopping=stopping,
        checkpoint=checkpoint,
        resume=resume,
        workers=workers,
        lease_ttl=lease_ttl,
        max_retries=max_retries,
    )

    rows = []
    means = []
    for point in points:
        summary = point.summary
        radius = point.config.radius
        means.append(summary.mean)
        lower = theory.geometric_lower_bound(side, radius, speed)
        rows.append(
            [
                round(point.key, 2),
                round(radius, 2),
                round(summary.mean, 1),
                round(summary.minimum, 1),
                round(summary.maximum, 1),
                round(lower, 1),
                round(theory.cz_flooding_bound(side, radius), 1),
                summary.n_finite,
            ]
        )

    means_arr = np.asarray(means)
    decreasing = bool(np.all(means_arr[1:] <= means_arr[:-1] * 1.15))
    above_lower = all(
        row[2] >= theory.geometric_lower_bound(side, row[1], speed) * 0.5 for row in rows
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Flooding time vs transmission radius (Theorem 3)",
        paper_ref="Theorem 3",
        headers=[
            "radius factor",
            "R",
            "mean T_flood",
            "min",
            "max",
            "L/(R+2v) lower",
            "18 L/R (CZ bound)",
            "completed trials",
        ],
        rows=rows,
        notes=[
            f"n={n}, L={side:.1f}, v={speed:.3f} fixed across the sweep;",
            "Theorem 3 predicts a decreasing curve; 15% noise slack allowed.",
        ]
        + ([adaptive_note(points, plan)] if stopping is not None else []),
        passed=decreasing and above_lower,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Flooding time vs transmission radius (Theorem 3)",
    paper_ref="Theorem 3",
    description="Radius sweep at fixed speed: flooding time decreasing in R.",
    runner=run,
)
