"""Lemma 7: the density condition — CZ cores hold ``eta log n`` agents.

Mechanism check.  A Central-Zone cell of mass ``F log n / n`` (``F`` =
Definition 4's threshold factor) holds ``F log n`` agents in expectation;
its core (1/9 of the area) about ``F log n / 9``.  The lemma's event *D*
(every CZ core above ``eta log n`` at every step) therefore needs a large
enough ``F`` — the paper's un-optimized ``F = 3/8`` relies on its equally
un-optimized radius constant.  We sweep ``F`` at a fixed generous radius
and record the *minimum* core occupancy over all CZ cells and steps: it
must track ``F log n / 9`` and exceed ``log n`` once ``F`` is large —
exactly Lemma 7's content with calibrated constants.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.cells import CellGrid
from repro.core.density import DensityCondition
from repro.core.zones import ZonePartition
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.mrwp import ManhattanRandomWaypoint

EXPERIMENT_ID = "lemma7_density"


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 4_000, "fractions": [0.05, 0.3, 0.8], "steps": 20},
        full={"n": 20_000, "fractions": [0.015, 0.05, 0.15, 0.3, 0.5, 0.8], "steps": 80},
    )
    n = params["n"]
    side = math.sqrt(n)
    log_n = math.log(n)
    radius = 10.0 * math.sqrt(log_n)  # generous cells so large F keeps a CZ
    grid = CellGrid.for_radius(side, radius)
    model = ManhattanRandomWaypoint(
        n, side, speed=radius / 8.0, rng=np.random.default_rng(seed)
    )
    # The largest usable Definition-4 factor at this grid: the densest
    # cell's mass expressed in log n / n units.  Factors are chosen as
    # fractions of it so the Central Zone never empties.
    max_factor = float(grid.all_cell_masses().max()) * n / log_n
    factors = [round(frac * max_factor, 2) for frac in params["fractions"]]

    rows = []
    min_occs = []
    for factor in factors:
        zones = ZonePartition(grid, n, threshold_factor=factor)
        if zones.n_central_cells == 0:
            rows.append([factor, 0, "-", "-", "-", "-"])
            continue
        condition = DensityCondition(grid, zones, eta=1.0)
        model.reset(np.random.default_rng(seed))
        report = condition.monitor(model, params["steps"])
        min_occ = int(report["min_occupancy"].min())
        predicted = factor * log_n / 9.0
        min_occs.append(min_occ)
        rows.append(
            [
                factor,
                zones.n_central_cells,
                min_occ,
                round(predicted, 1),
                round(log_n, 2),
                round(min_occ / log_n, 2),
            ]
        )

    # Lemma 7 asks for "eta log n for a suitable positive constant eta"; the
    # minimum over |CZ| * steps Poisson draws sits well below the per-cell
    # mean, so eta = 0.5 is the declared constant of the check.
    eta = 0.5
    monotone = all(b >= a for a, b in zip(min_occs, min_occs[1:]))
    achieves_logn = bool(min_occs) and min_occs[-1] >= eta * log_n
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Density condition in CZ cores (Lemma 7)",
        paper_ref="Lemma 7 / Definition 4",
        headers=[
            "threshold factor F",
            "CZ cells",
            "min core occupancy (all cells, all steps)",
            "predicted F log n / 9",
            "log n",
            "min occ / log n",
        ],
        rows=rows,
        notes=[
            f"n={n}, L={side:.1f}, R={radius:.1f} (m={grid.m}), {params['steps']} steps;",
            f"factors are fractions of the max usable Def-4 factor ({max_factor:.1f})",
            "at this grid; minimum core occupancy tracks F log n / 9 and exceeds",
            "eta log n (eta = 0.5, the lemma's 'suitable constant') at large F.",
        ],
        passed=monotone and achieves_logn,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Density condition in CZ cores (Lemma 7)",
    paper_ref="Lemma 7 / Definition 4",
    description="Minimum CZ-core occupancy vs the Definition-4 threshold factor.",
    runner=run,
)
