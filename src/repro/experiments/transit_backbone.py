"""Transit backbone: scheduled vehicles vs the paper's homogeneous regimes.

The paper's flooding bound holds for a *homogeneous* MRWP population; its
engineering counterpart for the disconnected-Suburb problem is a scheduled
transit backbone (paper ref [30], message ferries).  This experiment runs
the same flooding workload under four regimes on one sweep plan:

* ``mrwp`` — the paper's homogeneous population (the baseline);
* ``random-direction`` — the uniform-density comparison regime of the
  paper's earlier companions (no corner penalty);
* ``composite`` — MRWP pedestrians plus a zero-dwell ferry patrol;
* ``timetable`` — scheduled vehicles with dwell and capacity, plus a
  rider population that boards/alights (the PR 9 timetable family).

All four mobilities are batch-native, so ``engine="auto"`` vectorizes the
whole plan; ``--jobs`` fans the arms out across processes.  The question
the table answers: does a small scheduled backbone (~0.5% of agents)
change flooding time at the paper's canonical density?  The measured
answer is *no* — the MRWP crowd is already an ample information carrier,
so the backbone's main effect is that wall-hugging vehicles join the
flood last (a mild slowdown, bounded by the soft gate below).  The
backbone story is about *delivery guarantees* in disconnected regimes,
not about speeding up an already-supercritical flood — exactly the
contrast the paper draws with ref [30].
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.simulation.config import FloodingConfig
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "transit_backbone"


def run(scale: str = "quick", seed: int = 0, engine: str | None = None, jobs: int = 1) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 2_000, "radius_factor": 1.3, "trials": 3, "vehicles": 10},
        full={"n": 8_000, "radius_factor": 1.3, "trials": 10, "vehicles": 40},
    )
    n = params["n"]
    vehicles = params["vehicles"]
    side = math.sqrt(n)
    radius = params["radius_factor"] * math.sqrt(math.log(n))
    speed = 0.25 * radius

    # The backbone patrols near the walls — where MRWP density (and hence
    # flooding progress) is lowest.  Dwell is a couple of steps so riders
    # can board; capacity keeps single vehicles from carrying whole crowds.
    arms = [
        ("mrwp", "mrwp", {}),
        ("random-direction", "random-direction", {}),
        ("composite", "composite", {"ferries": vehicles, "inset": side / 8.0}),
        (
            "timetable",
            "timetable",
            {
                "riders": n - vehicles,
                "dwell": 2.0,
                "capacity": 8,
                "board_radius": radius,
            },
        ),
    ]

    plan = SweepPlan()
    for key, mobility, options in arms:
        plan.add(
            FloodingConfig(
                n=n,
                side=side,
                radius=radius,
                speed=speed,
                max_steps=30_000,
                mobility=mobility,
                mobility_options=options,
                seed=seed,
                track_zones=(mobility == "mrwp"),
            ),
            params["trials"],
            key=key,
        )
    points = run_sweep(plan, engine=engine or "auto", jobs=jobs)

    rows = []
    means = {}
    for point in points:
        summary = point.summary
        means[point.key] = summary.mean
        rows.append(
            [
                point.key,
                round(summary.mean, 1) if summary.n_finite else "never",
                round(summary.std, 1),
                round(summary.minimum, 1) if summary.n_finite else "-",
                round(summary.maximum, 1) if summary.n_finite else "-",
                summary.n_finite,
            ]
        )
    for row in rows:
        key = row[0]
        if key == "mrwp" or not means.get(key) or not means.get("mrwp"):
            row.append("-")
        else:
            row.append(round(means["mrwp"] / means[key], 2))

    # Soft gate: a 0.5% scheduled backbone must not materially hurt — both
    # transit arms finish within 50% of the homogeneous MRWP baseline
    # (measured: ~1.0-1.2x, the excess being wall-hugging vehicles joining
    # the flood last; the slack absorbs quick-scale variance).
    transit_ok = all(
        means[key] <= 1.5 * means["mrwp"]
        for key in ("composite", "timetable")
        if means.get(key) and means.get("mrwp")
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Flooding time: transit backbone vs homogeneous mobility",
        paper_ref="Section 1 / ref [30]",
        headers=[
            "regime",
            "mean T_flood",
            "std",
            "min",
            "max",
            "completed trials",
            "speedup vs mrwp",
        ],
        rows=rows,
        notes=[
            f"identical (n, L, R, v) = ({n}, {side:.1f}, {radius:.2f}, {speed:.3f});",
            f"backbone = {vehicles} scheduled vehicles ({vehicles / n:.2%} of agents)",
            "patrolling the wall loop; the timetable arm adds dwell=2,",
            "capacity=8 stops with a boarding rider population.",
            "At this supercritical density the crowd itself carries the",
            "flood, so the backbone is delivery insurance, not a speedup",
            "(wall-hugging vehicles are the last agents informed).",
        ],
        passed=transit_ok,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Flooding time: transit backbone vs homogeneous mobility",
    paper_ref="Section 1 / ref [30]",
    description="Flooding over transit+pedestrian composites vs the paper's homogeneous regimes.",
    runner=run,
)
