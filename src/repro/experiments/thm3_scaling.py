"""Theorem 3, scaling in ``n``: the canonical ``L = sqrt n`` regime.

With ``R = c sqrt(log n)`` and ``v = Theta(R)``, the bound's dominant term
is ``L/R = sqrt(n / log n) / c`` — flooding time grows like ``~ n^(1/2)``
up to the log factor.  The sweep fits a power law to measured flooding
times across ``n`` and checks the exponent lands near 1/2.

The grid runs through the sweep scheduler
(:func:`repro.simulation.sweep.run_sweep`): one plan, every point batched
through ``engine="auto"`` by default, optional ``jobs=`` process fan-out —
same seed schedule (and therefore the same table) as the pre-scheduler
point-by-point loop.
"""

from __future__ import annotations

from repro.analysis.scaling import fit_power_law
from repro.experiments.base import (
    ExperimentResult,
    ExperimentSpec,
    adaptive_note,
    scale_params,
)
from repro.simulation.config import standard_config
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "thm3_scaling"


def run(
    scale: str = "quick",
    seed: int = 0,
    engine: str | None = None,
    jobs: int = 1,
    stopping=None,
    checkpoint: str | None = None,
    resume: bool = False,
    workers: int = 1,
    lease_ttl: float | None = None,
    max_retries: int | None = None,
) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"ns": [500, 1_000, 2_000, 4_000], "trials": 3, "radius_factor": 1.3},
        full={"ns": [500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000], "trials": 8,
              "radius_factor": 1.3},
    )
    plan = SweepPlan()
    for k, n in enumerate(params["ns"]):
        plan.add(
            standard_config(
                n,
                radius_factor=params["radius_factor"],
                speed_fraction=0.25,
                max_steps=30_000,
                seed=seed + 1000 * k,
            ),
            params["trials"],
            key=n,
        )
    points = run_sweep(
        plan,
        engine=engine or "auto",
        jobs=jobs,
        stopping=stopping,
        checkpoint=checkpoint,
        resume=resume,
        workers=workers,
        lease_ttl=lease_ttl,
        max_retries=max_retries,
    )

    rows = []
    ns = []
    means = []
    for point in points:
        summary = point.summary
        ns.append(point.key)
        means.append(summary.mean)
        predicted = point.config.side / point.config.radius
        rows.append(
            [
                point.key,
                round(point.config.side, 1),
                round(point.config.radius, 2),
                round(summary.mean, 1),
                round(summary.std, 1),
                round(predicted, 1),
                round(summary.mean / predicted, 2),
                summary.n_finite,
            ]
        )

    fit = fit_power_law(ns, means)
    theory_exponent = 0.5  # L/R = sqrt(n/log n)/c: exponent 1/2 minus a log drag
    passed = fit.r2 >= 0.9 and 0.25 <= fit.exponent <= 0.7
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Flooding-time scaling in n (Theorem 3, L = sqrt n)",
        paper_ref="Theorem 3",
        headers=[
            "n",
            "L",
            "R",
            "mean T_flood",
            "std",
            "L/R",
            "T / (L/R)",
            "completed trials",
        ],
        rows=rows,
        notes=[
            f"power-law fit: T ~ {fit.amplitude:.2f} * n^{fit.exponent:.3f} (R^2 = {fit.r2:.4f});",
            f"theory predicts exponent ~{theory_exponent} (sqrt(n/log n) has effective "
            "slope slightly below 1/2 over this range);",
            "T / (L/R) staying bounded is the bound-tightness signal.",
        ]
        + ([adaptive_note(points, plan)] if stopping is not None else []),
        passed=passed,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Flooding-time scaling in n (Theorem 3, L = sqrt n)",
    paper_ref="Theorem 3",
    description="Power-law fit of flooding time vs n in the canonical scaling.",
    runner=run,
)
