"""Connectivity: connected Central Zone, disconnected corners, growing gap.

Section 1's setup: under MRWP the connectivity threshold of the full
snapshot is exponentially above the uniform-case ``Theta(sqrt(log n))``
(ref [13]), because the corners are nearly empty — yet the Central Zone
sub-network connects at small radii.  Two measurements:

1. a giant-component / isolation profile of stationary snapshots across a
   radius sweep (the connectivity transition);
2. empirical connectivity thresholds across ``n`` — full graph vs CZ-only
   vs the Gupta-Kumar uniform benchmark.  The deepest occupied corner
   point sits at depth ``~ (L^3/n)^(1/3)``, so the full/uniform threshold
   ratio grows like ``n^(1/6) / sqrt(log n)`` — the finite-``n`` footprint
   of ref [13]'s "some root of n".

Execution runs through the batched network-analytics layer and the sweep
scheduler's worker machinery: ``engine="batch"`` (the ``"auto"`` default)
stacks each panel's snapshots into one tensor and answers them with a
single tiled enumeration + incremental union-find replay
(:func:`~repro.network.connectivity.batch_connectivity_profile`,
:func:`~repro.network.connectivity.batch_connectivity_threshold`);
``jobs > 1`` fans the per-``n`` threshold estimations over a
crash-surviving :class:`~repro.simulation.parallel.WorkerPool`.  Snapshots
are sampled before any analysis, so the tables are identical for every
engine/jobs combination.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.flooding import build_zone_partition
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.stationary import PalmStationarySampler
from repro.network.connectivity import (
    batch_connectivity_profile,
    batch_connectivity_threshold,
    connectivity_profile,
    estimate_connectivity_threshold,
    uniform_connectivity_threshold,
)
from repro.simulation.parallel import WorkerPool

EXPERIMENT_ID = "connectivity"

_ENGINES = ("auto", "batch", "scalar")


def _resolve_engine(engine: str | None) -> str:
    engine = engine or "auto"
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    return "batch" if engine == "auto" else engine


def _mean_thresholds(n: int, snapshots: int, rng, engine: str = "batch") -> tuple:
    """Mean empirical thresholds (full, CZ-only) over stationary snapshots.

    Snapshots are sampled up front (estimation draws nothing from ``rng``,
    so the sample stream is engine-independent); the full-graph thresholds
    then run through one batched Borůvka pass, while the CZ-only
    thresholds stay scalar (the masked sub-populations are ragged).
    """
    side = math.sqrt(n)
    sampler = PalmStationarySampler(side)
    zones = build_zone_partition(n, side, 1.3 * math.sqrt(math.log(n)))
    snapshot_positions = [sampler.sample(n, rng).positions for _ in range(snapshots)]
    if engine == "batch":
        stack = np.stack(snapshot_positions, axis=0)
        full = batch_connectivity_threshold(stack, side).tolist()
    else:
        full = [
            estimate_connectivity_threshold(positions, side)
            for positions in snapshot_positions
        ]
    cz = []
    if zones is not None:
        for positions in snapshot_positions:
            mask = zones.in_central_zone(positions)
            cz.append(estimate_connectivity_threshold(positions, side, mask=mask))
    return (float(np.mean(full)), float(np.mean(cz)) if cz else float("nan"))


def _threshold_job(args) -> tuple:
    """Picklable per-``n`` threshold job for the worker pool."""
    n, snapshots, job_seed, engine = args
    return _mean_thresholds(n, snapshots, np.random.default_rng(job_seed), engine=engine)


def run(
    scale: str = "quick",
    seed: int = 0,
    engine: str | None = None,
    jobs: int = 1,
) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"profile_n": 2_000, "snapshots": 2, "threshold_ns": [500, 2_000, 8_000]},
        full={"profile_n": 16_000, "snapshots": 4, "threshold_ns": [500, 2_000, 8_000, 32_000]},
    )
    engine = _resolve_engine(engine)
    rng = np.random.default_rng(seed)

    # Panel 1: transition profile at one n.
    n = params["profile_n"]
    side = math.sqrt(n)
    base = math.sqrt(math.log(n))
    sampler = PalmStationarySampler(side)
    radii = [0.4 * base, 0.6 * base, 0.8 * base, 1.2 * base, 2.0 * base]
    snapshot_positions = [
        sampler.sample(n, rng).positions for _ in range(params["snapshots"])
    ]
    if engine == "batch":
        stacked = batch_connectivity_profile(np.stack(snapshot_positions, axis=0), side, radii)
        profiles = [
            {key: val[b] if np.ndim(val) > 1 else val for key, val in stacked.items()}
            for b in range(params["snapshots"])
        ]
    else:
        profiles = [
            connectivity_profile(positions, side, radii)
            for positions in snapshot_positions
        ]
    rows = [["-- profile --", f"n={n}", "", "", ""]]
    for k, radius in enumerate(radii):
        rows.append(
            [
                round(radius / base, 2),
                round(radius, 2),
                round(float(np.mean([p["giant_fraction"][k] for p in profiles])), 4),
                round(float(np.mean([p["isolated_fraction"][k] for p in profiles])), 4),
                round(float(np.mean([float(p["connected"][k]) for p in profiles])), 2),
            ]
        )

    # Panel 2: threshold scaling across n, fanned over the worker pool.
    rows.append(["-- thresholds --", "full", "CZ-only", "uniform benchmark", "full/uniform"])
    threshold_jobs = [
        (tn, params["snapshots"], seed + 10 + k, engine)
        for k, tn in enumerate(params["threshold_ns"])
    ]
    with WorkerPool(max_workers=jobs or 1) as pool:
        thresholds = pool.map(
            _threshold_job, threshold_jobs, labels=[f"n={tn}" for tn, *_rest in threshold_jobs]
        )
    ratios = []
    cz_below_full = []
    for (tn, *_rest), (full_thr, cz_thr) in zip(threshold_jobs, thresholds):
        uniform_thr = uniform_connectivity_threshold(tn, math.sqrt(tn))
        ratio = full_thr / uniform_thr
        ratios.append(ratio)
        cz_below_full.append(not math.isfinite(cz_thr) or cz_thr <= full_thr)
        rows.append(
            [f"n={tn}", round(full_thr, 2), round(cz_thr, 2), round(uniform_thr, 2), round(ratio, 2)]
        )

    ratio_grows = all(b >= a * 0.95 for a, b in zip(ratios, ratios[1:])) and ratios[-1] > ratios[0]
    passed = ratios[-1] >= 1.5 and ratio_grows and all(cz_below_full)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Connectivity profile: Central Zone vs full square",
        paper_ref="Section 1 / ref [13] / refs [18, 27]",
        headers=[
            "R / sqrt(log n)",
            "R",
            "mean giant fraction",
            "mean isolated fraction",
            "fraction connected",
        ],
        rows=rows,
        notes=[
            "the giant component saturates long before full connectivity: the last",
            "holdouts are deep-corner agents — the Suburb of Definition 4;",
            "the full/uniform threshold ratio grows with n (~ n^(1/6)/sqrt(log n)),",
            "the finite-n footprint of ref [13]'s exponentially-higher threshold;",
            "thresholds are exact MST bottlenecks (scipy MST or Borůvka fallback).",
        ],
        passed=passed,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Connectivity profile: Central Zone vs full square",
    paper_ref="Section 1 / ref [13] / refs [18, 27]",
    description="Connectivity transition profile and threshold scaling (full vs CZ vs uniform).",
    runner=run,
)
