"""Connectivity: connected Central Zone, disconnected corners, growing gap.

Section 1's setup: under MRWP the connectivity threshold of the full
snapshot is exponentially above the uniform-case ``Theta(sqrt(log n))``
(ref [13]), because the corners are nearly empty — yet the Central Zone
sub-network connects at small radii.  Two measurements:

1. a giant-component / isolation profile of stationary snapshots across a
   radius sweep (the connectivity transition);
2. empirical connectivity thresholds across ``n`` — full graph vs CZ-only
   vs the Gupta-Kumar uniform benchmark.  The deepest occupied corner
   point sits at depth ``~ (L^3/n)^(1/3)``, so the full/uniform threshold
   ratio grows like ``n^(1/6) / sqrt(log n)`` — the finite-``n`` footprint
   of ref [13]'s "some root of n".
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.flooding import build_zone_partition
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.stationary import PalmStationarySampler
from repro.network.connectivity import (
    connectivity_profile,
    estimate_connectivity_threshold,
    uniform_connectivity_threshold,
)

EXPERIMENT_ID = "connectivity"


def _mean_thresholds(n: int, snapshots: int, rng) -> tuple:
    """Mean empirical thresholds (full, CZ-only) over stationary snapshots."""
    side = math.sqrt(n)
    sampler = PalmStationarySampler(side)
    zones = build_zone_partition(n, side, 1.3 * math.sqrt(math.log(n)))
    full = []
    cz = []
    for _ in range(snapshots):
        positions = sampler.sample(n, rng).positions
        full.append(estimate_connectivity_threshold(positions, side))
        if zones is not None:
            mask = zones.in_central_zone(positions)
            cz.append(estimate_connectivity_threshold(positions, side, mask=mask))
    return (float(np.mean(full)), float(np.mean(cz)) if cz else float("nan"))


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"profile_n": 2_000, "snapshots": 2, "threshold_ns": [500, 2_000, 8_000]},
        full={"profile_n": 16_000, "snapshots": 4, "threshold_ns": [500, 2_000, 8_000, 32_000]},
    )
    rng = np.random.default_rng(seed)

    # Panel 1: transition profile at one n.
    n = params["profile_n"]
    side = math.sqrt(n)
    base = math.sqrt(math.log(n))
    sampler = PalmStationarySampler(side)
    radii = [0.4 * base, 0.6 * base, 0.8 * base, 1.2 * base, 2.0 * base]
    profiles = []
    for _ in range(params["snapshots"]):
        positions = sampler.sample(n, rng).positions
        profiles.append(connectivity_profile(positions, side, radii))
    rows = [["-- profile --", f"n={n}", "", "", ""]]
    for k, radius in enumerate(radii):
        rows.append(
            [
                round(radius / base, 2),
                round(radius, 2),
                round(float(np.mean([p["giant_fraction"][k] for p in profiles])), 4),
                round(float(np.mean([p["isolated_fraction"][k] for p in profiles])), 4),
                round(float(np.mean([float(p["connected"][k]) for p in profiles])), 2),
            ]
        )

    # Panel 2: threshold scaling across n.
    rows.append(["-- thresholds --", "full", "CZ-only", "uniform benchmark", "full/uniform"])
    ratios = []
    cz_below_full = []
    for k, tn in enumerate(params["threshold_ns"]):
        full_thr, cz_thr = _mean_thresholds(
            tn, params["snapshots"], np.random.default_rng(seed + 10 + k)
        )
        uniform_thr = uniform_connectivity_threshold(tn, math.sqrt(tn))
        ratio = full_thr / uniform_thr
        ratios.append(ratio)
        cz_below_full.append(not math.isfinite(cz_thr) or cz_thr <= full_thr)
        rows.append(
            [f"n={tn}", round(full_thr, 2), round(cz_thr, 2), round(uniform_thr, 2), round(ratio, 2)]
        )

    ratio_grows = all(b >= a * 0.95 for a, b in zip(ratios, ratios[1:])) and ratios[-1] > ratios[0]
    passed = ratios[-1] >= 1.5 and ratio_grows and all(cz_below_full)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Connectivity profile: Central Zone vs full square",
        paper_ref="Section 1 / ref [13] / refs [18, 27]",
        headers=[
            "R / sqrt(log n)",
            "R",
            "mean giant fraction",
            "mean isolated fraction",
            "fraction connected",
        ],
        rows=rows,
        notes=[
            "the giant component saturates long before full connectivity: the last",
            "holdouts are deep-corner agents — the Suburb of Definition 4;",
            "the full/uniform threshold ratio grows with n (~ n^(1/6)/sqrt(log n)),",
            "the finite-n footprint of ref [13]'s exponentially-higher threshold.",
        ],
        passed=passed,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Connectivity profile: Central Zone vs full square",
    paper_ref="Section 1 / ref [13] / refs [18, 27]",
    description="Connectivity transition profile and threshold scaling (full vs CZ vs uniform).",
    runner=run,
)
