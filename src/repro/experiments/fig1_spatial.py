"""Figure 1 (left): the stationary spatial density over the square.

Regenerates the paper's grayscale density gradient — dark Central Zone,
light corner Suburb — as ASCII heatmaps: the analytic pdf of Theorem 1 next
to an empirical histogram of perfect-simulation samples, with the
total-variation distance between them.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.empirical import analytic_cell_probabilities, histogram_density, total_variation
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.distributions import spatial_pdf
from repro.mobility.stationary import PalmStationarySampler
from repro.viz.ascii import render_heatmap

EXPERIMENT_ID = "fig1_spatial"
SIDE = 100.0


def _expected_tv_noise(analytic: np.ndarray, n_samples: int) -> float:
    """Expected TV distance of an *exact* sampler at this sample size.

    Per-bin binomial noise: ``E|p_hat - p| ~ sqrt(2 p (1-p) / (pi n))``.
    """
    p = analytic.ravel()
    return float(0.5 * np.sum(np.sqrt(2.0 * p * (1.0 - p) / (np.pi * n_samples))))


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n_samples": 40_000, "bins": 12},
        full={"n_samples": 400_000, "bins": 24},
    )
    rng = np.random.default_rng(seed)
    bins = params["bins"]
    n_samples = params["n_samples"]

    state = PalmStationarySampler(SIDE).sample(n_samples, rng)
    empirical_density = histogram_density(state.positions, SIDE, bins)
    cell_area = (SIDE / bins) ** 2
    empirical = empirical_density * cell_area
    analytic = analytic_cell_probabilities(lambda x, y: spatial_pdf(x, y, SIDE), SIDE, bins)
    tv = total_variation(empirical, analytic)
    noise = _expected_tv_noise(analytic, n_samples)

    center = float(spatial_pdf(SIDE / 2, SIDE / 2, SIDE))
    corner = float(spatial_pdf(SIDE / 50, SIDE / 50, SIDE))
    rows = [
        ["samples", n_samples],
        ["bins per side", bins],
        ["TV(empirical, Thm 1)", tv],
        ["TV noise floor (exact sampler)", noise],
        ["pdf at center (analytic)", center],
        ["pdf near corner (analytic)", corner],
        ["center/corner density ratio", center / corner],
    ]
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Stationary spatial density (Fig. 1, gray gradient)",
        paper_ref="Fig. 1 / Theorem 1",
        headers=["quantity", "value"],
        rows=rows,
        artifacts={
            "analytic density (Thm 1)": render_heatmap(analytic),
            "empirical density (perfect simulation)": render_heatmap(empirical),
        },
        notes=[
            "dark center / light corners reproduce the paper's gradient;",
            f"TV within 3x the exact-sampler noise floor ({noise:.4f}) counts as a match.",
        ],
        passed=tv <= 3.0 * noise,
    )
    return result


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Stationary spatial density (Fig. 1, gray gradient)",
    paper_ref="Fig. 1 / Theorem 1",
    description="ASCII regeneration of Fig. 1's spatial density, empirical vs closed form.",
    runner=run,
)
