"""Theorem 1 validation: the stationary spatial pdf, three ways.

Compares against the closed form (total-variation distance on a grid):

1. the Palm perfect-simulation sampler,
2. the closed-form mixture sampler (independent implementation),
3. the **MRWP process itself** after stepping a stationary start — the
   end-to-end check that the dynamics preserve the published stationary law.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.empirical import analytic_cell_probabilities
from repro.analysis.validation import spatial_distribution_tv
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.distributions import spatial_pdf
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.mobility.stationary import ClosedFormStationarySampler, PalmStationarySampler

EXPERIMENT_ID = "thm1_spatial"
SIDE = 50.0
BINS = 10


def _noise_floor(n_samples: int) -> float:
    analytic = analytic_cell_probabilities(
        lambda x, y: spatial_pdf(x, y, SIDE), SIDE, BINS
    ).ravel()
    return float(
        0.5 * np.sum(np.sqrt(2.0 * analytic * (1.0 - analytic) / (np.pi * n_samples)))
    )


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n_samples": 30_000, "process_agents": 8_000, "process_steps": 25},
        full={"n_samples": 300_000, "process_agents": 50_000, "process_steps": 100},
    )
    rng = np.random.default_rng(seed)
    n_samples = params["n_samples"]

    rows = []
    checks = []

    palm = PalmStationarySampler(SIDE).sample(n_samples, rng)
    tv = spatial_distribution_tv(palm.positions, SIDE, BINS)
    floor = _noise_floor(n_samples)
    rows.append(["Palm sampler", n_samples, tv, floor, tv / floor])
    checks.append(tv <= 3.0 * floor)

    closed = ClosedFormStationarySampler(SIDE).sample(n_samples, rng)
    tv = spatial_distribution_tv(closed.positions, SIDE, BINS)
    rows.append(["closed-form sampler", n_samples, tv, floor, tv / floor])
    checks.append(tv <= 3.0 * floor)

    agents = params["process_agents"]
    model = ManhattanRandomWaypoint(
        agents, SIDE, speed=0.02 * SIDE, rng=np.random.default_rng(seed + 1)
    )
    model.advance(params["process_steps"])
    tv = spatial_distribution_tv(model.positions, SIDE, BINS)
    floor_p = _noise_floor(agents)
    rows.append(
        [f"MRWP process (+{params['process_steps']} steps)", agents, tv, floor_p, tv / floor_p]
    )
    checks.append(tv <= 3.0 * floor_p)

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Stationary spatial distribution vs Theorem 1",
        paper_ref="Theorem 1",
        headers=["source", "samples", "TV distance", "noise floor", "ratio"],
        rows=rows,
        notes=[
            "the noise floor is the expected TV of an *exact* sampler at this sample size;",
            "ratios near 1 mean the samplers are statistically indistinguishable from Thm 1.",
        ],
        passed=all(checks),
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Stationary spatial distribution vs Theorem 1",
    paper_ref="Theorem 1",
    description="TV distance of both perfect samplers and the stepped MRWP process to the closed form.",
    runner=run,
)
