"""Regime map: where each term of the bound dominates (Sections 1 & 5).

Rasterizes the ``(R, v/R)`` plane into the paper's regimes (trivial /
no-suburb / CZ-dominated / suburb-dominated / outside-hypotheses) and
spot-checks the classification against simulation: a point labeled
``cz-dominated`` must show speed-flat flooding times; a ``suburb-dominated``
point must slow down when ``v`` drops.

Spot-check means come from the sweep scheduler and are **masked below a
finite-trial floor**: a point where fewer than half the trials finished
reports "masked" plus its ``n_finite/n_trials`` count instead of a mean of
the surviving subset (which is NaN when nothing finishes and biased when
only the easy trials do).
"""

from __future__ import annotations

import math

from repro.core.regimes import classify_regime, regime_map
from repro.experiments.base import (
    ExperimentResult,
    ExperimentSpec,
    adaptive_note,
    scale_params,
)
from repro.simulation.config import FloodingConfig
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "regime_map"

#: Spot-check means are only trusted when at least this fraction of the
#: point's trials finished — below it the "mean" is a moment of whatever
#: subset happened to complete, and the cell is masked instead of plotted.
MIN_FINITE_FRACTION = 0.5


def _spot_config(n, side, radius, speed, seed, max_steps=150_000):
    return FloodingConfig(
        n=n, side=side, radius=radius, speed=speed, max_steps=max_steps,
        seed=seed, track_zones=False,
    )


def run(
    scale: str = "quick",
    seed: int = 0,
    engine: str | None = None,
    jobs: int = 1,
    stopping=None,
    checkpoint: str | None = None,
    resume: bool = False,
    workers: int = 1,
    lease_ttl: float | None = None,
    max_retries: int | None = None,
) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 4_000, "resolution": 20, "trials": 3},
        full={"n": 16_000, "resolution": 32, "trials": 6},
    )
    n = params["n"]
    side = math.sqrt(n)
    base = math.sqrt(math.log(n))

    grid = regime_map(
        n,
        side,
        radius_range=(0.3 * base, 2.0 * side),
        speed_fractions=(0.002, 0.5),
        resolution=params["resolution"],
    )
    # The same map at asymptotic n (closed forms only — free): here the
    # paper-constant optimal window 'C' opens up, showing the bound's full
    # regime structure.
    n_big = 10**14
    side_big = math.sqrt(n_big)
    base_big = math.sqrt(math.log(n_big))
    grid_big = regime_map(
        n_big,
        side_big,
        radius_range=(0.3 * base_big, 2.0 * side_big),
        speed_fractions=(0.002, 0.5),
        resolution=params["resolution"],
    )

    # Spot-check one point per measurable regime — all four simulation
    # points ride one sweep-scheduler plan.
    # (a) R comfortably above the calibrated assumption: measured behaviour
    # is CZ-dominated (flat in v).  The *paper-constant* classification may
    # still label this suburb-dominated because its S constant is enormous;
    # the discrepancy is reported as the constant-slack finding.
    r_cz = 2.6 * base
    paper_label = classify_regime(n, side, r_cz, 0.08 * r_cz)
    # (b) suburb-dominated surrogate: sparse radius (below assumption — the
    #     v-dependence regime Theorem 18 talks about).
    r_sparse = 0.3 * side / n ** (1.0 / 3.0)
    trials = params["trials"]
    plan = SweepPlan()
    plan.add(_spot_config(n, side, r_cz, 0.08 * r_cz, seed), trials, key="cz_fast")
    plan.add(_spot_config(n, side, r_cz, 0.02 * r_cz, seed + 1), trials, key="cz_slow")
    plan.add(_spot_config(n, side, r_sparse, 0.45 * r_sparse, seed + 2), trials, key="sp_fast")
    plan.add(_spot_config(n, side, r_sparse, 0.05 * r_sparse, seed + 3), trials, key="sp_slow")
    executed = run_sweep(
        plan,
        engine=engine or "auto",
        jobs=jobs,
        stopping=stopping,
        checkpoint=checkpoint,
        resume=resume,
        workers=workers,
        lease_ttl=lease_ttl,
        max_retries=max_retries,
    )
    points = {p.key: p for p in executed}

    # Means are masked (NaN) below MIN_FINITE_FRACTION completion instead of
    # silently reporting moments of the finite subset; the completion column
    # surfaces n_finite/n_trials for every cell.
    def cell(point):
        mean = point.masked_mean(MIN_FINITE_FRACTION)
        return round(mean, 1) if math.isfinite(mean) else "masked"

    rows = []
    checks = []
    fast, slow = points["cz_fast"], points["cz_slow"]
    measurable = min(fast.finite_fraction, slow.finite_fraction) >= MIN_FINITE_FRACTION
    flat = measurable and slow.masked_mean() <= 2.0 * fast.masked_mean()
    checks.append(flat)
    finding = (
        "flat (measured: cz-dominated)" if flat
        else "NOT FLAT" if measurable
        else "insufficient completions (masked)"
    )
    rows.append([f"{paper_label} (paper label)", round(r_cz, 2), "v=0.02R vs 0.08R",
                 cell(slow), cell(fast),
                 f"{slow.completion_label} | {fast.completion_label}", finding])
    fast, slow = points["sp_fast"], points["sp_slow"]
    measurable = min(fast.finite_fraction, slow.finite_fraction) >= MIN_FINITE_FRACTION
    speed_dependent = measurable and slow.masked_mean() >= 1.5 * fast.masked_mean()
    checks.append(speed_dependent)
    finding = (
        "1/v visible" if speed_dependent
        else "NO v-dependence" if measurable
        else "insufficient completions (masked)"
    )
    rows.append(["sparse (v-dependent)", round(r_sparse, 2), "v=0.05R vs 0.45R",
                 cell(slow), cell(fast),
                 f"{slow.completion_label} | {fast.completion_label}", finding])

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Parameter-regime map of the bound",
        paper_ref="Section 1 discussion / Section 5 / Theorem 18",
        headers=["regime", "R", "comparison", "slow-v time", "fast-v time",
                 "completed (slow | fast)", "finding"],
        rows=rows,
        artifacts={
            f"regime map at n={n} (x: R growing right, y: v/R growing up)": grid["ascii"],
            "regime map at n=1e14 (paper-constant optimal window 'C' opens)": grid_big["ascii"],
        },
        notes=[
            "map uses the calibrated c1 = sqrt5 assumption constant (lemma6_rows)",
            "but the paper's Suburb constant for the S R/L speed boundary — which",
            "is so conservative that the 'C' (optimal-window) band only opens at",
            "much larger n; the spot checks show the *measured* boundary: flat",
            "in v above the assumption radius, 1/v-dependent in the sparse regime.",
        ]
        + ([adaptive_note(executed, plan)] if stopping is not None else []),
        passed=all(checks),
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Parameter-regime map of the bound",
    paper_ref="Section 1 discussion / Section 5 / Theorem 18",
    description="ASCII regime map of the (R, v) plane with simulation spot checks.",
    runner=run,
)
