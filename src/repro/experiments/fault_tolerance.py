"""Extension: flooding under crash faults — where does the bound degrade?

Agents crash-stop (radio death) independently each step.  The paper's
mechanism predicts asymmetric damage: the Central Zone's path redundancy
shrugs off crashes, while the Suburb hangs on individual Lemma-16
emissaries.  We measure completion (over survivors), the time cost, and
*where* the never-informed survivors sit when the run ends.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.flooding import build_zone_partition
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.protocols.faulty import CrashFaultFlooding
from repro.simulation.engine import Simulation

EXPERIMENT_ID = "fault_tolerance"


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 2_000, "crash_probs": [0.0, 0.002, 0.01], "trials": 3},
        full={"n": 8_000, "crash_probs": [0.0, 0.001, 0.005, 0.02], "trials": 8},
    )
    n = params["n"]
    side = math.sqrt(n)
    radius = 1.4 * math.sqrt(math.log(n))
    speed = 0.25 * radius
    zones = build_zone_partition(n, side, radius)

    rows = []
    mean_times = []
    for crash_prob in params["crash_probs"]:
        times = []
        missed_cz = 0
        missed_suburb = 0
        crashed_total = 0
        for trial in range(params["trials"]):
            rng = np.random.default_rng([seed, trial, int(crash_prob * 1e6)])
            model = ManhattanRandomWaypoint(n, side, speed, rng=rng)
            source = int(rng.integers(0, n))
            protocol = CrashFaultFlooding(
                n, side, radius, source, rng=rng, crash_prob=crash_prob
            )
            simulation = Simulation(model, protocol)
            steps = simulation.run(5_000)
            times.append(steps if protocol.is_complete() else math.inf)
            crashed_total += int(np.count_nonzero(protocol.crashed))
            missing = protocol.alive & ~protocol.informed
            if np.any(missing) and zones is not None:
                suburb = zones.in_suburb(model.positions)
                missed_suburb += int(np.count_nonzero(missing & suburb))
                missed_cz += int(np.count_nonzero(missing & ~suburb))
        finite = [t for t in times if math.isfinite(t)]
        mean = float(np.mean(finite)) if finite else math.inf
        mean_times.append(mean)
        rows.append(
            [
                crash_prob,
                round(mean, 1) if finite else "never",
                len(finite),
                round(crashed_total / params["trials"], 0),
                missed_cz,
                missed_suburb,
            ]
        )

    baseline = mean_times[0]
    graceful = all(
        math.isfinite(m) and m <= 4.0 * baseline for m in mean_times[:-1]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Flooding under crash faults (robustness extension)",
        paper_ref="extension of Theorem 3 (not in paper)",
        headers=[
            "per-step crash prob",
            "mean completion (survivors)",
            "completed trials",
            "mean crashed agents",
            "uninformed survivors in CZ",
            "uninformed survivors in Suburb",
        ],
        rows=rows,
        notes=[
            "crashed agents stop relaying but completion only counts survivors;",
            "graceful degradation: the Central Zone's path redundancy absorbs",
            "crashes (any uninformed-survivor mass concentrates in the Suburb;",
            "zeros in both columns mean full coverage despite the losses).",
        ],
        passed=graceful,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Flooding under crash faults (robustness extension)",
    paper_ref="extension of Theorem 3 (not in paper)",
    description="Completion over survivors and zone-wise damage across crash rates.",
    runner=run,
)
