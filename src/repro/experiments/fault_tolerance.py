"""Extension: flooding under crash faults — where does the bound degrade?

Agents crash-stop (radio death) independently each step.  The paper's
mechanism predicts asymmetric damage: the Central Zone's path redundancy
shrugs off crashes, while the Suburb hangs on individual Lemma-16
emissaries.  We measure completion (over survivors), the time cost, and
*where* the never-informed survivors sit when the run ends.

Since PR 3 the sweep runs through the **batch engine** at both scales:
each crash rate's trials advance in lock-step under the
``crash-flooding`` protocol, with the per-replica crash draws replaying
the scalar streams (parity enforced in
``tests/test_protocol_batch_parity.py``).  The zone-resolved damage comes
from the protocol's ``final_metrics`` extras instead of a hand-rolled
simulation loop.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.simulation.config import FloodingConfig
from repro.simulation.runner import run_trials

EXPERIMENT_ID = "fault_tolerance"


def run(scale: str = "quick", seed: int = 0, engine: str = "batch") -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 2_000, "crash_probs": [0.0, 0.002, 0.01], "trials": 3},
        full={"n": 8_000, "crash_probs": [0.0, 0.001, 0.005, 0.02], "trials": 8},
    )
    n = params["n"]
    side = math.sqrt(n)
    radius = 1.4 * math.sqrt(math.log(n))
    speed = 0.25 * radius

    rows = []
    mean_times = []
    for crash_prob in params["crash_probs"]:
        config = FloodingConfig(
            n=n,
            side=side,
            radius=radius,
            speed=speed,
            max_steps=5_000,
            protocol="crash-flooding",
            protocol_options={"crash_prob": crash_prob},
            seed=seed,  # same seed across rates -> same mobility traces
            engine=engine,
        )
        results = run_trials(config, params["trials"])
        times = [r.flooding_time for r in results]
        finite = [t for t in times if math.isfinite(t)]
        mean = float(np.mean(finite)) if finite else math.inf
        mean_times.append(mean)
        crashed_total = sum(r.extras["crashed"] for r in results)
        missed_cz = sum(r.extras.get("uninformed_survivors_cz", 0) for r in results)
        missed_suburb = sum(
            r.extras.get("uninformed_survivors_suburb", 0) for r in results
        )
        rows.append(
            [
                crash_prob,
                round(mean, 1) if finite else "never",
                len(finite),
                round(crashed_total / params["trials"], 0),
                missed_cz,
                missed_suburb,
            ]
        )

    baseline = mean_times[0]
    graceful = all(
        math.isfinite(m) and m <= 4.0 * baseline for m in mean_times[:-1]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Flooding under crash faults (robustness extension)",
        paper_ref="extension of Theorem 3 (not in paper)",
        headers=[
            "per-step crash prob",
            "mean completion (survivors)",
            "completed trials",
            "mean crashed agents",
            "uninformed survivors in CZ",
            "uninformed survivors in Suburb",
        ],
        rows=rows,
        notes=[
            "crashed agents stop relaying but completion only counts survivors;",
            "graceful degradation: the Central Zone's path redundancy absorbs",
            "crashes (any uninformed-survivor mass concentrates in the Suburb;",
            "zeros in both columns mean full coverage despite the losses);",
            f"identical mobility seeds across crash rates, {engine} engine.",
        ],
        passed=graceful,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Flooding under crash faults (robustness extension)",
    paper_ref="extension of Theorem 3 (not in paper)",
    description="Completion over survivors and zone-wise damage across crash rates.",
    runner=run,
)
