"""Corollary 12: above the large-radius threshold, flooding ends in ``18 L/R``.

For ``R >= (1+sqrt5)/2 * L * (3 log n / n)^(1/3)`` the Suburb is empty and
flooding completes within ``18 L / R`` steps w.h.p.  We verify both facts:
the Definition-4 partition has no Suburb cells, and measured flooding times
over independent trials sit below the bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import theory
from repro.core.flooding import build_zone_partition
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.simulation.config import FloodingConfig
from repro.simulation.results import summarize
from repro.simulation.runner import run_trials

EXPERIMENT_ID = "cor12_large_r"


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"ns": [1_000, 4_000], "trials": 3},
        full={"ns": [1_000, 4_000, 16_000], "trials": 10},
    )
    rows = []
    checks = []
    for n in params["ns"]:
        side = math.sqrt(n)
        threshold = theory.large_radius_threshold(n, side)
        radius = 1.05 * threshold
        zones = build_zone_partition(n, side, radius)
        suburb_cells = zones.n_suburb_cells if zones is not None else 0
        bound = theory.cz_flooding_bound(side, radius)
        config = FloodingConfig(
            n=n,
            side=side,
            radius=radius,
            speed=theory.speed_assumption_max(radius),
            max_steps=int(4 * bound) + 50,
            seed=seed + n,
        )
        results = run_trials(config, params["trials"])
        times = [r.flooding_time for r in results]
        summary = summarize(times)
        worst = max(times)
        ok = suburb_cells == 0 and all(np.isfinite(times)) and worst <= bound
        checks.append(ok)
        rows.append(
            [
                n,
                round(radius, 2),
                suburb_cells,
                round(summary.mean, 2),
                worst,
                round(bound, 2),
                "ok" if ok else "VIOLATED",
            ]
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Large-radius flooding within 18 L/R (Corollary 12)",
        paper_ref="Corollary 12 / Theorem 10",
        headers=[
            "n",
            "R (1.05x threshold)",
            "suburb cells",
            "mean flooding time",
            "worst flooding time",
            "18 L/R bound",
            "verdict",
        ],
        rows=rows,
        notes=["radius set 5% above Cor. 12's threshold; Suburb must be empty."],
        passed=all(checks),
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Large-radius flooding within 18 L/R (Corollary 12)",
    paper_ref="Corollary 12 / Theorem 10",
    description="Empty Suburb and measured flooding times under the 18 L/R bound.",
    runner=run,
)
