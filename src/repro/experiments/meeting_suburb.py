"""Lemma 16: suburban agents are met by Central-Zone emissaries.

The engine of the Suburb analysis: an agent in the (Extended) Suburb is,
w.h.p., met within ``tau = 590 S/v`` steps by an agent that was in the
Central Zone at the window's start.  The paper's ``tau`` constant is
proof-driven; we measure the actual first-meeting-time distribution and
check (a) that every suburban agent is met well within the paper's window
and (b) the ``1/v`` scaling of meeting times.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.flooding import build_zone_partition
from repro.core.meetings import first_meeting_times_from_zone
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.mrwp import ManhattanRandomWaypoint

EXPERIMENT_ID = "meeting_suburb"


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 2_000, "radius_factor": 1.3, "fractions": [0.25, 0.1], "window_factor": 40},
        full={
            "n": 16_000,
            "radius_factor": 1.3,
            "fractions": [0.25, 0.1, 0.04],
            "window_factor": 60,
        },
    )
    n = params["n"]
    side = math.sqrt(n)
    radius = params["radius_factor"] * math.sqrt(math.log(n))
    zones = build_zone_partition(n, side, radius)

    rows = []
    medians = []
    checks = []
    for k, fraction in enumerate(params["fractions"]):
        speed = fraction * radius
        model = ManhattanRandomWaypoint(n, side, speed, rng=np.random.default_rng(seed + k))
        positions = model.positions
        suburb_agents = np.nonzero(zones.in_suburb(positions))[0]
        if suburb_agents.size == 0:
            rows.append([round(fraction, 3), 0, "-", "-", "-", "no suburb agents"])
            continue
        # Window: enough steps for an emissary to cross the empirical suburb
        # extent several times over (paper's 590 S/v is far larger).
        extent = max(zones.suburb_corner_extent(), radius)
        window = int(params["window_factor"] * extent / speed)
        times = first_meeting_times_from_zone(
            model, zones, radius, suburb_agents, window
        )
        met = np.isfinite(times)
        met_fraction = float(np.mean(met))
        median = float(np.median(times[met])) if np.any(met) else math.inf
        medians.append((speed, median))
        paper_tau = 590.0 * zones.suburb_bound / speed
        ok = met_fraction >= 0.95
        checks.append(ok)
        rows.append(
            [
                round(fraction, 3),
                int(suburb_agents.size),
                window,
                round(met_fraction, 4),
                round(median, 1),
                round(paper_tau, 0),
            ]
        )

    # 1/v scaling: median meeting time should grow as speed drops.
    scaling_ok = all(
        m2 >= m1 * 0.8
        for (v1, m1), (v2, m2) in zip(medians, medians[1:])
        if math.isfinite(m1) and math.isfinite(m2)
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Suburb meeting times with CZ emissaries (Lemma 16)",
        paper_ref="Lemma 16 / Claim 17",
        headers=[
            "v / R",
            "suburb agents",
            "window (steps)",
            "fraction met",
            "median meeting step",
            "paper tau = 590 S/v",
        ],
        rows=rows,
        notes=[
            "meeting = distance <= (3/4) R to an agent that was in the CZ at step 0;",
            "the paper's tau constant is enormously conservative — the measured",
            "medians sit orders of magnitude below it.",
        ],
        passed=bool(checks) and all(checks) and scaling_ok,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Suburb meeting times with CZ emissaries (Lemma 16)",
    paper_ref="Lemma 16 / Claim 17",
    description="First-meeting times of suburban agents with Central-Zone agents.",
    runner=run,
)
