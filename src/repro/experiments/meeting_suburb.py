"""Lemma 16: suburban agents are met by Central-Zone emissaries.

The engine of the Suburb analysis: an agent in the (Extended) Suburb is,
w.h.p., met within ``tau = 590 S/v`` steps by an agent that was in the
Central Zone at the window's start.  The paper's ``tau`` constant is
proof-driven; we measure the actual first-meeting-time distribution and
check (a) that every suburban agent is met well within the paper's window
and (b) the ``1/v`` scaling of meeting times.

A sweep-scheduler cross-check runs live central-source flooding at each
speed and reports the mean Suburb completion time next to the raw meeting
medians — the protocol-level consequence of the lemma, batched through
``engine="auto"``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.flooding import build_zone_partition
from repro.core.meetings import first_meeting_times_from_zone
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.simulation.config import FloodingConfig
from repro.simulation.results import summarize
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "meeting_suburb"


def run(scale: str = "quick", seed: int = 0, engine: str | None = None, jobs: int = 1) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 2_000, "radius_factor": 1.3, "fractions": [0.25, 0.1], "window_factor": 40,
               "flood_trials": 6},
        full={
            "n": 16_000,
            "radius_factor": 1.3,
            "fractions": [0.25, 0.1, 0.04],
            "window_factor": 60,
            "flood_trials": 4,
        },
    )
    n = params["n"]
    side = math.sqrt(n)
    radius = params["radius_factor"] * math.sqrt(math.log(n))
    zones = build_zone_partition(n, side, radius)

    # End-to-end cross-check of Lemma 16 through the sweep scheduler: the
    # Suburb completion time of live central-source flooding runs is the
    # protocol-level shadow of the meeting-time mechanism, and should show
    # the same 1/v stretch measured below.
    plan = SweepPlan()
    for k, fraction in enumerate(params["fractions"]):
        plan.add(
            FloodingConfig(
                n=n,
                side=side,
                radius=radius,
                speed=fraction * radius,
                max_steps=30_000,
                source="central",
                seed=seed + 500 + k,
            ),
            params["flood_trials"],
            key=fraction,
        )
    flood_points = {p.key: p for p in run_sweep(plan, engine=engine or "auto", jobs=jobs)}

    rows = []
    medians = []
    checks = []
    for k, fraction in enumerate(params["fractions"]):
        speed = fraction * radius
        flood = flood_points[fraction]
        suburb = summarize(r.suburb_completion_time for r in flood.results)
        suburb_cell = round(suburb.mean, 1) if suburb.n_finite else "never"
        model = ManhattanRandomWaypoint(n, side, speed, rng=np.random.default_rng(seed + k))
        positions = model.positions
        suburb_agents = np.nonzero(zones.in_suburb(positions))[0]
        if suburb_agents.size == 0:
            rows.append([round(fraction, 3), 0, "-", "-", "-", "-", "no suburb agents"])
            continue
        # Window: enough steps for an emissary to cross the empirical suburb
        # extent several times over (paper's 590 S/v is far larger).
        extent = max(zones.suburb_corner_extent(), radius)
        window = int(params["window_factor"] * extent / speed)
        times = first_meeting_times_from_zone(
            model, zones, radius, suburb_agents, window
        )
        met = np.isfinite(times)
        met_fraction = float(np.mean(met))
        median = float(np.median(times[met])) if np.any(met) else math.inf
        medians.append((speed, median))
        paper_tau = 590.0 * zones.suburb_bound / speed
        ok = met_fraction >= 0.95
        checks.append(ok)
        rows.append(
            [
                round(fraction, 3),
                int(suburb_agents.size),
                window,
                round(met_fraction, 4),
                round(median, 1),
                round(paper_tau, 0),
                suburb_cell,
            ]
        )

    # 1/v scaling: median meeting time should grow as speed drops.
    scaling_ok = all(
        m2 >= m1 * 0.8
        for (v1, m1), (v2, m2) in zip(medians, medians[1:])
        if math.isfinite(m1) and math.isfinite(m2)
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Suburb meeting times with CZ emissaries (Lemma 16)",
        paper_ref="Lemma 16 / Claim 17",
        headers=[
            "v / R",
            "suburb agents",
            "window (steps)",
            "fraction met",
            "median meeting step",
            "paper tau = 590 S/v",
            "mean suburb completion (flooding)",
        ],
        rows=rows,
        notes=[
            "meeting = distance <= (3/4) R to an agent that was in the CZ at step 0;",
            "the paper's tau constant is enormously conservative — the measured",
            "medians sit orders of magnitude below it;",
            "the last column is live central-source flooding via the sweep",
            "scheduler: the Suburb completion time is the protocol-level shadow",
            "of the same meeting mechanism (and stretches as v drops).",
        ],
        passed=bool(checks) and all(checks) and scaling_ok,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Suburb meeting times with CZ emissaries (Lemma 16)",
    paper_ref="Lemma 16 / Claim 17",
    description="First-meeting times of suburban agents with Central-Zone agents.",
    runner=run,
)
