"""Theorem 3, speed sweep: where flooding time depends on ``v`` — and where not.

The bound ``O(L/R + S/v)`` has two regimes, both probed here:

* **optimal window** (Section 1: ``v`` in ``[S R / L, R]``, realized at
  laptop scale by ``R = Theta(sqrt(log n))``): the Central-Zone term
  dominates, the bound is ``Theta(L/R)``, and measured flooding time is
  flat in ``v``;
* **sparse regime** (``R`` near the Theorem-18 scale, below the corner
  connectivity level): suburban agents are genuinely isolated, and
  flooding time fits ``a + b/v`` with ``b > 0`` — the paper's "flooding
  time must depend on v".

Both panels ride a single sweep-scheduler plan (``engine="auto"`` batch
dispatch, optional ``jobs=`` fan-out) with the pre-scheduler seed schedule
— the sparse panel's long horizons are where the batching pays most.
"""

from __future__ import annotations

import math

from repro.analysis.scaling import fit_affine_inverse
from repro.core import theory
from repro.experiments.base import (
    ExperimentResult,
    ExperimentSpec,
    adaptive_note,
    scale_params,
)
from repro.simulation.config import FloodingConfig
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "thm3_speed"


def _panel_points(plan, panel, n, side, radius, fractions, trials, seed, max_steps):
    """Queue one panel's speed sweep on the shared plan (keyed by panel)."""
    for k, fraction in enumerate(fractions):
        plan.add(
            FloodingConfig(
                n=n,
                side=side,
                radius=radius,
                speed=fraction * radius,
                max_steps=max_steps,
                seed=seed + 1000 * k,
                track_zones=False,
            ),
            trials,
            key=(panel, fraction),
        )


def _panel_rows(points, panel):
    speeds = []
    means = []
    rows = []
    for point in points:
        if point.key[0] != panel:
            continue
        summary = point.summary
        speeds.append(point.config.speed)
        means.append(summary.mean)
        rows.append(
            [
                round(point.key[1], 3),
                round(point.config.speed, 4),
                round(summary.mean, 1),
                round(summary.minimum, 1),
                round(summary.maximum, 1),
                summary.n_finite,
            ]
        )
    return speeds, means, rows


def run(
    scale: str = "quick",
    seed: int = 0,
    engine: str | None = None,
    jobs: int = 1,
    stopping=None,
    checkpoint: str | None = None,
    resume: bool = False,
    workers: int = 1,
    lease_ttl: float | None = None,
    max_retries: int | None = None,
) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={
            "n": 4_000,
            "fractions": [0.05, 0.15, 0.45],
            "trials": 3,
            "dense_factor": 1.3,
            "sparse_radius_scale": 0.3,
        },
        full={
            "n": 8_000,
            "fractions": [0.03, 0.06, 0.12, 0.25, 0.45],
            "trials": 8,
            "dense_factor": 1.3,
            "sparse_radius_scale": 0.3,
        },
    )
    n = params["n"]
    side = math.sqrt(n)

    # Both panels ride one sweep plan: the scheduler batches every point
    # through engine="auto" and can fan the points out over processes.
    dense_radius = params["dense_factor"] * math.sqrt(math.log(n))
    sparse_radius = params["sparse_radius_scale"] * side / n ** (1.0 / 3.0)
    plan = SweepPlan()
    # Panel A: assumption regime (optimal window) — flat in v.
    _panel_points(
        plan, "dense", n, side, dense_radius, params["fractions"], params["trials"], seed, 30_000
    )
    # Panel B: sparse regime — a + b/v.  Radius at the Theorem-18 scale
    # (a fraction of d = L / n^(1/3), below corner connectivity).
    _panel_points(
        plan, "sparse", n, side, sparse_radius, params["fractions"], params["trials"],
        seed + 7, 200_000,
    )
    points = run_sweep(
        plan,
        engine=engine or "auto",
        jobs=jobs,
        stopping=stopping,
        checkpoint=checkpoint,
        resume=resume,
        workers=workers,
        lease_ttl=lease_ttl,
        max_retries=max_retries,
    )

    _, dense_means, dense_rows = _panel_rows(points, "dense")
    dense_spread = max(dense_means) / max(min(dense_means), 1.0)
    speeds, sparse_means, sparse_rows = _panel_rows(points, "sparse")
    fit = fit_affine_inverse(speeds, sparse_means)

    rows = [["-- optimal window --", f"R={dense_radius:.2f}", "", "", "", ""]]
    rows += dense_rows
    rows += [["-- sparse regime --", f"R={sparse_radius:.2f}", "", "", "", ""]]
    rows += sparse_rows

    notes = [
        f"optimal window: max/min flooding-time ratio across speeds = {dense_spread:.2f} "
        "(flat: the bound is Theta(L/R) there);",
        f"sparse regime fit: T ~ {fit.constant:.1f} + {fit.slope:.2f}/v, R^2 = {fit.r2:.4f};",
        "Theorem 3's Suburb term S/v is visible exactly where snapshots are",
        "disconnected; above the connectivity level the CZ term dominates.",
        f"reference 18 L/R: dense {theory.cz_flooding_bound(side, dense_radius):.0f}, "
        f"sparse {theory.cz_flooding_bound(side, sparse_radius):.0f}.",
    ]
    if stopping is not None:
        notes.append(adaptive_note(points, plan))
    passed = dense_spread <= 2.0 and fit.slope > 0 and fit.r2 >= 0.85 and (
        sparse_means[0] > 1.5 * sparse_means[-1]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Flooding time vs agent speed (Theorem 3)",
        paper_ref="Theorem 3 / Section 1 discussion",
        headers=["v/R", "v", "mean T_flood", "min", "max", "completed trials"],
        rows=rows,
        notes=notes,
        passed=passed,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Flooding time vs agent speed (Theorem 3)",
    paper_ref="Theorem 3 / Section 1 discussion",
    description="Speed sweeps in the optimal window (flat) and the sparse regime (a + b/v).",
    runner=run,
)
