"""Perfect-simulation ablation: stationary start vs uniform cold start.

Why bother with Palm-calculus initialization?  Because a uniform cold start
is *biased*: the paper's analysis assumes the stationary phase, and the
MRWP process takes many steps to mix from uniform into Theorem 1's law.
We track the TV distance to the closed form over time from both starts —
the stationary start sits at the noise floor from step 0, the uniform
start decays toward it — and compare the flooding times measured under
each (the cold start's extra corner mass makes the Suburb artificially
easy early on).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.validation import spatial_distribution_tv
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.simulation.config import FloodingConfig
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "init_bias"


def run(scale: str = "quick", seed: int = 0, engine: str | None = None, jobs: int = 1) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"agents": 8_000, "checkpoints": [0, 5, 20, 60], "n": 2_000, "trials": 3},
        full={"agents": 40_000, "checkpoints": [0, 5, 20, 60, 150, 400], "n": 8_000, "trials": 8},
    )
    side = 50.0
    agents = params["agents"]
    speed = 0.02 * side
    bins = 10

    rows = []
    tv_by_init = {}
    for init in ("stationary", "uniform"):
        model = ManhattanRandomWaypoint(
            agents, side, speed, rng=np.random.default_rng(seed), init=init
        )
        tv_series = []
        step = 0
        for checkpoint in params["checkpoints"]:
            while step < checkpoint:
                model.step()
                step += 1
            tv_series.append(spatial_distribution_tv(model.positions, side, bins))
        tv_by_init[init] = tv_series
    for k, checkpoint in enumerate(params["checkpoints"]):
        rows.append(
            [
                checkpoint,
                round(tv_by_init["stationary"][k], 4),
                round(tv_by_init["uniform"][k], 4),
            ]
        )

    # Flooding-time bias of the cold start, via the sweep scheduler (both
    # init modes in one plan, batched through engine="auto" by default).
    n = params["n"]
    plan = SweepPlan()
    for init in ("stationary", "uniform"):
        plan.add(
            FloodingConfig(
                n=n,
                side=math.sqrt(n),
                radius=1.3 * math.sqrt(math.log(n)),
                speed=0.25 * 1.3 * math.sqrt(math.log(n)),
                max_steps=30_000,
                init=init,
                seed=seed,
            ),
            params["trials"],
            key=init,
        )
    flood_rows = []
    flood_means = {}
    for point in run_sweep(plan, engine=engine or "auto", jobs=jobs):
        flood_means[point.key] = point.summary.mean
        flood_rows.append(f"flooding time from {point.key} start: {point.summary.mean:.1f}")

    stationary_flat = (
        tv_by_init["stationary"][0] <= 2.5 * min(tv_by_init["stationary"])
    )
    uniform_decays = tv_by_init["uniform"][0] > tv_by_init["uniform"][-1]
    uniform_starts_biased = tv_by_init["uniform"][0] > 2.0 * tv_by_init["stationary"][0]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Stationary vs uniform initialization (perfect-simulation ablation)",
        paper_ref="Section 2 / refs [6, 21, 22]",
        headers=["step", "TV (stationary start)", "TV (uniform cold start)"],
        rows=rows,
        notes=flood_rows
        + [
            "stationary start sits at the sampling-noise floor from step 0;",
            "the cold start's TV decays as the process mixes toward Theorem 1.",
        ],
        passed=stationary_flat and uniform_decays and uniform_starts_biased,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Stationary vs uniform initialization (perfect-simulation ablation)",
    paper_ref="Section 2 / refs [6, 21, 22]",
    description="TV-to-stationary over time and flooding-time bias of cold starts.",
    runner=run,
)
