"""Extension: MRWP with pause times (the paper's Random-Trip direction).

Section 3: the authors "strongly believe" their technique extends to other
RWP/Random-Trip variants.  The simplest variant pauses agents at each
way-point; its stationary law is the closed-form mixture
``w * f_Thm1 + (1-w) * uniform`` with ``w = (2L/3v) / (2L/3v + pause)``.
We validate the mixture (TV distance, moving-fraction) and measure how
pausing slows flooding — agents resting in the Suburb neither fetch nor
ferry the message, so the Suburb tail should stretch with the pause.

The flooding measurement runs through the sweep scheduler (one multi-trial
point per pause value, config-driven ``mrwp-pause`` mobility) instead of
the earlier single hand-rolled run per pause, so the reported time is a
mean with an explicit completed-trials count.  Since PR 5 the pause model
is native in the batch engine
(:class:`~repro.mobility.pause.BatchManhattanRandomWaypointWithPause`),
so ``engine="auto"`` advances the whole pause grid in lock-step.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.empirical import (
    analytic_cell_probabilities,
    histogram_density,
    total_variation,
)
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.pause import (
    ManhattanRandomWaypointWithPause,
    moving_probability,
    spatial_pdf_with_pause,
)
from repro.simulation.config import FloodingConfig
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "pause_extension"
SIDE = 45.0


def run(scale: str = "quick", seed: int = 0, engine: str | None = None, jobs: int = 1) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"agents": 20_000, "flood_n": 2_000, "pauses": [0.0, 10.0, 40.0], "steps": 15,
               "trials": 16},
        full={"agents": 80_000, "flood_n": 8_000, "pauses": [0.0, 5.0, 20.0, 80.0], "steps": 60,
              "trials": 4},
    )
    speed = 0.02 * SIDE

    # Flooding under pause (same network parameters as quickstart scale):
    # one sweep-scheduler point per pause value.  Since PR 5 the pause
    # model is native in the batch engine, so the trial count is set where
    # the mean is stable — the whole grid advances in lock-step either way.
    flood_n = params["flood_n"]
    flood_side = math.sqrt(flood_n)
    flood_radius = 1.4 * math.sqrt(math.log(flood_n))
    plan = SweepPlan()
    for k, pause in enumerate(params["pauses"]):
        plan.add(
            FloodingConfig(
                n=flood_n,
                side=flood_side,
                radius=flood_radius,
                speed=0.25 * flood_radius,
                max_steps=20_000,
                mobility="mrwp-pause",
                mobility_options={"pause_time": pause},
                seed=seed + 100 + k,
                track_zones=False,
            ),
            params["trials"],
            key=pause,
        )
    flood_points = {p.key: p for p in run_sweep(plan, engine=engine or "auto", jobs=jobs)}

    bins = 10
    rows = []
    checks = []
    flood_times = []
    for k, pause in enumerate(params["pauses"]):
        model = ManhattanRandomWaypointWithPause(
            params["agents"], SIDE, speed, pause_time=pause,
            rng=np.random.default_rng(seed + k),
        )
        model.advance(params["steps"])
        w = moving_probability(SIDE, speed, pause)
        empirical = histogram_density(model.positions, SIDE, bins) * (SIDE / bins) ** 2
        analytic = analytic_cell_probabilities(
            lambda x, y: spatial_pdf_with_pause(x, y, SIDE, speed, pause), SIDE, bins
        )
        tv = total_variation(empirical, analytic)
        noise = 0.5 * float(
            np.sum(np.sqrt(2 * analytic * (1 - analytic) / (np.pi * params["agents"])))
        )
        moving = model.moving_fraction

        point = flood_points[pause]
        # Points where no trial finished compare as "maximally slow".
        t_flood = point.summary.mean if point.summary.n_finite else math.inf
        flood_times.append(t_flood)

        ok = tv <= 3.0 * noise and abs(moving - w) <= 0.02
        checks.append(ok)
        rows.append(
            [
                pause,
                round(w, 3),
                round(moving, 3),
                round(tv, 4),
                round(noise, 4),
                round(t_flood, 0) if math.isfinite(t_flood) else "never",
                point.completion_label,
                "ok" if ok else "off",
            ]
        )

    slows_down = flood_times[-1] >= flood_times[0]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="MRWP with pause times (Random-Trip extension)",
        paper_ref="Section 3 closing remark / refs [21, 22, 23]",
        headers=[
            "pause time",
            "analytic moving prob w",
            "measured moving fraction",
            "TV vs mixture pdf",
            "noise floor",
            "mean flooding time",
            "completed trials",
            "verdict",
        ],
        rows=rows,
        notes=[
            "stationary law of pause-MRWP: w * Thm1 + (1-w) * uniform — validated",
            "by perfect simulation + stepping; pausing dilutes the mobile relays,",
            "so flooding slows as the pause grows.",
        ],
        passed=all(checks) and slows_down,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="MRWP with pause times (Random-Trip extension)",
    paper_ref="Section 3 closing remark / refs [21, 22, 23]",
    description="Closed-form mixture law of pause-MRWP and its flooding-time cost.",
    runner=run,
)
