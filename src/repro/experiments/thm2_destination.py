"""Theorem 2 validation at the *process* level.

Runs the MRWP process and inspects the (position, destination) pairs of
agents found near probe positions: their destination quadrant masses must
match Theorem 2's constants integrated over the probe box, and the fraction
with an on-cross destination (== agents on their second leg) must approach
the paper's 1/2.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.distributions import quadrant_masses
from repro.mobility.mrwp import ManhattanRandomWaypoint

EXPERIMENT_ID = "thm2_destination"
SIDE = 60.0


def _collect_near(model: ManhattanRandomWaypoint, probe, box: float, steps: int) -> tuple:
    """Gather (positions, destinations, on_second_leg) of agents within the
    probe box over a run."""
    probe = np.asarray(probe)
    pos_list = []
    dest_list = []
    leg_list = []
    for _ in range(steps):
        positions = model.step()
        near = np.all(np.abs(positions - probe) <= box, axis=1)
        if np.any(near):
            pos_list.append(positions[near])
            dest_list.append(model.destinations[near])
            leg_list.append(model.on_second_leg[near])
    if not pos_list:
        return (np.empty((0, 2)), np.empty((0, 2)), np.empty(0, dtype=bool))
    return (np.concatenate(pos_list), np.concatenate(dest_list), np.concatenate(leg_list))


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"agents": 6_000, "steps": 40, "box": 0.04},
        full={"agents": 20_000, "steps": 150, "box": 0.03},
    )
    model = ManhattanRandomWaypoint(
        params["agents"], SIDE, speed=0.02 * SIDE, rng=np.random.default_rng(seed)
    )
    probes = [
        (SIDE / 3.0, SIDE / 4.0),
        (SIDE / 2.0, SIDE / 2.0),
        (0.15 * SIDE, 0.7 * SIDE),
    ]
    box = params["box"] * SIDE

    rows = []
    checks = []
    for probe in probes:
        positions, destinations, on_second = _collect_near(
            model, probe, box, params["steps"]
        )
        count = positions.shape[0]
        if count < 50:
            rows.append([f"({probe[0]:.1f},{probe[1]:.1f})", count, "-", "-", "-", "-"])
            continue
        # Off-cross (first-leg) destinations: quadrant classification against
        # the *actual* agent position (exact per-sample conditioning).
        first_leg = ~on_second
        pos_f = positions[first_leg]
        dest_f = destinations[first_leg]
        east = dest_f[:, 0] > pos_f[:, 0]
        north = dest_f[:, 1] > pos_f[:, 1]
        emp = np.array(
            [
                np.count_nonzero(~east & ~north),  # SW
                np.count_nonzero(east & ~north),  # SE
                np.count_nonzero(~east & north),  # NW
                np.count_nonzero(east & north),  # NE
            ],
            dtype=np.float64,
        ) / count
        analytic = quadrant_masses(positions[:, 0], positions[:, 1], SIDE).mean(axis=0)
        max_err = float(np.max(np.abs(emp - analytic)))
        second_frac = float(np.mean(on_second))
        tolerance = 6.0 / np.sqrt(count)
        ok = max_err <= tolerance and abs(second_frac - 0.5) <= tolerance
        checks.append(ok)
        rows.append(
            [
                f"({probe[0]:.1f},{probe[1]:.1f})",
                count,
                max_err,
                tolerance,
                second_frac,
                "ok" if ok else "off",
            ]
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Process-level destination law vs Theorem 2",
        paper_ref="Theorem 2 / Section 2",
        headers=[
            "probe position",
            "samples",
            "max quadrant error",
            "tolerance",
            "second-leg fraction (expect 0.5)",
            "verdict",
        ],
        rows=rows,
        notes=[
            "agents within a small box around each probe are conditioned on;",
            "on-cross destinations correspond exactly to second-leg agents.",
        ],
        passed=bool(checks) and all(checks),
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Process-level destination law vs Theorem 2",
    paper_ref="Theorem 2 / Section 2",
    description="Destination quadrant masses and second-leg fraction of MRWP agents near probes.",
    runner=run,
)
