"""Experiment harness: one module per paper artifact (see DESIGN.md)."""

from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.experiments.registry import (
    EXPERIMENT_MODULES,
    all_ids,
    get_spec,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "scale_params",
    "EXPERIMENT_MODULES",
    "all_ids",
    "get_spec",
    "run_experiment",
    "run_all",
]
