"""Trip-length law of the MRWP process (Section 2 mechanics).

A trip's Manhattan length has an exact piecewise-cubic pdf (convolution of
two triangular axis gaps).  The experiment observes completed trips of the
running process and compares the empirical distribution with the closed
form (KS statistic) and the mean with ``2L/3`` — validating the process at
the trip level, independently of the positional Theorems 1-2.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.empirical import ks_critical_value, ks_statistic
from repro.analysis.trips import collect_trip_lengths_with_stats, trip_length_cdf
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.distributions import mean_trip_length

EXPERIMENT_ID = "trip_lengths"
SIDE = 30.0


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"agents": 2_000, "steps": 120, "speed": 0.1},
        full={"agents": 10_000, "steps": 400, "speed": 0.1},
    )
    rng = np.random.default_rng(seed)
    lengths, stats = collect_trip_lengths_with_stats(
        params["agents"], SIDE, params["speed"] * SIDE, params["steps"], rng
    )
    count = int(lengths.size)
    if count < 100:
        return ExperimentResult(
            experiment_id=EXPERIMENT_ID,
            title="Trip-length distribution",
            paper_ref="Section 2",
            headers=["quantity", "value"],
            rows=[["observed trips", count]],
            notes=["not enough completed trips at this scale"],
            passed=False,
        )

    ks = ks_statistic(lengths, lambda d: trip_length_cdf(d, SIDE))
    critical = ks_critical_value(count, alpha=1e-3)
    # Multi-arrival steps censor a small, all-short slice of trips (see
    # collect_trip_lengths_with_stats); the KS tolerance must absorb that
    # quantified censoring on top of the sampling-noise critical value.
    allowed = critical + stats["dropped_fraction"]
    mean = float(lengths.mean())
    expected = mean_trip_length(SIDE)
    mean_tol = 4.0 * float(lengths.std()) / np.sqrt(count)
    rows = [
        ["observed trips", count],
        ["censored (multi-arrival) fraction", round(stats["dropped_fraction"], 5)],
        ["KS vs closed-form CDF", round(ks, 5)],
        ["KS critical value (alpha=1e-3)", round(critical, 5)],
        ["KS allowance (critical + censoring)", round(allowed, 5)],
        ["mean trip length", round(mean, 3)],
        ["2L/3 prediction", round(expected, 3)],
        ["max observed", round(float(lengths.max()), 2)],
        ["2L support bound", 2 * SIDE],
    ]
    passed = (
        ks < allowed
        and abs(mean - expected) <= mean_tol + stats["dropped_fraction"] * expected
        and float(lengths.max()) <= 2 * SIDE + 1e-9
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Trip-length distribution of the MRWP process",
        paper_ref="Section 2 (trip mechanics)",
        headers=["quantity", "value"],
        rows=rows,
        notes=[
            "completed trips observed on the running process, compared with the",
            "exact convolution law of the Manhattan length of uniform way-points.",
        ],
        passed=passed,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Trip-length distribution of the MRWP process",
    paper_ref="Section 2 (trip mechanics)",
    description="KS test of observed trip lengths against the exact closed-form law.",
    runner=run,
)
