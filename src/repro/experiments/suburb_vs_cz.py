"""The headline claim: the Suburb floods about as fast as the Central Zone.

"A consequence of our result is that flooding over the sparse and highly-
disconnected suburb can be as fast as flooding over the dense and connected
central zone."  We measure, per trial, the first step at which every agent
currently in the Central Zone is informed and the first step at which every
agent currently in the Suburb is informed, for both source placements
(Theorem 3's two cases), and report the Suburb/CZ ratio — the claim is that
it stays O(1), not diverging.

Both source placements are one sweep-scheduler plan (``engine="auto"``
batch dispatch — the batch engine records the same per-zone completion
times, seed-for-seed); tables match the pre-scheduler loop exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.simulation.config import FloodingConfig
from repro.simulation.results import summarize
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "suburb_vs_cz"


def run(scale: str = "quick", seed: int = 0, engine: str | None = None, jobs: int = 1) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 2_000, "radius_factor": 1.3, "trials": 4},
        full={"n": 16_000, "radius_factor": 1.3, "trials": 12},
    )
    n = params["n"]
    side = math.sqrt(n)
    radius = params["radius_factor"] * math.sqrt(math.log(n))
    speed = 0.25 * radius

    plan = SweepPlan()
    for source_mode in ("central", "suburb"):
        plan.add(
            FloodingConfig(
                n=n,
                side=side,
                radius=radius,
                speed=speed,
                max_steps=30_000,
                source=source_mode,
                seed=seed + (0 if source_mode == "central" else 1),
            ),
            params["trials"],
            key=source_mode,
        )
    points = run_sweep(plan, engine=engine or "auto", jobs=jobs)

    rows = []
    ratios = []
    for point in points:
        source_mode = point.key
        results = point.results
        cz_times = [r.cz_completion_time for r in results]
        suburb_times = [r.suburb_completion_time for r in results]
        total = summarize(r.flooding_time for r in results)
        cz = summarize(cz_times)
        suburb = summarize(suburb_times)
        finite = [
            s / max(c, 1.0)
            for c, s in zip(cz_times, suburb_times)
            if np.isfinite(c) and np.isfinite(s)
        ]
        ratios.extend(finite)
        rows.append(
            [
                source_mode,
                round(cz.mean, 1),
                round(suburb.mean, 1),
                round(total.mean, 1),
                round(float(np.median(finite)), 2) if finite else "-",
                total.n_finite,
            ]
        )

    median_ratio = float(np.median(ratios)) if ratios else math.inf
    passed = bool(ratios) and median_ratio <= 10.0
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Suburb flooding vs Central-Zone flooding",
        paper_ref="Section 1 (headline claim) / Theorem 3",
        headers=[
            "source placement",
            "mean CZ completion",
            "mean Suburb completion",
            "mean total T_flood",
            "median Suburb/CZ ratio",
            "completed trials",
        ],
        rows=rows,
        notes=[
            f"pooled median Suburb/CZ completion ratio: {median_ratio:.2f};",
            "the claim is a bounded (O(1)) ratio, not suburb faster — 10x is the",
            "generous acceptance threshold at this scale.",
        ],
        passed=passed,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Suburb flooding vs Central-Zone flooding",
    paper_ref="Section 1 (headline claim) / Theorem 3",
    description="Per-zone completion times and their ratio, for central and suburban sources.",
    runner=run,
)
