"""Figure 1 (blue cross): the destination distribution at ``(L/3, L/4)``.

The paper overlays, at agent position ``(L/3, L/4)``, the destination law of
Theorem 2: four constant-density quadrants plus the probability-1/2 cross.
We sample the law, compare empirical quadrant/segment masses with the closed
forms, and render the conditional quadrant density as a heatmap.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.validation import destination_cross_errors, destination_quadrant_errors
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.distributions import (
    QUADRANTS,
    SEGMENTS,
    cross_probability,
    destination_pdf,
    quadrant_masses,
)
from repro.mobility.stationary import sample_destination_given_position
from repro.viz.ascii import render_heatmap

EXPERIMENT_ID = "fig1_destination"
SIDE = 90.0


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n_samples": 60_000},
        full={"n_samples": 600_000},
    )
    rng = np.random.default_rng(seed)
    position = np.array([SIDE / 3.0, SIDE / 4.0])
    n_samples = params["n_samples"]

    positions = np.tile(position, (n_samples, 1))
    destinations, on_cross = sample_destination_given_position(positions, SIDE, rng)

    quad = destination_quadrant_errors(position, destinations, SIDE)
    cross = destination_cross_errors(position, destinations, SIDE)

    rows = []
    for k, label in enumerate(QUADRANTS):
        rows.append(
            [f"quadrant {label}", float(quad["empirical"][k]), float(quad["analytic"][k])]
        )
    for k, label in enumerate(SEGMENTS):
        rows.append(
            [f"segment {label}", float(cross["empirical"][k]), float(cross["analytic"][k])]
        )
    rows.append(["cross total", cross["total_empirical"], 0.5])
    rows.append(["on-cross sample fraction", float(np.mean(on_cross)), 0.5])

    # Conditional quadrant-density heatmap (the off-cross part of Thm 2).
    bins = 18
    centers = (np.arange(bins) + 0.5) * SIDE / bins
    xg, yg = np.meshgrid(centers, centers, indexing="ij")
    density = destination_pdf(position[0], position[1], xg, yg, SIDE)
    density = np.where(np.isfinite(density), density, np.nan)
    density = np.nan_to_num(density, nan=float(np.nanmax(density)))

    tolerance = 4.0 / np.sqrt(n_samples)
    max_err = max(quad["max_error"], cross["max_error"])
    # Sanity identities of Theorem 2 / Eqs. 4-5 at this position.
    identity_gap = abs(
        float(np.sum(quadrant_masses(*position, SIDE)))
        + float(np.sum(cross_probability(*position, SIDE)))
        - 1.0
    )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Destination distribution at (L/3, L/4) (Fig. 1, blue cross)",
        paper_ref="Fig. 1 / Theorem 2 / Eqs. 4-5",
        headers=["component", "empirical mass", "analytic mass"],
        rows=rows,
        artifacts={"analytic quadrant density": render_heatmap(density)},
        notes=[
            f"max |empirical - analytic| = {max_err:.5f} (tolerance {tolerance:.5f});",
            f"quadrants+cross sum to 1 within {identity_gap:.2e};",
            "half the destination mass sits on a zero-area cross — the paper's highlighted fact.",
        ],
        passed=max_err <= tolerance and identity_gap < 1e-9,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Destination distribution at (L/3, L/4) (Fig. 1, blue cross)",
    paper_ref="Fig. 1 / Theorem 2 / Eqs. 4-5",
    description="Quadrant and cross-segment destination masses at the paper's example position.",
    runner=run,
)
