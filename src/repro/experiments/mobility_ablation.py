"""Mobility ablation: MRWP vs classic RWP vs uniform-density models.

The paper's earlier companions (refs [10, 11]) analyzed flooding under
random-walk mobility, whose stationary law is almost uniform.  Replaying
the same flooding workload under four mobility models isolates the effect
of MRWP's non-uniform density: the sparse Suburb should make MRWP the
slowest to finish (its stragglers wait for Lemma-16 meetings), while
uniform-density models have no corner penalty.

The five models are one sweep-scheduler plan; every arm (including the
``mrwp-speed`` random-speed variant, whose duration-biased stationary law
shares Theorem 1's geometry) has a native batch mobility implementation,
so ``engine="auto"`` runs the whole plan vectorized — results are
engine-identical either way.
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.simulation.config import FloodingConfig
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "mobility_ablation"

_MODELS = ["mrwp", "rwp", "mrwp-speed", "random-walk", "random-direction"]


def run(scale: str = "quick", seed: int = 0, engine: str | None = None, jobs: int = 1) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 2_000, "radius_factor": 1.3, "trials": 3},
        full={"n": 8_000, "radius_factor": 1.3, "trials": 10},
    )
    n = params["n"]
    side = math.sqrt(n)
    radius = params["radius_factor"] * math.sqrt(math.log(n))
    speed = 0.25 * radius

    plan = SweepPlan()
    for model_name in _MODELS:
        # mrwp-speed: a genuine per-trip speed range around v (its
        # stationary time-average speed is then slightly below v — the
        # duration bias the speed-decay experiment quantifies).
        options = (
            {"v_min": 0.5 * speed, "v_max": 1.5 * speed}
            if model_name == "mrwp-speed"
            else {}
        )
        plan.add(
            FloodingConfig(
                n=n,
                side=side,
                radius=radius,
                speed=speed,
                max_steps=30_000,
                mobility=model_name,
                mobility_options=options,
                seed=seed,
                track_zones=(model_name == "mrwp"),
            ),
            params["trials"],
            key=model_name,
        )
    points = run_sweep(plan, engine=engine or "auto", jobs=jobs)

    rows = []
    means = {}
    for point in points:
        summary = point.summary
        means[point.key] = summary.mean
        rows.append(
            [
                point.key,
                round(summary.mean, 1) if summary.n_finite else "never",
                round(summary.std, 1),
                round(summary.minimum, 1) if summary.n_finite else "-",
                round(summary.maximum, 1) if summary.n_finite else "-",
                summary.n_finite,
            ]
        )

    mrwp_slower_than_uniform = means["mrwp"] >= 0.8 * means["random-direction"]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Flooding time across mobility models",
        paper_ref="Section 1 / refs [10, 11]",
        headers=["mobility model", "mean T_flood", "std", "min", "max", "completed trials"],
        rows=rows,
        notes=[
            f"identical (n, L, R, v) = ({n}, {side:.1f}, {radius:.2f}, {speed:.3f});",
            "MRWP's corner Suburb is the structural difference vs the",
            "uniform-density models (random-walk, random-direction).",
        ],
        passed=mrwp_slower_than_uniform,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Flooding time across mobility models",
    paper_ref="Section 1 / refs [10, 11]",
    description="Same flooding workload under MRWP, RWP, random-walk, random-direction.",
    runner=run,
)
