"""Protocol baselines: flooding against bandwidth/energy-limited variants.

Flooding is the maximal-speed broadcast (Section 1: "a natural lower bound
for any broadcast protocol").  The comparison quantifies the cost of the
standard relaxations on the *same* mobility traces' distribution: push
gossip (bounded fanout), parsimonious flooding (bounded active window,
ref [3]), probabilistic flooding (duty cycling), and SIR epidemic
(permanent recovery — may die out in the Suburb).

Since PR 3 every variant runs through the **batch engine** at both scales
(all trials of a variant in lock-step); the scalar path produces identical
results (seed-for-seed parity, ``tests/test_protocol_batch_parity.py``)
and remains selectable via ``run(..., engine="scalar")`` for the
benchmark's speedup measurement.
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.simulation.config import FloodingConfig
from repro.simulation.results import summarize
from repro.simulation.runner import run_trials

EXPERIMENT_ID = "protocol_baselines"

_VARIANTS = [
    ("flooding", "flooding", {}),
    ("gossip k=1", "gossip", {"fanout": 1}),
    ("gossip k=3", "gossip", {"fanout": 3}),
    ("push-pull", "push-pull", {}),
    ("parsimonious w=2", "parsimonious", {"active_window": 2}),
    ("parsimonious w=8", "parsimonious", {"active_window": 8}),
    ("probabilistic p=0.25", "probabilistic", {"p": 0.25}),
    ("SIR recovery=0.05", "sir", {"recovery_prob": 0.05}),
]


def variant_configs(scale: str = "quick", seed: int = 0, engine: str = "batch") -> list:
    """The experiment's ``(label, config, trials)`` workload, one entry per
    variant — shared with ``repro bench --suite protocols`` so the speedup
    measurement times exactly the experiment's configurations."""
    params = scale_params(
        scale,
        quick={"n": 2_000, "radius_factor": 1.4, "trials": 3},
        full={"n": 8_000, "radius_factor": 1.4, "trials": 10},
    )
    n = params["n"]
    side = math.sqrt(n)
    radius = params["radius_factor"] * math.sqrt(math.log(n))
    speed = 0.25 * radius
    return [
        (
            label,
            FloodingConfig(
                n=n,
                side=side,
                radius=radius,
                speed=speed,
                max_steps=20_000,
                protocol=protocol,
                protocol_options=options,
                seed=seed,  # same seed -> same mobility/trial structure per variant
                engine=engine,
            ),
            params["trials"],
        )
        for label, protocol, options in _VARIANTS
    ]


def run(scale: str = "quick", seed: int = 0, engine: str = "batch") -> ExperimentResult:
    rows = []
    flooding_mean = None
    for label, config, trials in variant_configs(scale, seed, engine):
        results = run_trials(config, trials)
        summary = summarize(r.flooding_time for r in results)
        coverage = sum(r.final_coverage for r in results) / len(results)
        stalled = sum(1 for r in results if r.stalled)
        if label == "flooding":
            flooding_mean = summary.mean
        rows.append(
            [
                label,
                round(summary.mean, 1) if summary.n_finite else "never",
                summary.n_finite,
                stalled,
                round(coverage, 4),
                round(summary.mean / flooding_mean, 2)
                if flooding_mean and summary.n_finite
                else "-",
            ]
        )

    flooding_fastest = all(
        not isinstance(row[5], float) or row[5] >= 0.99 for row in rows
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Flooding vs baseline broadcast protocols",
        paper_ref="Section 1 context / ref [3]",
        headers=[
            "protocol",
            "mean completion time",
            "completed trials",
            "stalled trials",
            "mean final coverage",
            "slowdown vs flooding",
        ],
        rows=rows,
        notes=[
            "identical trial seeds across variants: differences are protocol-only;",
            "flooding lower-bounds every variant's completion time (slowdown >= 1);",
            f"all variants executed by the {engine} engine (scalar-parity enforced in tests).",
        ],
        passed=flooding_fastest,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Flooding vs baseline broadcast protocols",
    paper_ref="Section 1 context / ref [3]",
    description="Completion time / coverage of gossip, parsimonious, probabilistic, SIR vs flooding.",
    runner=run,
)
