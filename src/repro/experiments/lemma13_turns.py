"""Lemma 13: turn counts in a window are logarithmically bounded.

An MRWP agent's number of direction changes ``H_{t,tau}`` over
``[t, t+tau]`` is w.h.p. at most ``4 log n / log(L/(v tau))`` for
``L/(nv) <= tau <= L/(4v)``.  We run the process, count per-agent turn
events in windows of several sizes, and compare the *maximum over all
agents* (the w.h.p. subject) with the bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import theory
from repro.core.turns import count_turns_in_window
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.mrwp import ManhattanRandomWaypoint

EXPERIMENT_ID = "lemma13_turns"


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 2_000, "divisors": [32, 16, 8]},
        full={"n": 20_000, "divisors": [64, 32, 16, 8, 5]},
    )
    n = params["n"]
    side = math.sqrt(n)
    speed = 0.01 * side  # slow mobility; window sizes stay integral

    model = ManhattanRandomWaypoint(n, side, speed, rng=np.random.default_rng(seed))
    rows = []
    checks = []
    for divisor in params["divisors"]:
        tau = side / (divisor * speed)
        tau_steps = max(1, int(round(tau)))
        counts = count_turns_in_window(model, tau_steps)
        bound = theory.turn_count_bound(n, side, speed, tau_steps)
        max_turns = int(counts.max())
        within = float(np.mean(counts <= bound))
        ok = max_turns <= bound
        checks.append(ok)
        rows.append(
            [
                f"L/({divisor} v)",
                tau_steps,
                round(float(counts.mean()), 2),
                max_turns,
                round(bound, 2),
                round(within, 4),
                "ok" if ok else "VIOLATED",
            ]
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Turn counts per window (Lemma 13)",
        paper_ref="Lemma 13",
        headers=[
            "window tau",
            "steps",
            "mean turns",
            "max turns (all agents)",
            "bound 4 log n / log(L/(v tau))",
            "fraction within bound",
            "verdict",
        ],
        rows=rows,
        notes=[
            f"n={n}, L={side:.1f}, v={speed:.3f}; windows inside Lemma 13's "
            "validity range [L/(nv), L/(4v)];",
            "turns = Manhattan-corner events + trip arrivals (the H_{t,tau} statistic).",
        ],
        passed=all(checks),
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Turn counts per window (Lemma 13)",
    paper_ref="Lemma 13",
    description="Max per-agent turn counts vs the 4 log n / log(L/(v tau)) bound.",
    runner=run,
)
