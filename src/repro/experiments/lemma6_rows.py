"""Lemma 6: the Central Zone spans at least ``m / sqrt2`` full rows/columns.

Lemma 6 holds *under Inequality 7* (``R >= c1 L sqrt(log n / n)``).  Its
content at laptop scale is a calibration question: how large must the
radius factor ``c`` (``R = c L sqrt(log n / n)``) be for the guarantee to
kick in?  Setting the edge-cell mass of Observation 5 against Definition
4's threshold predicts ``c* ~ sqrt5 ~ 2.24`` (at which point the centered
band of full rows reaches width ``m / sqrt2``).  The experiment measures
``c*`` by bisection for several ``n`` and checks it agrees with the
prediction — and that above ``c*`` the ``m / sqrt2`` bound indeed holds.
"""

from __future__ import annotations

import math

from repro.core.cells import CellGrid
from repro.core.zones import ZonePartition
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.viz.ascii import render_zone_map

EXPERIMENT_ID = "lemma6_rows"

#: Analytic prediction for the critical radius factor (see module docstring).
PREDICTED_CRITICAL_FACTOR = math.sqrt(5.0)


def _lemma6_holds(n: int, factor: float) -> tuple:
    """Whether full rows/cols >= m/sqrt2 at ``R = factor * sqrt(log n)``.

    Returns:
        ``(holds, zones)``; zones is None when no grid fits.
    """
    side = math.sqrt(n)
    radius = factor * math.sqrt(math.log(n))
    try:
        grid = CellGrid.for_radius(side, radius)
    except ValueError:
        return (True, None)  # whole square ~ one cell: vacuously fine
    zones = ZonePartition(grid, n)
    full_rows, full_cols = zones.count_full_rows_cols()
    return (min(full_rows, full_cols) >= zones.lemma6_bound(), zones)


def _critical_factor(n: int, lo: float = 1.0, hi: float = 8.0, tol: float = 0.02) -> float:
    """Smallest radius factor at which Lemma 6's bound holds (bisection).

    The property is monotone in the factor for fixed ``n`` up to cell-count
    rounding; the bisection tolerance absorbs the rounding jitter.
    """
    holds_hi, _ = _lemma6_holds(n, hi)
    if not holds_hi:
        return math.inf
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        holds, _ = _lemma6_holds(n, mid)
        if holds:
            hi = mid
        else:
            lo = mid
    return hi


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    del seed  # deterministic: the partition is a pure function of (n, L, R)
    params = scale_params(
        scale,
        quick={"ns": [2_000, 10_000, 100_000]},
        full={"ns": [2_000, 10_000, 100_000, 1_000_000, 10_000_000]},
    )
    rows = []
    checks = []
    zone_map = None
    for n in params["ns"]:
        critical = _critical_factor(n)
        verify_factor = max(critical * 1.05, critical + 0.05)
        holds, zones = _lemma6_holds(n, verify_factor)
        full_rows, full_cols = zones.count_full_rows_cols() if zones else (0, 0)
        ok = (
            math.isfinite(critical)
            and holds
            and abs(critical - PREDICTED_CRITICAL_FACTOR) <= 0.8
        )
        checks.append(ok)
        rows.append(
            [
                n,
                round(critical, 3),
                round(PREDICTED_CRITICAL_FACTOR, 3),
                zones.grid.m if zones else "-",
                full_rows,
                full_cols,
                round(zones.lemma6_bound(), 2) if zones else "-",
                "ok" if ok else "off",
            ]
        )
        if zone_map is None and zones is not None and zones.grid.m <= 40:
            zone_map = render_zone_map(zones.cz_mask)

    artifacts = {}
    if zone_map is not None:
        artifacts["zone map just above c* (## CZ, .. Suburb)"] = zone_map
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Central-Zone row/column coverage (Lemma 6)",
        paper_ref="Lemma 6 / Definition 4 / Ineq. 7",
        headers=[
            "n",
            "measured critical factor c*",
            "predicted c* (sqrt 5)",
            "m at 1.05 c*",
            "full rows",
            "full cols",
            "m/sqrt2 bound",
            "verdict",
        ],
        rows=rows,
        notes=[
            "c* = smallest c with R = c sqrt(log n) giving >= m/sqrt2 full CZ rows/cols;",
            "Lemma 6 assumes Ineq. 7 (c1 = 200): any c above c* ~ sqrt5 suffices in",
            "practice, confirming the paper's remark that its constants are loose.",
        ],
        passed=all(checks),
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Central-Zone row/column coverage (Lemma 6)",
    paper_ref="Lemma 6 / Definition 4 / Ineq. 7",
    description="Measured critical radius factor for the m/sqrt2 full-row bound vs the sqrt5 prediction.",
    runner=run,
)
