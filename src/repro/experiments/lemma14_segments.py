"""Lemma 14: near-corner agents travel a long inward "good segment".

The lemma conditions on the agent sitting close to a corner
(``max{L/n, 4 x0, 4 y0} <= v tau``) and guarantees, w.h.p., one axis-
aligned segment of length at least ``v tau log(L/(v tau)) / (40 log n)``
*directed toward the Central Zone* within the window ``[t, t + tau]``.

We use conditional perfect simulation
(:meth:`~repro.mobility.stationary.ClosedFormStationarySampler.sample_at`)
to place a population of agents exactly at qualifying corner positions with
stationary destinations/legs, record their trajectories over the window,
and measure each agent's longest center-directed run against the bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import theory
from repro.core.turns import longest_inward_runs_from_frames
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.base import record_trajectory
from repro.mobility.mrwp import ManhattanRandomWaypoint
from repro.mobility.stationary import ClosedFormStationarySampler

EXPERIMENT_ID = "lemma14_segments"


def run(scale: str = "quick", seed: int = 0) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 2_000, "agents": 500, "divisors": [16, 8, 5]},
        full={"n": 20_000, "agents": 4_000, "divisors": [32, 16, 8, 5]},
    )
    n = params["n"]  # the network size entering the bound's log n
    side = math.sqrt(n)
    speed = 0.01 * side
    sampler = ClosedFormStationarySampler(side)
    rng = np.random.default_rng(seed)

    rows = []
    checks = []
    for divisor in params["divisors"]:
        tau_steps = max(2, int(round(side / (divisor * speed))))
        # Qualifying corner positions: x0, y0 <= v tau / 4 (Lemma 14's
        # hypothesis), placed uniformly in that corner box.
        reach = speed * tau_steps / 4.0
        positions = rng.uniform(0.0, reach, size=(params["agents"], 2))
        state = sampler.sample_at(positions, rng)
        model = ManhattanRandomWaypoint(
            params["agents"], side, speed, rng=rng, init=state
        )
        frames = record_trajectory(model, tau_steps)
        runs = longest_inward_runs_from_frames(frames, side)
        bound = theory.good_segment_bound(n, side, speed, tau_steps)
        satisfied = float(np.mean(runs >= bound))
        ok = satisfied >= 0.98  # w.h.p. with slack for the run-splitting bias
        checks.append(ok)
        rows.append(
            [
                f"L/({divisor} v)",
                tau_steps,
                round(reach, 2),
                round(float(runs.mean()), 2),
                round(float(runs.min()), 3),
                round(bound, 3),
                round(satisfied, 4),
                "ok" if ok else "VIOLATED",
            ]
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Good inward segments of corner agents (Lemma 14)",
        paper_ref="Lemma 14",
        headers=[
            "window tau",
            "steps",
            "corner box v tau/4",
            "mean longest inward run",
            "min over agents",
            "bound",
            "fraction satisfying",
            "verdict",
        ],
        rows=rows,
        notes=[
            f"network n={n} (enters the bound), {params['agents']} conditioned",
            "corner agents per window via conditional perfect simulation;",
            "runs split at mid-step turns, under-estimating the lemma's segment.",
        ],
        passed=all(checks),
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Good inward segments of corner agents (Lemma 14)",
    paper_ref="Lemma 14",
    description="Conditioned corner agents' longest inward runs vs the Lemma-14 bound.",
    runner=run,
)
