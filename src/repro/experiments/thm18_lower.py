"""Theorem 18: the lower bound ``Omega(L / (v n^(1/3)))``.

The construction: with ``d = Theta(L / n^(1/3))`` and ``R <= d``, the event
*B* = "some agent sits in the corner square ``F`` (side ``d``) while the
annulus ``E - F`` (outer side ``3d``) is empty" has constant probability;
conditioned on *B*, the trapped agent cannot be informed before
``(2d - R) / (2v)`` steps.

Two measurements:

1. the probability of *B* under stationary sampling (the ``Theta(1)`` claim);
2. conditioned trials (state constructed to realize *B*): the step at which
   the trapped agent is informed, against the bound — a deterministic
   geometric fact the simulator must respect, and its ``1/v`` scaling.

The conditioned trial loop runs through the batch simulation engine and
the sweep scheduler's worker machinery: with ``engine="batch"`` (the
``"auto"`` default) each speed fraction's trials advance in lock-step as
replicas of one :class:`~repro.mobility.mrwp.BatchManhattanRandomWaypoint`
+ :class:`~repro.protocols.flooding.BatchFloodingState` pair, retiring a
replica the round its trapped agent is informed; ``jobs > 1`` fans the
fractions over a crash-surviving
:class:`~repro.simulation.parallel.WorkerPool`.  Per-trial seeding
(``default_rng([seed, trial, fraction])``) and the batch engine's
per-replica draw-order parity make every engine/jobs combination produce
the identical table.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import theory
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.mobility.mrwp import BatchManhattanRandomWaypoint, ManhattanRandomWaypoint
from repro.mobility.stationary import PalmStationarySampler
from repro.protocols.flooding import BatchFloodingState, FloodingProtocol
from repro.simulation.parallel import WorkerPool

EXPERIMENT_ID = "thm18_lower"

_ENGINES = ("auto", "batch", "scalar")


def _resolve_engine(engine: str | None) -> str:
    engine = engine or "auto"
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    return "batch" if engine == "auto" else engine


def _event_probability(n: int, side: float, d: float, sampler, rng, trials: int) -> float:
    """Empirical probability of event B over stationary snapshots."""
    hits = 0
    for _ in range(trials):
        positions = sampler.sample(n, rng).positions
        in_f = np.all(positions <= d, axis=1)
        in_e = np.all(positions <= 3.0 * d, axis=1)
        if np.any(in_f) and not np.any(in_e & ~in_f):
            hits += 1
    return hits / trials


def _conditioned_state(n: int, side: float, d: float, sampler, rng):
    """A stationary state conditioned on event B.

    Agent 0 is resampled until it falls in F; all others until they fall
    outside E.  Per-agent rejection keeps each agent's marginal equal to the
    stationary law conditioned on its region.
    """
    state = sampler.sample(n, rng)
    for _ in range(10_000):
        pos0 = state.positions[0]
        if pos0[0] <= d and pos0[1] <= d:
            break
        replacement = sampler.sample(1, rng)
        state.positions[0] = replacement.positions[0]
        state.destinations[0] = replacement.destinations[0]
        state.targets[0] = replacement.targets[0]
        state.on_second_leg[0] = replacement.on_second_leg[0]
    else:  # pragma: no cover - astronomically unlikely
        raise RuntimeError("failed to place the trapped agent in F")
    for _ in range(10_000):
        in_e = np.all(state.positions[1:] <= 3.0 * d, axis=1)
        bad = np.nonzero(in_e)[0] + 1
        if bad.size == 0:
            break
        replacement = sampler.sample(bad.size, rng)
        state.positions[bad] = replacement.positions
        state.destinations[bad] = replacement.destinations
        state.targets[bad] = replacement.targets
        state.on_second_leg[bad] = replacement.on_second_leg
    else:  # pragma: no cover
        raise RuntimeError("failed to empty the annulus E - F")
    return state


def _fraction_trials(args) -> list:
    """Picklable per-fraction job: informed steps of all conditioned trials.

    RNG discipline: each trial's generator is seeded
    ``[seed, trial, int(1e6 * fraction)]`` and consumed in the scalar
    order — conditioned-state construction first, then per-step mobility
    redraws.  Flooding draws nothing, and the batch mobility engine
    replays each replica's scalar draw sequence (retired replicas frozen),
    so the batch path returns bit-identical steps to the scalar loop.
    """
    n, side, d, radius, fraction, speed, bound, trials, seed, engine = args
    sampler = PalmStationarySampler(side)
    max_steps = int(8 * bound) + 200
    trial_rngs = [
        np.random.default_rng([seed, trial, int(1e6 * fraction)]) for trial in range(trials)
    ]
    states = [_conditioned_state(n, side, d, sampler, rng) for rng in trial_rngs]
    # Source: the agent farthest (Chebyshev) from the corner.
    sources = [int(np.argmax(np.max(state.positions, axis=1))) for state in states]

    if engine == "scalar":
        informed_steps = []
        for trial in range(trials):
            model = ManhattanRandomWaypoint(
                n, side, speed, rng=trial_rngs[trial], init=states[trial]
            )
            protocol = FloodingProtocol(n, side, radius, sources[trial], rng=trial_rngs[trial])
            trapped_informed_at = math.inf
            for step in range(1, max_steps + 1):
                positions = model.step()
                protocol.step(positions)
                if protocol.informed[0]:
                    trapped_informed_at = step
                    break
            informed_steps.append(trapped_informed_at)
        return informed_steps

    model = BatchManhattanRandomWaypoint(n, side, speed, rngs=trial_rngs, init=states)
    protocol = BatchFloodingState(n, side, radius, sources)
    active = np.ones(trials, dtype=bool)
    informed_step = np.full(trials, math.inf)
    for step in range(1, max_steps + 1):
        if not active.any():
            break
        positions = model.step(active=active, copy=False)
        protocol.step(positions, active=active)
        done = active & protocol.informed[:, 0]
        informed_step[done] = step
        active &= ~done
    return informed_step.tolist()


def run(
    scale: str = "quick",
    seed: int = 0,
    engine: str | None = None,
    jobs: int = 1,
) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 1_000, "fractions": [0.1, 0.05], "prob_trials": 800, "trials": 3},
        full={"n": 8_000, "fractions": [0.2, 0.1, 0.05, 0.025], "prob_trials": 4_000, "trials": 6},
    )
    engine = _resolve_engine(engine)
    n = params["n"]
    side = math.sqrt(n)
    d = side / n ** (1.0 / 3.0)
    radius = 0.9 * d
    sampler = PalmStationarySampler(side)
    rng = np.random.default_rng(seed)

    # Event B's probability is Theta(1) only for a tuned constant in
    # d_B = c L / n^(1/3): near the corner the spatial mass of [0, s]^2 is
    # ~ 3 s^3 / L^3, so P(B) ~ 3c^3 exp(-78 c^3), maximized around
    # c = 0.234 at P(B) ~ 1.4% — constant in n, but small.
    d_b = 0.234 * side / n ** (1.0 / 3.0)
    prob_b = _event_probability(n, side, d_b, sampler, rng, params["prob_trials"])

    fraction_jobs = []
    for fraction in params["fractions"]:
        speed = fraction * radius
        bound = theory.flooding_lower_bound(n, side, radius, speed, d_constant=1.0)
        fraction_jobs.append(
            (n, side, d, radius, fraction, speed, bound, params["trials"], seed, engine)
        )
    with WorkerPool(max_workers=jobs or 1) as pool:
        per_fraction_steps = pool.map(
            _fraction_trials,
            fraction_jobs,
            labels=[f"v/R={job[4]}" for job in fraction_jobs],
        )

    rows = []
    checks = []
    for job, informed_steps in zip(fraction_jobs, per_fraction_steps):
        _n, _side, _d, _radius, fraction, speed, bound, *_rest = job
        finite = [s for s in informed_steps if math.isfinite(s)]
        min_step = min(informed_steps)
        ok = min_step >= bound
        checks.append(ok)
        rows.append(
            [
                round(fraction, 3),
                round(speed, 4),
                round(bound, 1),
                round(min_step, 1) if math.isfinite(min_step) else "never",
                round(float(np.mean(finite)), 1) if finite else "never",
                "ok" if ok else "VIOLATED",
            ]
        )

    notes = [
        f"d = L/n^(1/3) = {d:.2f}, R = 0.9 d = {radius:.2f} (conditioned trials);",
        f"P(event B) at d_B = 0.234 L/n^(1/3): {prob_b:.4f} over "
        f"{params['prob_trials']} stationary snapshots (theory ~0.014, Theta(1) in n);",
        "conditioned trials must respect the kinematic bound (2d - R)/(2v).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Lower-bound construction (Theorem 18)",
        paper_ref="Theorem 18",
        headers=[
            "v / R",
            "v",
            "(2d-R)/(2v) bound",
            "earliest trapped-agent informed step",
            "mean informed step",
            "verdict",
        ],
        rows=rows,
        notes=notes,
        passed=all(checks) and prob_b > 0.0,
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Lower-bound construction (Theorem 18)",
    paper_ref="Theorem 18",
    description="Event-B probability and conditioned trapped-agent informing times vs the bound.",
    runner=run,
)
