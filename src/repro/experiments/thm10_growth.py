"""Theorem 10: informed-cell growth in the Central Zone.

The proof machinery: the informed-cell set satisfies
``|Q_{t+1}| >= |Q_t| + sqrt(min(|Q_t|, |CZ| - |Q_t|))`` w.h.p. (Lemmas 8-9),
which forces completion within ``5 sqrt(|CZ|) <= 18 L/R`` steps (Claim 11).
We track ``|Q_t|`` on live flooding runs and measure how often the
recurrence holds step-by-step, plus the time to all-cells-informed against
both bounds.

The trials run through the sweep scheduler as one multi-trial point with a
per-trial :class:`~repro.core.spread.InformedCellTracker` observer
(``observer_factory`` — observer points execute on the scalar engine,
``jobs=`` still fans the trials out over processes), replacing the earlier
hand-rolled model/protocol loop; the seed schedule is the scheduler's
standard ``SeedSequence(seed).spawn(trials)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import theory
from repro.core.cells import CellGrid
from repro.core.spread import InformedCellTracker, claim11_completion_steps, growth_deficits
from repro.core.zones import ZonePartition
from repro.experiments.base import ExperimentResult, ExperimentSpec, scale_params
from repro.simulation.config import FloodingConfig
from repro.simulation.sweep import SweepPlan, run_sweep

EXPERIMENT_ID = "thm10_growth"


def _tracker_factory(config: FloodingConfig) -> list:
    """Fresh per-trial observer; top-level so process pools can pickle it."""
    grid = CellGrid.for_radius(config.side, config.radius)
    zones = ZonePartition(grid, config.n)
    return [InformedCellTracker(grid, zones)]


def run(scale: str = "quick", seed: int = 0, engine: str | None = None, jobs: int = 1) -> ExperimentResult:
    params = scale_params(
        scale,
        quick={"n": 4_000, "radius_factor": 2.6, "trials": 3},
        full={"n": 16_000, "radius_factor": 2.6, "trials": 8},
    )
    n = params["n"]
    side = math.sqrt(n)
    radius = params["radius_factor"] * math.sqrt(math.log(n))
    speed = theory.speed_assumption_max(radius)
    grid = CellGrid.for_radius(side, radius)
    zones = ZonePartition(grid, n)
    total = zones.n_central_cells

    # Source near the center so Q_0 >= 1 (Theorem 10's hypothesis) — the
    # config's "central" placement is exactly the closest-to-center agent.
    config = FloodingConfig(
        n=n,
        side=side,
        radius=radius,
        speed=speed,
        max_steps=2_000,
        source="central",
        seed=seed,
        track_zones=False,
    )
    plan = SweepPlan()
    plan.add(config, params["trials"], key="growth", observer_factory=_tracker_factory)
    (point,) = run_sweep(plan, engine=engine or "auto", jobs=jobs)

    rows = []
    checks = []
    for trial, tracker in enumerate(point.observers()):
        q = tracker.q_series()
        complete_steps = np.nonzero(q >= total)[0]
        completion = int(complete_steps[0]) if complete_steps.size else math.inf
        deficits = growth_deficits(q, total)
        hold_fraction = float(np.mean(deficits >= 0)) if deficits.size else 1.0
        claim11 = claim11_completion_steps(total)
        thm10 = theory.cz_flooding_bound(side, radius)
        ok = (
            math.isfinite(completion)
            and completion <= thm10
            and hold_fraction >= 0.9
        )
        checks.append(ok)
        rows.append(
            [
                trial,
                total,
                completion,
                claim11,
                round(thm10, 1),
                round(hold_fraction, 3),
                int(deficits.size),
                "ok" if ok else "off",
            ]
        )

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Informed-cell growth in the Central Zone (Theorem 10)",
        paper_ref="Theorem 10 / Lemmas 8-9 / Claim 11",
        headers=[
            "trial",
            "|CZ| cells",
            "all-cells-informed step",
            "Claim 11 bound 5 sqrt|CZ|",
            "Thm 10 bound 18 L/R",
            "recurrence hold fraction",
            "growth steps checked",
            "verdict",
        ],
        rows=rows,
        notes=[
            f"n={n}, R={radius:.2f} (m={grid.m}), v={speed:.3f} (slow-mobility max);",
            "recurrence: |Q_t+1| >= |Q_t| + sqrt(min(|Q_t|, |CZ|-|Q_t|)) per step;",
            "occasional violations are the w.h.p. slack — 90% per-step hold required.",
        ],
        passed=all(checks),
    )


EXPERIMENT = ExperimentSpec(
    id=EXPERIMENT_ID,
    title="Informed-cell growth in the Central Zone (Theorem 10)",
    paper_ref="Theorem 10 / Lemmas 8-9 / Claim 11",
    description="Step-by-step Lemma-9 growth recurrence and completion vs 18 L/R.",
    runner=run,
)
